//! A blocking client for the mapping service.

use std::net::TcpStream;

use tlbmap_core::CommMatrix;
use tlbmap_obs::Json;
use tlbmap_sim::Topology;

use crate::protocol::{
    check_version, read_frame, write_frame, AdminKind, ErrorCode, FrameError, Request, Response,
};
use crate::session::DeltaOutcome;

/// Largest response frame a client will accept.
const MAX_RESPONSE_BYTES: usize = 1 << 20;

/// Why a client call failed.
#[derive(Debug)]
pub enum ServeError {
    /// The server answered with an error frame.
    Remote {
        /// The stable error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The request never completed: connection refused, broken stream,
    /// malformed response.
    Transport(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Remote { code, message } => {
                write!(f, "server error [{}]: {}", code.as_str(), message)
            }
            ServeError::Transport(message) => write!(f, "transport error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    fn transport(context: &str, e: impl std::fmt::Display) -> ServeError {
        ServeError::Transport(format!("{context}: {e}"))
    }
}

/// A successful `map` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReply {
    /// `mapping[thread] = core`.
    pub mapping: Vec<usize>,
    /// Whether the server served it from its result cache.
    pub cached: bool,
}

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per connection).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server at `addr` (e.g. `"127.0.0.1:7411"`).
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::transport(&format!("connect to {addr}"), e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| ServeError::transport("set TCP_NODELAY", e))?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.to_json())
            .map_err(|e| ServeError::transport("send request", e))?;
        let json = match read_frame(&mut self.stream, MAX_RESPONSE_BYTES) {
            Ok(json) => json,
            Err(FrameError::Closed) => {
                return Err(ServeError::Transport(
                    "server closed the connection before answering".to_string(),
                ))
            }
            Err(e) => return Err(ServeError::transport("read response", e)),
        };
        check_version(&json).map_err(ServeError::Transport)?;
        let response = Response::from_json(&json).map_err(ServeError::Transport)?;
        if let Response::Error { code, message } = response {
            return Err(ServeError::Remote { code, message });
        }
        Ok(response)
    }

    /// Ask the server to map `matrix` onto `topo`. `deadline_ms` bounds
    /// the time the request may wait in the server's queue (None = the
    /// server default); `delay_ms` asks the worker to sleep before
    /// computing (a load-generation/testing hook — use 0).
    pub fn map(
        &mut self,
        matrix: &CommMatrix,
        topo: &Topology,
        deadline_ms: Option<u64>,
        delay_ms: u64,
    ) -> Result<MapReply, ServeError> {
        let request = Request::Map {
            matrix: matrix.clone(),
            topo: *topo,
            deadline_ms,
            delay_ms,
        };
        match self.round_trip(&request)? {
            Response::Map { mapping, cached } => Ok(MapReply { mapping, cached }),
            other => Err(ServeError::Transport(format!(
                "expected a map response, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Health)? {
            Response::Health => Ok(()),
            other => Err(ServeError::Transport(format!(
                "expected a health response, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's counter/queue snapshot.
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(doc) => Ok(doc),
            other => Err(ServeError::Transport(format!(
                "expected a stats response, got {other:?}"
            ))),
        }
    }

    /// Query the live-telemetry admin surface: `stats` for the rolling
    /// snapshot (queue depth, utilization, windowed quantiles), `health`
    /// for liveness + uptime, `trace` for the slow-request log.
    pub fn admin(&mut self, kind: AdminKind) -> Result<Json, ServeError> {
        match self.round_trip(&Request::Admin { kind })? {
            Response::Admin { kind: got, doc } if got == kind => Ok(doc),
            other => Err(ServeError::Transport(format!(
                "expected an admin {} response, got {other:?}",
                kind.as_str()
            ))),
        }
    }

    /// Open a streaming session on `topo`. `None` knobs take the server's
    /// defaults. Returns the session ID and the initial mapping (computed
    /// on the empty window — the first delta installs the first real one).
    pub fn open_session(
        &mut self,
        topo: &Topology,
        decay_shift: Option<u32>,
        drift_threshold_ppm: Option<u64>,
        cooldown_deltas: Option<u64>,
    ) -> Result<(u64, Vec<usize>), ServeError> {
        let request = Request::OpenSession {
            topo: *topo,
            decay_shift,
            drift_threshold_ppm,
            cooldown_deltas,
        };
        match self.round_trip(&request)? {
            Response::OpenSession { session, mapping } => Ok((session, mapping)),
            other => Err(ServeError::Transport(format!(
                "expected an open_session response, got {other:?}"
            ))),
        }
    }

    /// Stream one communication delta into an open session; the reply says
    /// what the control loop decided (and carries the new mapping when it
    /// remapped).
    pub fn delta(&mut self, session: u64, delta: &CommMatrix) -> Result<DeltaOutcome, ServeError> {
        let request = Request::Delta {
            session,
            delta: delta.clone(),
        };
        match self.round_trip(&request)? {
            Response::Delta {
                seq,
                similarity_ppm,
                decision,
                warm,
                mapping,
                ..
            } => Ok(DeltaOutcome {
                seq,
                similarity_ppm,
                decision,
                warm,
                mapping,
            }),
            other => Err(ServeError::Transport(format!(
                "expected a delta response, got {other:?}"
            ))),
        }
    }

    /// Close a session, returning its lifetime `(deltas, remaps)`.
    pub fn close_session(&mut self, session: u64) -> Result<(u64, u64), ServeError> {
        match self.round_trip(&Request::CloseSession { session })? {
            Response::CloseSession { deltas, remaps, .. } => Ok((deltas, remaps)),
            other => Err(ServeError::Transport(format!(
                "expected a close_session response, got {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(ServeError::Transport(format!(
                "expected a shutdown response, got {other:?}"
            ))),
        }
    }

    /// Send raw bytes down the connection — a testing hook for exercising
    /// the server's frame-error handling.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        use std::io::Write as _;
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| ServeError::transport("send raw bytes", e))
    }

    /// Read one raw response frame — pairs with [`Self::send_raw`].
    pub fn read_response(&mut self) -> Result<Response, ServeError> {
        let json = read_frame(&mut self.stream, MAX_RESPONSE_BYTES)
            .map_err(|e| ServeError::transport("read response", e))?;
        check_version(&json).map_err(ServeError::Transport)?;
        Response::from_json(&json).map_err(ServeError::Transport)
    }
}
