//! Streaming sessions: decayed windows and the incremental remap loop.
//!
//! A session is the server-side state behind the `open_session` / `delta`
//! / `close_session` frames: an exponentially decayed [`DecayedMatrix`]
//! window of the client's communication deltas, the currently installed
//! mapping, and the reference matrix that mapping was computed from. Each
//! delta drives one turn of the control loop:
//!
//! ```text
//!            ingest delta into the decayed window
//!                           │
//!        cosine(window, reference of installed mapping)
//!                           │
//!         ≥ threshold ──────┼────── < threshold
//!              │            │            │
//!           stable          │     inside cooldown? ── yes ──▶ cooldown
//!     (remap suppressed)    │            │ no          (remap suppressed)
//!                           │            ▼
//!                           │   warm-started remap: seed the
//!                           │   hierarchical mapper with the previous
//!                           │   per-level pairings, install the result,
//!                           │   re-anchor the reference to the window
//!                           ▼
//! ```
//!
//! The loop is deliberately hysteretic: a remap re-anchors the reference
//! to the window that triggered it, and the next `cooldown_deltas` deltas
//! cannot remap even if they cross the threshold again — a phase change
//! costs one remap, not one per delta while the window catches up.
//!
//! The registry is two-level locked: a short-held table mutex to resolve
//! an ID to its session, then a per-session mutex held for the whole
//! delta (ingest + judge + possible remap). Deltas for one session are
//! therefore processed in arrival order while different sessions proceed
//! in parallel on their own connection threads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tlbmap_core::{CommMatrix, DecayedMatrix};
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{drift::cosine_u64, CounterId, Event, HistId, Recorder};
use tlbmap_sim::Topology;

use crate::config::ServeConfig;
use crate::protocol::{DeltaDecision, ErrorCode};

/// A rejected session operation: the stable error code plus a message
/// naming what was wrong (mirroring the `AdminKind::from_wire` style of
/// listing the accepted values).
pub type SessionError = (ErrorCode, String);

/// What one `delta` frame did to its session — everything the `delta`
/// response carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// 1-based sequence number of this delta within the session.
    pub seq: u64,
    /// Cosine similarity of the decayed window to the installed mapping's
    /// reference, scaled by 1e6.
    pub similarity_ppm: u64,
    /// What the control loop decided.
    pub decision: DeltaDecision,
    /// Whether a triggered remap was served entirely by the warm-start
    /// certificate (always `false` when no remap happened).
    pub warm: bool,
    /// The freshly installed mapping when `decision` is `Remap`.
    pub mapping: Option<Vec<usize>>,
}

/// One row of the `admin sessions` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// Session ID.
    pub id: u64,
    /// Threads in the session's window (one per topology core).
    pub threads: usize,
    /// Deltas ingested so far.
    pub deltas: u64,
    /// Remaps triggered so far.
    pub remaps: u64,
    /// Similarity the most recent delta scored (1e6 ppm; 0 before the
    /// first delta).
    pub last_similarity_ppm: u64,
}

struct Session {
    id: u64,
    topo: Topology,
    window: DecayedMatrix,
    /// Upper-triangle cells of the window at the instant the current
    /// mapping was installed — what drift is judged against.
    reference: Vec<u64>,
    mapping: Vec<usize>,
    /// Per-level pairings of the last solve, the warm-start seed.
    pairings: Vec<Vec<(usize, usize)>>,
    seq: u64,
    remaps: u64,
    /// Sequence number of the last remap; `None` until the first one, so
    /// cooldown can never suppress the session's initial mapping.
    last_remap_seq: Option<u64>,
    last_similarity_ppm: u64,
    last_active: Instant,
    drift_threshold_ppm: u64,
    cooldown_deltas: u64,
}

impl Session {
    /// One turn of the control loop. The caller has already checked that
    /// the delta's size matches the session's window.
    fn apply_delta(
        &mut self,
        delta: &CommMatrix,
        mapper: &HierarchicalMapper,
        rec: &Recorder,
    ) -> DeltaOutcome {
        self.seq += 1;
        self.last_active = Instant::now();
        rec.inc(CounterId::SessionDeltas);
        self.window.ingest(delta);
        let cells = self.window.upper_cells();
        let similarity = cosine_u64(&cells, &self.reference);
        let similarity_ppm = (similarity.clamp(0.0, 1.0) * 1e6).round() as u64;
        self.last_similarity_ppm = similarity_ppm;
        if similarity_ppm >= self.drift_threshold_ppm {
            rec.inc(CounterId::RemapsSuppressed);
            return DeltaOutcome {
                seq: self.seq,
                similarity_ppm,
                decision: DeltaDecision::Stable,
                warm: false,
                mapping: None,
            };
        }
        if let Some(last) = self.last_remap_seq {
            if self.seq - last <= self.cooldown_deltas {
                rec.inc(CounterId::RemapsSuppressed);
                return DeltaOutcome {
                    seq: self.seq,
                    similarity_ppm,
                    decision: DeltaDecision::Cooldown,
                    warm: false,
                    mapping: None,
                };
            }
        }
        let seed = if self.pairings.is_empty() {
            None
        } else {
            Some(self.pairings.as_slice())
        };
        let start = Instant::now();
        let result = mapper
            .try_map_warm_observed(self.window.window(), &self.topo, seed, rec)
            .expect("session window is sized for its topology");
        let compute_us = start.elapsed().as_micros() as u64;
        let warm = result.fully_warm();
        self.mapping = result.mapping.as_slice().to_vec();
        self.pairings = result.pairings;
        self.reference = cells;
        self.remaps += 1;
        self.last_remap_seq = Some(self.seq);
        rec.inc(CounterId::RemapsTriggered);
        rec.inc(if warm {
            CounterId::WarmStartHits
        } else {
            CounterId::WarmStartFallbacks
        });
        rec.observe(HistId::ServeRemapLatencyUs, compute_us);
        let (session, seq) = (self.id, self.seq);
        rec.emit(|_| Event::Remap {
            session,
            seq,
            similarity_ppm,
            warm,
            compute_us,
        });
        DeltaOutcome {
            seq: self.seq,
            similarity_ppm,
            decision: DeltaDecision::Remap,
            warm,
            mapping: Some(self.mapping.clone()),
        }
    }
}

struct RegistryState {
    sessions: HashMap<u64, Arc<Mutex<Session>>>,
    next_id: u64,
}

/// The server's table of open sessions, sized and tuned from
/// [`ServeConfig`] at startup.
pub struct SessionRegistry {
    max_sessions: usize,
    decay_shift: u32,
    drift_threshold_ppm: u64,
    cooldown_deltas: u64,
    idle: Option<Duration>,
    mapper: HierarchicalMapper,
    inner: Mutex<RegistryState>,
}

impl SessionRegistry {
    /// An empty registry tuned from the server configuration's effective
    /// (hazard-free) session knobs.
    pub fn new(cfg: &ServeConfig) -> SessionRegistry {
        SessionRegistry {
            max_sessions: cfg.effective_max_sessions(),
            decay_shift: cfg.effective_session_decay_shift(),
            drift_threshold_ppm: cfg.effective_session_drift_threshold_ppm(),
            cooldown_deltas: cfg.session_cooldown_deltas,
            idle: cfg.effective_session_idle_ms().map(Duration::from_millis),
            mapper: HierarchicalMapper::new(),
            inner: Mutex::new(RegistryState {
                sessions: HashMap::new(),
                next_id: 1,
            }),
        }
    }

    /// Open a session: evict idle ones, enforce the cap, compute the
    /// initial mapping on the (empty) window. Per-session overrides fall
    /// back to the server defaults.
    pub fn open(
        &self,
        topo: Topology,
        decay_shift: Option<u32>,
        drift_threshold_ppm: Option<u64>,
        cooldown_deltas: Option<u64>,
        rec: &Recorder,
    ) -> Result<(u64, Vec<usize>), SessionError> {
        let n = topo.num_cores();
        let window = DecayedMatrix::new(n, decay_shift.unwrap_or(self.decay_shift));
        // The empty window maps deterministically (all-zero weights), so a
        // session always has an installed mapping; the first delta scores
        // similarity 0 against the all-zero reference and remaps onto the
        // first real traffic.
        let result = self
            .mapper
            .try_map_warm_observed(window.window(), &topo, None, rec)
            .map_err(|message| (ErrorCode::BadRequest, message))?;
        let mut state = self.inner.lock().unwrap();
        self.sweep(&mut state, rec);
        if state.sessions.len() >= self.max_sessions {
            return Err((
                ErrorCode::Overloaded,
                format!(
                    "session table is full ({} sessions open); close or let one idle out",
                    state.sessions.len()
                ),
            ));
        }
        let id = state.next_id;
        state.next_id += 1;
        let mapping = result.mapping.as_slice().to_vec();
        let session = Session {
            id,
            topo,
            window,
            reference: vec![0; n.saturating_sub(1) * n / 2],
            mapping: mapping.clone(),
            pairings: result.pairings,
            seq: 0,
            remaps: 0,
            last_remap_seq: None,
            last_similarity_ppm: 0,
            last_active: Instant::now(),
            drift_threshold_ppm: drift_threshold_ppm
                .unwrap_or(self.drift_threshold_ppm)
                .min(1_000_000),
            cooldown_deltas: cooldown_deltas.unwrap_or(self.cooldown_deltas),
        };
        state.sessions.insert(id, Arc::new(Mutex::new(session)));
        rec.inc(CounterId::SessionsOpened);
        Ok((id, mapping))
    }

    /// Ingest one delta and run the control loop. The registry lock is
    /// dropped before the (possibly remapping) session work so other
    /// sessions are never stalled behind a slow solve.
    pub fn delta(
        &self,
        id: u64,
        delta: &CommMatrix,
        rec: &Recorder,
    ) -> Result<DeltaOutcome, SessionError> {
        let session = {
            let mut state = self.inner.lock().unwrap();
            self.sweep(&mut state, rec);
            match state.sessions.get(&id) {
                Some(session) => Arc::clone(session),
                None => return Err(self.unknown_session(&state, id)),
            }
        };
        let mut session = session.lock().unwrap();
        if delta.num_threads() != session.window.num_threads() {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "delta is sized for {} threads but session {} holds {}",
                    delta.num_threads(),
                    id,
                    session.window.num_threads()
                ),
            ));
        }
        Ok(session.apply_delta(delta, &self.mapper, rec))
    }

    /// Close a session, returning its lifetime `(deltas, remaps)`.
    pub fn close(&self, id: u64, rec: &Recorder) -> Result<(u64, u64), SessionError> {
        let mut state = self.inner.lock().unwrap();
        self.sweep(&mut state, rec);
        match state.sessions.remove(&id) {
            Some(session) => {
                rec.inc(CounterId::SessionsClosed);
                let session = session.lock().unwrap();
                Ok((session.seq, session.remaps))
            }
            None => Err(self.unknown_session(&state, id)),
        }
    }

    /// Number of currently open sessions (evicting stale ones first).
    pub fn open_count(&self, rec: &Recorder) -> usize {
        let mut state = self.inner.lock().unwrap();
        self.sweep(&mut state, rec);
        state.sessions.len()
    }

    /// One summary row per open session, sorted by ID (for `admin
    /// sessions`).
    pub fn summaries(&self, rec: &Recorder) -> Vec<SessionSummary> {
        let mut state = self.inner.lock().unwrap();
        self.sweep(&mut state, rec);
        let mut rows: Vec<SessionSummary> = state
            .sessions
            .values()
            .map(|session| {
                let s = session.lock().unwrap();
                SessionSummary {
                    id: s.id,
                    threads: s.window.num_threads(),
                    deltas: s.seq,
                    remaps: s.remaps,
                    last_similarity_ppm: s.last_similarity_ppm,
                }
            })
            .collect();
        rows.sort_by_key(|row| row.id);
        rows
    }

    /// Evict sessions idle past the timeout. A session whose mutex is
    /// held is mid-delta — active by definition — and is skipped rather
    /// than waited on.
    fn sweep(&self, state: &mut RegistryState, rec: &Recorder) {
        let Some(idle) = self.idle else { return };
        let stale: Vec<u64> = state
            .sessions
            .iter()
            .filter_map(|(&id, session)| {
                let session = session.try_lock().ok()?;
                (session.last_active.elapsed() > idle).then_some(id)
            })
            .collect();
        for id in stale {
            state.sessions.remove(&id);
            rec.inc(CounterId::SessionsEvicted);
        }
    }

    /// The stable unknown-session answer: names the offender and lists
    /// what *would* be accepted, like the unknown-admin-kind message.
    fn unknown_session(&self, state: &RegistryState, id: u64) -> SessionError {
        let mut open: Vec<u64> = state.sessions.keys().copied().collect();
        open.sort_unstable();
        let message = if open.is_empty() {
            format!("unknown session `{id}` (no open sessions)")
        } else {
            let list = open
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" | ");
            format!("unknown session `{id}` (open sessions: {list})")
        };
        (ErrorCode::BadRequest, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbmap_obs::ObsConfig;

    fn recorder() -> Recorder {
        Recorder::new(ObsConfig::new(0).with_ring_capacity(64))
    }

    /// A delta concentrating traffic on thread pairs `(0,1)`, `(2,3)`, …
    fn phase_a(n: usize) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in (0..n).step_by(2) {
            m.add(i, i + 1, 1_000);
        }
        m
    }

    /// The opposite phase: traffic on `(0,n/2)`, `(1,n/2+1)`, …
    fn phase_b(n: usize) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n / 2 {
            m.add(i, i + n / 2, 1_000);
        }
        m
    }

    #[test]
    fn first_delta_installs_the_first_real_mapping() {
        let rec = recorder();
        let reg = SessionRegistry::new(&ServeConfig::new());
        let (id, mapping) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        assert_eq!(mapping.len(), 8);
        let out = reg.delta(id, &phase_a(8), &rec).unwrap();
        assert_eq!(out.decision, DeltaDecision::Remap);
        assert_eq!(out.seq, 1);
        assert_eq!(out.similarity_ppm, 0, "empty reference scores zero");
        assert!(out.mapping.is_some());
        assert_eq!(rec.counter(CounterId::RemapsTriggered), 1);
    }

    #[test]
    fn stationary_stream_never_remaps_again() {
        let rec = recorder();
        let reg = SessionRegistry::new(&ServeConfig::new());
        let (id, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        reg.delta(id, &phase_a(8), &rec).unwrap();
        for _ in 0..10 {
            let out = reg.delta(id, &phase_a(8), &rec).unwrap();
            assert_eq!(out.decision, DeltaDecision::Stable);
            assert_eq!(out.similarity_ppm, 1_000_000);
            assert!(out.mapping.is_none());
        }
        assert_eq!(rec.counter(CounterId::RemapsTriggered), 1);
        assert_eq!(rec.counter(CounterId::RemapsSuppressed), 10);
        let (deltas, remaps) = reg.close(id, &rec).unwrap();
        assert_eq!((deltas, remaps), (11, 1));
    }

    #[test]
    fn phase_shift_remaps_exactly_once_under_cooldown() {
        let rec = recorder();
        let cfg = ServeConfig::new().with_session_cooldown_deltas(8);
        let reg = SessionRegistry::new(&cfg);
        let (id, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        for _ in 0..8 {
            reg.delta(id, &phase_a(8), &rec).unwrap();
        }
        assert_eq!(rec.counter(CounterId::RemapsTriggered), 1);
        // Phase shift: the decayed window swings toward B; the threshold
        // crossing remaps once, then cooldown holds while the window
        // finishes converging.
        let mut decisions = Vec::new();
        for _ in 0..8 {
            decisions.push(reg.delta(id, &phase_b(8), &rec).unwrap().decision);
        }
        let remaps = decisions
            .iter()
            .filter(|&&d| d == DeltaDecision::Remap)
            .count();
        assert_eq!(remaps, 1, "decisions were {decisions:?}");
        assert_eq!(rec.counter(CounterId::RemapsTriggered), 2);
    }

    #[test]
    fn cooldown_expires_and_the_next_crossing_remaps() {
        let rec = recorder();
        // Threshold 1e6: any similarity below exactly 1.0 crosses, so
        // alternating phases cross on every delta.
        let cfg = ServeConfig::new()
            .with_session_drift_threshold_ppm(1_000_000)
            .with_session_cooldown_deltas(2);
        let reg = SessionRegistry::new(&cfg);
        let (id, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        // Alternate phases only briefly: once the decayed window converges
        // to the alternating fixpoint, same-parity windows become nearly
        // parallel and similarity rounds back up to 1.0.
        let phases = [phase_a(8), phase_b(8)];
        let mut decisions = Vec::new();
        for i in 0..4 {
            decisions.push(reg.delta(id, &phases[i % 2], &rec).unwrap().decision);
        }
        use DeltaDecision::{Cooldown, Remap};
        assert_eq!(decisions, vec![Remap, Cooldown, Cooldown, Remap]);
    }

    #[test]
    fn capacity_answers_overloaded() {
        let rec = recorder();
        let cfg = ServeConfig::new().with_max_sessions(1);
        let reg = SessionRegistry::new(&cfg);
        reg.open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        let err = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap_err();
        assert_eq!(err.0, ErrorCode::Overloaded);
        assert!(err.1.contains("session table is full"), "{}", err.1);
    }

    #[test]
    fn unknown_session_lists_open_ids() {
        let rec = recorder();
        let reg = SessionRegistry::new(&ServeConfig::new());
        let (code, message) = reg.delta(9, &phase_a(8), &rec).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert_eq!(message, "unknown session `9` (no open sessions)");
        let (a, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        let (b, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        let (_, message) = reg.close(99, &rec).unwrap_err();
        assert_eq!(
            message,
            format!("unknown session `99` (open sessions: {a} | {b})")
        );
    }

    #[test]
    fn mismatched_delta_is_a_bad_request() {
        let rec = recorder();
        let reg = SessionRegistry::new(&ServeConfig::new());
        let (id, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        let (code, message) = reg.delta(id, &phase_a(4), &rec).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(message.contains("sized for 4 threads"), "{message}");
    }

    #[test]
    fn idle_sessions_are_evicted_on_access() {
        let rec = recorder();
        let cfg = ServeConfig::new().with_session_idle_ms(1);
        let reg = SessionRegistry::new(&cfg);
        let (id, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(reg.open_count(&rec), 0);
        assert_eq!(rec.counter(CounterId::SessionsEvicted), 1);
        let (_, message) = reg.delta(id, &phase_a(8), &rec).unwrap_err();
        assert!(message.contains("no open sessions"), "{message}");
    }

    #[test]
    fn summaries_report_per_session_progress() {
        let rec = recorder();
        let reg = SessionRegistry::new(&ServeConfig::new());
        let (a, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        let (b, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        reg.delta(a, &phase_a(8), &rec).unwrap();
        reg.delta(a, &phase_a(8), &rec).unwrap();
        let rows = reg.summaries(&rec);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, a);
        assert_eq!((rows[0].deltas, rows[0].remaps), (2, 1));
        assert_eq!(rows[0].last_similarity_ppm, 1_000_000);
        assert_eq!((rows[1].id, rows[1].deltas, rows[1].remaps), (b, 0, 0));
    }

    /// The warm path actually fires on a replayed phase: the second remap
    /// onto the same stationary pattern is served warm.
    #[test]
    fn replayed_phase_hits_the_warm_start() {
        let rec = recorder();
        // Always-cross threshold so every delta past cooldown remaps.
        let cfg = ServeConfig::new()
            .with_session_drift_threshold_ppm(1_000_000)
            .with_session_cooldown_deltas(0)
            .with_session_decay_shift(1);
        let reg = SessionRegistry::new(&cfg);
        let (id, _) = reg
            .open(Topology::harpertown(), None, None, None, &rec)
            .unwrap();
        // Strong pair weights plus cross-group ties: the optimum is
        // unique at every level and the even-split certificate proves a
        // replayed pairing optimal.
        let pattern = |a: u64, b: u64, c: u64, d: u64| {
            let mut m = CommMatrix::new(8);
            m.add(0, 1, a);
            m.add(2, 3, b);
            m.add(4, 5, c);
            m.add(6, 7, d);
            m.add(0, 2, 500);
            m.add(4, 6, 500);
            m
        };
        let first = reg
            .delta(id, &pattern(4_000, 3_000, 2_000, 1_000), &rec)
            .unwrap();
        assert_eq!(first.decision, DeltaDecision::Remap);
        // The second delta shifts the pair magnitudes (so the window's
        // direction moves and similarity drops below 1.0) but keeps the
        // same dominant structure: the previous pairing is still optimal
        // and certifies warm at every level.
        let second = reg
            .delta(id, &pattern(1_000, 2_000, 3_000, 4_000), &rec)
            .unwrap();
        assert_eq!(second.decision, DeltaDecision::Remap);
        assert!(second.warm, "replayed phase should certify warm");
        assert_eq!(second.mapping, first.mapping);
        assert!(rec.counter(CounterId::WarmStartHits) >= 1);
    }
}
