//! The mapping server: acceptor, bounded work queue, worker pool.
//!
//! ## Threading model
//!
//! ```text
//! acceptor thread ──accept──▶ one thread per connection
//!                                   │  (parses frames, answers
//!                                   │   health/stats inline)
//!                                   ▼
//!                           bounded job queue ──▶ worker pool
//!                                   │                 │
//!                            full → `overloaded`      ▼
//!                                            cache / mapper
//! ```
//!
//! Backpressure is explicit: the queue is bounded and a full queue answers
//! an `overloaded` error frame immediately instead of letting latency grow
//! without bound. Deadlines are checked when a worker dequeues a job — a
//! request that waited past its deadline is answered `timeout` without
//! doing the work. Shutdown is graceful: the acceptor stops, connection
//! threads finish their in-flight request, and workers drain every job
//! already admitted to the queue before exiting.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tlbmap_core::CommMatrix;
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{CounterId, HistId, Json, Recorder};
use tlbmap_sim::Topology;

use crate::cache::{CacheKey, CacheOutcome, MapCache};
use crate::config::ServeConfig;
use crate::protocol::{check_version, write_frame, ErrorCode, FrameError, Request, Response};

/// How often blocked reads wake up to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// How often the non-blocking acceptor polls between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

struct Job {
    matrix: CommMatrix,
    topo: Topology,
    deadline: Option<Instant>,
    delay_ms: u64,
    reply: mpsc::Sender<Response>,
}

enum SubmitError {
    Full,
    Closed,
}

/// Bounded MPMC job queue: producers fail fast when full, consumers drain
/// everything admitted before observing closure.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admit a job, or fail fast. On success returns the queue depth
    /// *after* the push (for the queue-depth histogram).
    fn try_push(&self, job: Job) -> Result<usize, SubmitError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block for the next job. Returns `None` only once the queue is
    /// closed **and** empty, so admitted work is always drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: JobQueue,
    cache: Option<MapCache>,
    rec: Recorder,
    shutdown: AtomicBool,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The mapping server. Construct with [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7411"`, or port 0 for an ephemeral
    /// port) and start the acceptor and worker threads. All observability
    /// flows through `rec`.
    pub fn start(addr: &str, cfg: ServeConfig, rec: Recorder) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.effective_queue_capacity()),
            cache: cfg.effective_cache_capacity().map(MapCache::new),
            rec,
            shutdown: AtomicBool::new(false),
            cfg,
        });

        let workers = (0..cfg.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &shared, &conns))
                .expect("spawn acceptor thread")
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            conns,
        })
    }
}

/// A running server: its address, its recorder, and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder the server reports into — read counters or export
    /// metrics from here after (or during) a run.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.rec
    }

    /// Whether shutdown has begun (via [`Self::shutdown`] or a client
    /// `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Begin graceful shutdown from the hosting process: stop accepting,
    /// drain admitted work, then let every thread exit.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the server to finish. Only returns once shutdown has been
    /// triggered (by [`Self::shutdown`] or a client request) and all
    /// in-flight work has drained.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for conn in conns {
            let _ = conn.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared))
                    .expect("spawn connection thread");
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutting_down() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Read one frame with periodic shutdown checks. `Ok(None)` means the
/// server is shutting down and the connection should wind up.
fn read_frame_polled(
    stream: &mut TcpStream,
    max_bytes: usize,
    shared: &Shared,
) -> Result<Option<Json>, FrameError> {
    fn fill(
        stream: &mut TcpStream,
        buf: &mut [u8],
        shared: &Shared,
        frame_started: bool,
    ) -> Result<bool, FrameError> {
        let mut filled = 0;
        while filled < buf.len() {
            match stream.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 && !frame_started => return Err(FrameError::Closed),
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame",
                    )))
                }
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.shutting_down() {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(true)
    }

    let mut len_buf = [0u8; 4];
    if !fill(stream, &mut len_buf, shared, false)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    if !fill(stream, &mut payload, shared, true)? {
        return Ok(None);
    }
    let text =
        std::str::from_utf8(&payload).map_err(|e| FrameError::Parse(format!("not UTF-8: {e}")))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| FrameError::Parse(e.message))
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let max_bytes = shared.cfg.effective_max_frame_bytes();
    loop {
        let json = match read_frame_polled(&mut stream, max_bytes, shared) {
            Ok(Some(json)) => json,
            // Shutdown while idle: the connection winds up.
            Ok(None) => return,
            // Clean EOF at a frame boundary: client hung up.
            Err(FrameError::Closed) => return,
            // A bad payload leaves the framing intact (the length prefix
            // was honoured), so answer and keep the connection alive.
            Err(e @ FrameError::Parse(_)) => {
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                };
                if write_frame(&mut stream, &resp.to_json()).is_err() {
                    return;
                }
                continue;
            }
            // Oversized frames cannot be resynchronized without reading
            // (and discarding) the announced bytes; answer, then close.
            Err(e @ FrameError::TooLarge(_)) => {
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.to_json());
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let response = handle_payload(&json, shared);
        if write_frame(&mut stream, &response.to_json()).is_err() {
            return;
        }
    }
}

fn handle_payload(json: &Json, shared: &Arc<Shared>) -> Response {
    if let Err(message) = check_version(json) {
        return Response::Error {
            code: ErrorCode::BadFrame,
            message,
        };
    }
    let request = match Request::from_json(json) {
        Ok(request) => request,
        Err(message) => {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message,
            }
        }
    };
    shared.rec.inc(CounterId::ServeRequests);
    match request {
        Request::Health => Response::Health,
        Request::Stats => Response::Stats(stats_doc(shared)),
        Request::Shutdown => {
            shared.begin_shutdown();
            Response::Shutdown
        }
        Request::Map {
            matrix,
            topo,
            deadline_ms,
            delay_ms,
        } => {
            let start = Instant::now();
            let response = submit_map(shared, matrix, topo, deadline_ms, delay_ms, start);
            shared.rec.observe(
                HistId::ServeRequestLatencyUs,
                start.elapsed().as_micros() as u64,
            );
            response
        }
    }
}

fn submit_map(
    shared: &Arc<Shared>,
    matrix: CommMatrix,
    topo: Topology,
    deadline_ms: Option<u64>,
    delay_ms: u64,
    start: Instant,
) -> Response {
    if shared.shutting_down() {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining for shutdown".to_string(),
        };
    }
    let deadline = deadline_ms
        .or(shared.cfg.effective_default_deadline_ms())
        .map(|ms| start + Duration::from_millis(ms));
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        matrix,
        topo,
        deadline,
        delay_ms,
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.rec.observe(HistId::ServeQueueDepth, depth as u64);
            match reply_rx.recv() {
                Ok(response) => response,
                Err(_) => Response::Error {
                    code: ErrorCode::Internal,
                    message: "worker dropped the request".to_string(),
                },
            }
        }
        Err(SubmitError::Full) => {
            shared.rec.inc(CounterId::ServeOverloaded);
            Response::Error {
                code: ErrorCode::Overloaded,
                message: format!(
                    "work queue is full ({} requests waiting)",
                    shared.cfg.effective_queue_capacity()
                ),
            }
        }
        Err(SubmitError::Closed) => Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining for shutdown".to_string(),
        },
    }
}

fn stats_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    Json::obj(vec![
        ("requests", Json::U64(rec.counter(CounterId::ServeRequests))),
        (
            "overloaded",
            Json::U64(rec.counter(CounterId::ServeOverloaded)),
        ),
        ("timeouts", Json::U64(rec.counter(CounterId::ServeTimeouts))),
        (
            "cache_hits",
            Json::U64(rec.counter(CounterId::ServeCacheHits)),
        ),
        (
            "cache_misses",
            Json::U64(rec.counter(CounterId::ServeCacheMisses)),
        ),
        ("queue_depth", Json::U64(shared.queue.depth() as u64)),
        (
            "cache_entries",
            Json::U64(shared.cache.as_ref().map_or(0, MapCache::len) as u64),
        ),
        ("workers", Json::U64(shared.cfg.effective_workers() as u64)),
    ])
}

fn worker_loop(shared: &Arc<Shared>) {
    let mapper = HierarchicalMapper::new();
    while let Some(job) = shared.queue.pop() {
        if job.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(job.delay_ms));
        }
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                shared.rec.inc(CounterId::ServeTimeouts);
                let _ = job.reply.send(Response::Error {
                    code: ErrorCode::Timeout,
                    message: "deadline passed before a worker reached the request".to_string(),
                });
                continue;
            }
        }
        let response = compute_map(shared, &mapper, &job.matrix, &job.topo);
        let _ = job.reply.send(response);
    }
}

fn compute_map(
    shared: &Arc<Shared>,
    mapper: &HierarchicalMapper,
    matrix: &CommMatrix,
    topo: &Topology,
) -> Response {
    let compute = || mapper.try_map(matrix, topo).map(|m| m.as_slice().to_vec());
    let (result, outcome) = match &shared.cache {
        Some(cache) => {
            let key = CacheKey {
                fingerprint: matrix.fingerprint(),
                chips: topo.chips,
                l2_per_chip: topo.l2_per_chip,
                cores_per_l2: topo.cores_per_l2,
            };
            cache.get_or_compute(key, compute)
        }
        None => (compute(), CacheOutcome::Miss),
    };
    match outcome {
        CacheOutcome::Hit | CacheOutcome::Coalesced => shared.rec.inc(CounterId::ServeCacheHits),
        CacheOutcome::Miss => shared.rec.inc(CounterId::ServeCacheMisses),
    }
    match result {
        Ok(mapping) => Response::Map {
            mapping,
            cached: outcome != CacheOutcome::Miss,
        },
        Err(message) => Response::Error {
            code: ErrorCode::BadRequest,
            message,
        },
    }
}
