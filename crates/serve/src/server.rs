//! The mapping server: acceptor, bounded work queue, worker pool, and the
//! live telemetry plane.
//!
//! ## Threading model
//!
//! ```text
//! acceptor thread ──accept──▶ one thread per connection
//!                                   │  (parses frames, answers
//!                                   │   health/stats/admin inline)
//!                                   ▼
//!                           bounded job queue ──▶ worker pool
//!                                   │                 │
//!                            full → `overloaded`      ▼
//!                                            cache / mapper
//! ```
//!
//! Backpressure is explicit: the queue is bounded and a full queue answers
//! an `overloaded` error frame immediately instead of letting latency grow
//! without bound. Deadlines are checked when a worker dequeues a job — a
//! request that waited past its deadline is answered `timeout` without
//! doing the work. Shutdown is graceful: the acceptor stops, connection
//! threads finish their in-flight request, and workers drain every job
//! already admitted to the queue before exiting.
//!
//! ## Telemetry plane
//!
//! Every request gets an ID at the connection (connection ID in the high
//! 32 bits, per-connection sequence in the low 32) and is timed through
//! parse → queue wait → compute. The spans land in three places:
//!
//! * the [`Recorder`] event ring as [`Event::ServeRequest`] entries,
//! * a [`LiveRegistry`] of rolling-window histograms so the `admin stats`
//!   frame answers "what is p99 *right now*" instead of since-boot,
//! * a bounded slow-request ring (served by `admin trace`) plus an
//!   optional JSONL writer, for requests over
//!   [`ServeConfig::slow_threshold_us`].
//!
//! Per-error-code counting happens at the single response-send choke
//! point, so every `bad_frame`/`overloaded`/`timeout`/… answer is counted
//! exactly once no matter where it originated. A plain `GET` on the
//! service port (detected by the 4 length-prefix bytes spelling `"GET "`)
//! is answered with a plain-text metrics exposition so `curl` and scrapers
//! work without speaking the frame protocol.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tlbmap_core::CommMatrix;
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{CounterId, Event, HistId, Json, LiveRegistry, Recorder};
use tlbmap_sim::Topology;

use crate::cache::{CacheKey, CacheOutcome, MapCache};
use crate::config::ServeConfig;
use crate::protocol::{
    check_version, write_frame, AdminKind, ErrorCode, FrameError, Request, Response,
};
use crate::session::SessionRegistry;

/// How often blocked reads wake up to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// How often the non-blocking acceptor polls between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Most recent slow-request entries retained for `admin trace`.
const SLOW_RING_CAP: usize = 256;

/// A connection thread's verdict plus the worker-side span timings, sent
/// back over the job's reply channel.
struct WorkerDone {
    response: Response,
    /// Time the job spent queued before a worker dequeued it.
    queue_us: u64,
    /// Worker time (artificial delay + cache probe + mapper).
    compute_us: u64,
}

struct Job {
    req_id: u64,
    matrix: CommMatrix,
    topo: Topology,
    deadline: Option<Instant>,
    delay_ms: u64,
    enqueued_at: Instant,
    reply: mpsc::Sender<WorkerDone>,
}

enum SubmitError {
    Full,
    Closed,
}

/// Bounded MPMC job queue: producers fail fast when full, consumers drain
/// everything admitted before observing closure.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admit a job, or fail fast. On success returns the queue depth
    /// *after* the push (for the queue-depth histogram).
    fn try_push(&self, job: Job) -> Result<usize, SubmitError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block for the next job. Returns the job plus the queue depth
    /// *after* the pop (so drain is visible in the depth histogram, not
    /// just buildup). `None` only once the queue is closed **and** empty,
    /// so admitted work is always drained.
    fn pop(&self) -> Option<(Job, usize)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                let depth = state.jobs.len();
                return Some((job, depth));
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: JobQueue,
    cache: Option<MapCache>,
    rec: Recorder,
    /// Rolling-window live metrics behind the admin endpoint.
    live: LiveRegistry,
    /// Wall clock the uptime and utilization are measured against.
    started: Instant,
    /// Next connection ID (the high half of every request ID).
    next_conn_id: AtomicU64,
    /// Workers currently processing a job (gauge).
    busy_workers: AtomicU64,
    /// Cumulative worker busy time in microseconds (for utilization).
    busy_us: AtomicU64,
    /// Most recent slow requests, oldest first (`admin trace`).
    slow_ring: Mutex<VecDeque<Json>>,
    /// Optional JSONL sink for slow requests (one object per line).
    slow_writer: Option<Mutex<Box<dyn Write + Send>>>,
    /// Open streaming sessions (the `open_session`/`delta` plane).
    sessions: SessionRegistry,
    shutdown: AtomicBool,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// The mapping server. Construct with [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7411"`, or port 0 for an ephemeral
    /// port) and start the acceptor and worker threads. All observability
    /// flows through `rec`.
    pub fn start(addr: &str, cfg: ServeConfig, rec: Recorder) -> io::Result<ServerHandle> {
        Server::start_with_slow_log(addr, cfg, rec, None)
    }

    /// [`Server::start`] with a sink for the slow-request log: every
    /// request slower than [`ServeConfig::slow_threshold_us`] is appended
    /// to `slow_log` as one JSON object per line, in addition to the
    /// in-memory ring `admin trace` serves.
    pub fn start_with_slow_log(
        addr: &str,
        cfg: ServeConfig,
        rec: Recorder,
        slow_log: Option<Box<dyn Write + Send>>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.effective_queue_capacity()),
            cache: cfg.effective_cache_capacity().map(MapCache::new),
            rec,
            live: LiveRegistry::new(cfg.effective_telemetry()),
            started: Instant::now(),
            next_conn_id: AtomicU64::new(1),
            busy_workers: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            slow_ring: Mutex::new(VecDeque::new()),
            slow_writer: slow_log.map(Mutex::new),
            sessions: SessionRegistry::new(&cfg),
            shutdown: AtomicBool::new(false),
            cfg,
        });

        let workers = (0..cfg.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &shared, &conns))
                .expect("spawn acceptor thread")
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            conns,
        })
    }
}

/// A running server: its address, its recorder, and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder the server reports into — read counters or export
    /// metrics from here after (or during) a run.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.rec
    }

    /// The live rolling-window registry the admin endpoint snapshots.
    pub fn live(&self) -> &LiveRegistry {
        &self.shared.live
    }

    /// Whether shutdown has begun (via [`Self::shutdown`] or a client
    /// `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Begin graceful shutdown from the hosting process: stop accepting,
    /// drain admitted work, then let every thread exit.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the server to finish. Only returns once shutdown has been
    /// triggered (by [`Self::shutdown`] or a client request) and all
    /// in-flight work has drained.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for conn in conns {
            let _ = conn.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared))
                    .expect("spawn connection thread");
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutting_down() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// What arrived on the wire.
enum Incoming {
    /// A complete frame payload.
    Frame(Json),
    /// The server began shutting down while the read was blocked.
    Shutdown,
    /// The four length-prefix bytes spell `"GET "`: an HTTP scraper.
    HttpGet,
}

/// Read one frame with periodic shutdown checks, detecting plain HTTP
/// `GET`s by their signature in the length-prefix position (`"GET "` as a
/// big-endian u32 would announce a ~1.2 GiB frame, so the two protocols
/// cannot collide under any sane frame cap).
fn read_frame_polled(
    stream: &mut TcpStream,
    max_bytes: usize,
    shared: &Shared,
) -> Result<Incoming, FrameError> {
    fn fill(
        stream: &mut TcpStream,
        buf: &mut [u8],
        shared: &Shared,
        frame_started: bool,
    ) -> Result<bool, FrameError> {
        let mut filled = 0;
        while filled < buf.len() {
            match stream.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 && !frame_started => return Err(FrameError::Closed),
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame",
                    )))
                }
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.shutting_down() {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(true)
    }

    let mut len_buf = [0u8; 4];
    if !fill(stream, &mut len_buf, shared, false)? {
        return Ok(Incoming::Shutdown);
    }
    if &len_buf == b"GET " {
        return Ok(Incoming::HttpGet);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    if !fill(stream, &mut payload, shared, true)? {
        return Ok(Incoming::Shutdown);
    }
    let text =
        std::str::from_utf8(&payload).map_err(|e| FrameError::Parse(format!("not UTF-8: {e}")))?;
    Json::parse(text)
        .map(Incoming::Frame)
        .map_err(|e| FrameError::Parse(e.message))
}

/// Count an outgoing error frame by its stable code, then write it. The
/// single choke point: every error answer — from frame decoding, admission
/// control, the workers — is counted exactly once, and the counters stay
/// ahead of the client's view of the response.
fn send_response(stream: &mut TcpStream, shared: &Shared, response: &Response) -> io::Result<()> {
    if let Response::Error { code, .. } = response {
        let counter = match code {
            ErrorCode::BadFrame => CounterId::ServeBadFrames,
            ErrorCode::BadRequest => CounterId::ServeBadRequests,
            ErrorCode::Overloaded => CounterId::ServeOverloaded,
            ErrorCode::Timeout => CounterId::ServeTimeouts,
            ErrorCode::ShuttingDown => CounterId::ServeShuttingDown,
            ErrorCode::Internal => CounterId::ServeInternalErrors,
        };
        shared.rec.inc(counter);
    }
    write_frame(stream, &response.to_json())
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let max_bytes = shared.cfg.effective_max_frame_bytes();
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let mut seq: u64 = 0;
    loop {
        let json = match read_frame_polled(&mut stream, max_bytes, shared) {
            Ok(Incoming::Frame(json)) => json,
            // Shutdown while idle: the connection winds up.
            Ok(Incoming::Shutdown) => return,
            // An HTTP scraper: answer the plain-text exposition (if
            // enabled) and close — HTTP/1.0 semantics, one shot.
            Ok(Incoming::HttpGet) => {
                if shared.cfg.http_stats {
                    serve_http_exposition(&mut stream, shared);
                }
                return;
            }
            // Clean EOF at a frame boundary: client hung up.
            Err(FrameError::Closed) => return,
            // A bad payload leaves the framing intact (the length prefix
            // was honoured), so answer and keep the connection alive.
            Err(e @ FrameError::Parse(_)) => {
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                };
                if send_response(&mut stream, shared, &resp).is_err() {
                    return;
                }
                continue;
            }
            // Oversized frames cannot be resynchronized without reading
            // (and discarding) the announced bytes; answer, then close.
            Err(e @ FrameError::TooLarge(_)) => {
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                };
                let _ = send_response(&mut stream, shared, &resp);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let started = Instant::now();
        seq += 1;
        let req_id = (conn_id << 32) | (seq & 0xffff_ffff);
        let done = handle_payload(&json, shared, req_id);
        let total_us = started.elapsed().as_micros() as u64;
        finish_request(shared, req_id, &done, total_us);
        if send_response(&mut stream, shared, &done.response).is_err() {
            return;
        }
    }
}

/// A handled request: the answer plus everything the telemetry plane
/// wants to know about how it went.
struct Handled {
    response: Response,
    /// Stable request-kind name (`map`, `health`, … or `?` for frames
    /// that failed validation).
    kind: &'static str,
    parse_us: u64,
    queue_us: u64,
    compute_us: u64,
    cached: bool,
}

impl Handled {
    fn inline(response: Response, kind: &'static str, parse_us: u64) -> Handled {
        Handled {
            response,
            kind,
            parse_us,
            queue_us: 0,
            compute_us: 0,
            cached: false,
        }
    }
}

/// Post-response bookkeeping: span timings into the live windows and the
/// event ring, plus the slow-request log.
fn finish_request(shared: &Shared, req_id: u64, done: &Handled, total_us: u64) {
    let outcome = match &done.response {
        Response::Error { code, .. } => code.as_str(),
        _ => "ok",
    };
    if done.kind == "map" {
        shared.rec.observe(HistId::ServeRequestLatencyUs, total_us);
        shared.live.observe(HistId::ServeRequestLatencyUs, total_us);
    }
    let kind = done.kind;
    let (parse_us, queue_us, compute_us, cached) =
        (done.parse_us, done.queue_us, done.compute_us, done.cached);
    shared.rec.emit(|_| Event::ServeRequest {
        req_id,
        kind,
        parse_us,
        queue_us,
        compute_us,
        total_us,
        cached,
        outcome,
    });
    if let Some(threshold) = shared.cfg.effective_slow_threshold_us() {
        if total_us >= threshold {
            shared.rec.inc(CounterId::ServeSlowRequests);
            let entry = Json::obj(vec![
                ("req_id", Json::U64(req_id)),
                ("kind", Json::Str(kind.into())),
                ("parse_us", Json::U64(parse_us)),
                ("queue_us", Json::U64(queue_us)),
                ("compute_us", Json::U64(compute_us)),
                ("total_us", Json::U64(total_us)),
                ("cached", Json::Bool(cached)),
                ("outcome", Json::Str(outcome.into())),
            ]);
            if let Some(writer) = &shared.slow_writer {
                let mut w = writer.lock().unwrap();
                let _ = writeln!(w, "{}", entry.render());
                let _ = w.flush();
            }
            let mut ring = shared.slow_ring.lock().unwrap();
            if ring.len() == SLOW_RING_CAP {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
    }
}

fn handle_payload(json: &Json, shared: &Arc<Shared>, req_id: u64) -> Handled {
    let parse_start = Instant::now();
    if let Err(message) = check_version(json) {
        return Handled::inline(
            Response::Error {
                code: ErrorCode::BadFrame,
                message,
            },
            "?",
            parse_start.elapsed().as_micros() as u64,
        );
    }
    let request = match Request::from_json(json) {
        Ok(request) => request,
        Err(message) => {
            return Handled::inline(
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message,
                },
                "?",
                parse_start.elapsed().as_micros() as u64,
            )
        }
    };
    let parse_us = parse_start.elapsed().as_micros() as u64;
    shared.rec.inc(CounterId::ServeRequests);
    match request {
        Request::Health => Handled::inline(Response::Health, "health", parse_us),
        Request::Stats => Handled::inline(Response::Stats(stats_doc(shared)), "stats", parse_us),
        Request::Admin { kind } => {
            let doc = match kind {
                AdminKind::Stats => admin_stats_doc(shared),
                AdminKind::Health => admin_health_doc(shared),
                AdminKind::Trace => admin_trace_doc(shared),
                AdminKind::Flight => admin_flight_doc(shared),
                AdminKind::Sessions => admin_sessions_doc(shared),
            };
            Handled::inline(Response::Admin { kind, doc }, "admin", parse_us)
        }
        Request::OpenSession {
            topo,
            decay_shift,
            drift_threshold_ppm,
            cooldown_deltas,
        } => {
            if shared.shutting_down() {
                return Handled::inline(drain_refusal(), "open_session", parse_us);
            }
            let start = Instant::now();
            let response = match shared.sessions.open(
                topo,
                decay_shift,
                drift_threshold_ppm,
                cooldown_deltas,
                &shared.rec,
            ) {
                Ok((session, mapping)) => Response::OpenSession { session, mapping },
                Err((code, message)) => Response::Error { code, message },
            };
            let mut done = Handled::inline(response, "open_session", parse_us);
            done.compute_us = start.elapsed().as_micros() as u64;
            done
        }
        Request::Delta { session, delta } => {
            if shared.shutting_down() {
                return Handled::inline(drain_refusal(), "delta", parse_us);
            }
            let start = Instant::now();
            let response = match shared.sessions.delta(session, &delta, &shared.rec) {
                Ok(outcome) => Response::Delta {
                    session,
                    seq: outcome.seq,
                    similarity_ppm: outcome.similarity_ppm,
                    decision: outcome.decision,
                    warm: outcome.warm,
                    mapping: outcome.mapping,
                },
                Err((code, message)) => Response::Error { code, message },
            };
            let mut done = Handled::inline(response, "delta", parse_us);
            done.compute_us = start.elapsed().as_micros() as u64;
            done
        }
        // Close is honoured even while draining: it is how a streaming
        // client finishes, so a drain must not strand its sessions.
        Request::CloseSession { session } => {
            let response = match shared.sessions.close(session, &shared.rec) {
                Ok((deltas, remaps)) => Response::CloseSession {
                    session,
                    deltas,
                    remaps,
                },
                Err((code, message)) => Response::Error { code, message },
            };
            Handled::inline(response, "close_session", parse_us)
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            Handled::inline(Response::Shutdown, "shutdown", parse_us)
        }
        Request::Map {
            matrix,
            topo,
            deadline_ms,
            delay_ms,
        } => {
            shared.rec.inc(CounterId::ServeMapRequests);
            let start = Instant::now();
            let done = submit_map(shared, req_id, matrix, topo, deadline_ms, delay_ms, start);
            let cached = matches!(done.response, Response::Map { cached: true, .. });
            Handled {
                response: done.response,
                kind: "map",
                parse_us,
                queue_us: done.queue_us,
                compute_us: done.compute_us,
                cached,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn submit_map(
    shared: &Arc<Shared>,
    req_id: u64,
    matrix: CommMatrix,
    topo: Topology,
    deadline_ms: Option<u64>,
    delay_ms: u64,
    start: Instant,
) -> WorkerDone {
    let refused = |code: ErrorCode, message: String| WorkerDone {
        response: Response::Error { code, message },
        queue_us: 0,
        compute_us: 0,
    };
    if shared.shutting_down() {
        return refused(
            ErrorCode::ShuttingDown,
            "server is draining for shutdown".to_string(),
        );
    }
    let deadline = deadline_ms
        .or(shared.cfg.effective_default_deadline_ms())
        .map(|ms| start + Duration::from_millis(ms));
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        req_id,
        matrix,
        topo,
        deadline,
        delay_ms,
        enqueued_at: start,
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.rec.observe(HistId::ServeQueueDepth, depth as u64);
            shared.live.observe(HistId::ServeQueueDepth, depth as u64);
            match reply_rx.recv() {
                Ok(done) => done,
                Err(_) => refused(
                    ErrorCode::Internal,
                    "worker dropped the request".to_string(),
                ),
            }
        }
        Err(SubmitError::Full) => refused(
            ErrorCode::Overloaded,
            format!(
                "work queue is full ({} requests waiting)",
                shared.cfg.effective_queue_capacity()
            ),
        ),
        Err(SubmitError::Closed) => refused(
            ErrorCode::ShuttingDown,
            "server is draining for shutdown".to_string(),
        ),
    }
}

/// The legacy `stats` document (stable keys — older clients parse these).
fn stats_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    Json::obj(vec![
        ("requests", Json::U64(rec.counter(CounterId::ServeRequests))),
        (
            "overloaded",
            Json::U64(rec.counter(CounterId::ServeOverloaded)),
        ),
        ("timeouts", Json::U64(rec.counter(CounterId::ServeTimeouts))),
        (
            "cache_hits",
            Json::U64(rec.counter(CounterId::ServeCacheHits)),
        ),
        (
            "cache_misses",
            Json::U64(rec.counter(CounterId::ServeCacheMisses)),
        ),
        ("queue_depth", Json::U64(shared.queue.depth() as u64)),
        (
            "cache_entries",
            Json::U64(shared.cache.as_ref().map_or(0, MapCache::len) as u64),
        ),
        ("workers", Json::U64(shared.cfg.effective_workers() as u64)),
    ])
}

/// The `admin stats` document: a flat object (easy to grep, easy for
/// `tlbmap top` to tabulate) of counters, gauges, and the rolling-window
/// latency quantiles. Quantile keys are `null` when the window is empty.
fn admin_stats_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    let c = |id: CounterId| Json::U64(rec.counter(id));
    // Satellite fix: the queue depth histograms were only fed at enqueue,
    // so an idle (or fully drained) queue was invisible. Sampling here
    // makes every admin snapshot a depth observation too.
    let depth = shared.queue.depth() as u64;
    rec.observe(HistId::ServeQueueDepth, depth);
    shared.live.observe(HistId::ServeQueueDepth, depth);

    let uptime_ms = shared.uptime_ms();
    let workers = shared.cfg.effective_workers() as u64;
    let busy_us = shared.busy_us.load(Ordering::Relaxed);
    let capacity_us = (uptime_ms * 1000).max(1) * workers;
    let utilization = (busy_us as f64 / capacity_us as f64).min(1.0);

    let window = shared.live.window(HistId::ServeRequestLatencyUs);
    let lifetime = shared.live.lifetime(HistId::ServeRequestLatencyUs);
    let window_ms = shared.live.window_ms();
    let window_rps = window.count as f64 / (window_ms as f64 / 1000.0);
    let q = |snap: Option<u64>| snap.map_or(Json::Null, Json::U64);

    Json::obj(vec![
        ("uptime_ms", Json::U64(uptime_ms)),
        ("requests", c(CounterId::ServeRequests)),
        ("map_requests", c(CounterId::ServeMapRequests)),
        ("queue_depth", Json::U64(depth)),
        (
            "queue_capacity",
            Json::U64(shared.cfg.effective_queue_capacity() as u64),
        ),
        ("workers", Json::U64(workers)),
        (
            "workers_busy",
            Json::U64(shared.busy_workers.load(Ordering::Relaxed)),
        ),
        ("utilization", Json::F64(utilization)),
        ("cache_hits", c(CounterId::ServeCacheHits)),
        ("cache_misses", c(CounterId::ServeCacheMisses)),
        ("cache_coalesced", c(CounterId::ServeCacheCoalesced)),
        (
            "cache_entries",
            Json::U64(shared.cache.as_ref().map_or(0, MapCache::len) as u64),
        ),
        ("err_bad_frame", c(CounterId::ServeBadFrames)),
        ("err_bad_request", c(CounterId::ServeBadRequests)),
        ("err_overloaded", c(CounterId::ServeOverloaded)),
        ("err_timeout", c(CounterId::ServeTimeouts)),
        ("err_shutting_down", c(CounterId::ServeShuttingDown)),
        ("err_internal", c(CounterId::ServeInternalErrors)),
        ("window_ms", Json::U64(window_ms)),
        ("window_count", Json::U64(window.count)),
        ("window_rps", Json::F64(window_rps)),
        ("window_p50_us", q(window.quantile(50.0))),
        ("window_p90_us", q(window.quantile(90.0))),
        ("window_p99_us", q(window.quantile(99.0))),
        ("lifetime_p50_us", q(lifetime.quantile(50.0))),
        ("lifetime_p99_us", q(lifetime.quantile(99.0))),
        ("slow_threshold_us", Json::U64(shared.cfg.slow_threshold_us)),
        ("slow_requests", c(CounterId::ServeSlowRequests)),
        (
            "open_sessions",
            Json::U64(shared.sessions.open_count(rec) as u64),
        ),
        ("sessions_opened", c(CounterId::SessionsOpened)),
        ("sessions_closed", c(CounterId::SessionsClosed)),
        ("sessions_evicted", c(CounterId::SessionsEvicted)),
        ("session_deltas", c(CounterId::SessionDeltas)),
        ("remaps_triggered", c(CounterId::RemapsTriggered)),
        ("remaps_suppressed", c(CounterId::RemapsSuppressed)),
        ("warm_start_hits", c(CounterId::WarmStartHits)),
        ("warm_start_fallbacks", c(CounterId::WarmStartFallbacks)),
    ])
}

/// The `admin sessions` document: the same counters the stats document
/// carries (so `tlbmap top` needs one scrape), plus one row per open
/// session.
fn admin_sessions_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    let c = |id: CounterId| Json::U64(rec.counter(id));
    let rows: Vec<Json> = shared
        .sessions
        .summaries(rec)
        .into_iter()
        .map(|row| {
            Json::obj(vec![
                ("id", Json::U64(row.id)),
                ("threads", Json::U64(row.threads as u64)),
                ("deltas", Json::U64(row.deltas)),
                ("remaps", Json::U64(row.remaps)),
                ("last_similarity_ppm", Json::U64(row.last_similarity_ppm)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("open_sessions", Json::U64(rows.len() as u64)),
        (
            "max_sessions",
            Json::U64(shared.cfg.effective_max_sessions() as u64),
        ),
        ("sessions_opened", c(CounterId::SessionsOpened)),
        ("sessions_closed", c(CounterId::SessionsClosed)),
        ("sessions_evicted", c(CounterId::SessionsEvicted)),
        ("session_deltas", c(CounterId::SessionDeltas)),
        ("remaps_triggered", c(CounterId::RemapsTriggered)),
        ("remaps_suppressed", c(CounterId::RemapsSuppressed)),
        ("warm_start_hits", c(CounterId::WarmStartHits)),
        ("warm_start_fallbacks", c(CounterId::WarmStartFallbacks)),
        ("sessions", Json::Arr(rows)),
    ])
}

/// The refusal open/delta frames get while the server drains.
fn drain_refusal() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is draining for shutdown".to_string(),
    }
}

/// The `admin health` document: liveness with uptime and drain state.
fn admin_health_doc(shared: &Shared) -> Json {
    let draining = shared.shutting_down();
    Json::obj(vec![
        (
            "status",
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("uptime_ms", Json::U64(shared.uptime_ms())),
        ("shutting_down", Json::Bool(draining)),
    ])
}

/// The `admin trace` document: the slow-request ring, oldest first.
fn admin_trace_doc(shared: &Shared) -> Json {
    Json::Arr(shared.slow_ring.lock().unwrap().iter().cloned().collect())
}

/// The `admin flight` document: the recorder's flight section (retained
/// windows, phase timeline, per-phase aggregates), or `null` when the
/// flight recorder is disabled.
fn admin_flight_doc(shared: &Shared) -> Json {
    shared.rec.flight_json()
}

/// Render the plain-text exposition: one `tlbmap_<key> <value>` line per
/// numeric field of the admin stats document, in document order.
fn exposition_text(shared: &Shared) -> String {
    let doc = admin_stats_doc(shared);
    let mut out = String::new();
    if let Json::Obj(pairs) = &doc {
        for (key, value) in pairs {
            match value {
                Json::U64(n) => out.push_str(&format!("tlbmap_{key} {n}\n")),
                Json::F64(x) => out.push_str(&format!("tlbmap_{key} {x:.6}\n")),
                // Null quantiles (empty window) are omitted rather than
                // reported as 0 — a scraper must not graph "infinitely
                // fast" out of "no traffic".
                _ => {}
            }
        }
    }
    out
}

/// Answer an HTTP `GET` with the exposition and close. The request line
/// and headers are drained best-effort first so the peer does not see a
/// reset before it finishes sending.
fn serve_http_exposition(stream: &mut TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut drained = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while drained.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                drained.extend_from_slice(&buf[..n]);
                if drained.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = exposition_text(shared);
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn worker_loop(shared: &Arc<Shared>) {
    let mapper = HierarchicalMapper::new();
    while let Some((job, depth)) = shared.queue.pop() {
        // Satellite fix: sample the depth at dequeue too, so the
        // histograms see the queue draining, not only filling.
        shared.rec.observe(HistId::ServeQueueDepth, depth as u64);
        shared.live.observe(HistId::ServeQueueDepth, depth as u64);
        let queue_us = job.enqueued_at.elapsed().as_micros() as u64;
        shared.busy_workers.fetch_add(1, Ordering::Relaxed);
        let busy_start = Instant::now();
        if job.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(job.delay_ms));
        }
        let expired = job
            .deadline
            .is_some_and(|deadline| Instant::now() > deadline);
        let response = if expired {
            Response::Error {
                code: ErrorCode::Timeout,
                message: format!(
                    "request {:#x}: deadline passed before a worker reached it",
                    job.req_id
                ),
            }
        } else {
            compute_map(shared, &mapper, &job.matrix, &job.topo)
        };
        let compute_us = busy_start.elapsed().as_micros() as u64;
        shared.busy_us.fetch_add(compute_us, Ordering::Relaxed);
        shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
        let _ = job.reply.send(WorkerDone {
            response,
            queue_us,
            compute_us,
        });
    }
}

fn compute_map(
    shared: &Arc<Shared>,
    mapper: &HierarchicalMapper,
    matrix: &CommMatrix,
    topo: &Topology,
) -> Response {
    let compute = || mapper.try_map(matrix, topo).map(|m| m.as_slice().to_vec());
    let (result, outcome) = match &shared.cache {
        Some(cache) => {
            let key = CacheKey {
                fingerprint: matrix.fingerprint(),
                chips: topo.chips,
                l2_per_chip: topo.l2_per_chip,
                cores_per_l2: topo.cores_per_l2,
            };
            cache.get_or_compute(key, compute)
        }
        None => (compute(), CacheOutcome::Miss),
    };
    match outcome {
        CacheOutcome::Hit => shared.rec.inc(CounterId::ServeCacheHits),
        CacheOutcome::Coalesced => {
            // A coalesced follower is a hit for rate purposes (stable
            // `cache_hits` semantics), counted separately as well.
            shared.rec.inc(CounterId::ServeCacheHits);
            shared.rec.inc(CounterId::ServeCacheCoalesced);
        }
        CacheOutcome::Miss => shared.rec.inc(CounterId::ServeCacheMisses),
    }
    match result {
        Ok(mapping) => Response::Map {
            mapping,
            cached: outcome != CacheOutcome::Miss,
        },
        Err(message) => Response::Error {
            code: ErrorCode::BadRequest,
            message,
        },
    }
}
