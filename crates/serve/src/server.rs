//! The mapping server: a nonblocking readiness loop, bounded work queue,
//! worker pool, and the live telemetry plane.
//!
//! ## Threading model
//!
//! ```text
//!            epoll (level-triggered)
//!                      │
//!               event-loop thread ◀──eventfd wake── workers
//!      accept / read / decode / answer inline           ▲
//!                      │                                │
//!              bounded job queue ──▶ worker pool ── completions
//!                      │                  │
//!               full → `overloaded`       ▼
//!                            sharded cache / shared mapper
//! ```
//!
//! One **event-loop thread** owns every socket: it accepts, reads, and
//! writes nonblocking fds behind an epoll interest list ([`crate::sys`]),
//! keeping per-connection read/write state machines with partial-frame
//! buffers. Frames that arrive in the same readiness tick are decoded
//! together — one *batch* — and answered against shared resident state
//! (one [`HierarchicalMapper`], one sharded result cache) instead of
//! per-thread copies. Concurrency is bounded by fds, not OS threads: a
//! thousand idle keep-alive connections cost a thousand slab slots and
//! zero stacks.
//!
//! Cheap requests (`health`, `stats`, `admin`, the session plane, and
//! `shutdown`) are answered inline on the loop. `map` requests are
//! admitted to the bounded job queue and picked up by the worker pool;
//! workers publish completions to a shared vector and ring an `eventfd`
//! doorbell, so the loop wakes exactly when there is work to deliver —
//! there is no sleep-based polling anywhere.
//!
//! Backpressure is explicit: a full queue answers an `overloaded` error
//! frame immediately instead of letting latency grow without bound.
//! Deadlines are checked when a worker dequeues a job. Requests on one
//! connection are answered strictly in order (a connection with a map in
//! flight buffers subsequent bytes until the answer is queued), so the
//! wire contract matches the old thread-per-connection server exactly.
//!
//! ## Drain protocol
//!
//! Shutdown (client `shutdown` frame or [`ServerHandle::shutdown`]) stops
//! the listener at once but keeps every open connection serviced:
//! admitted jobs finish, refusals (`shutting_down`) are answered for new
//! map/session work, and `close_session` is still honoured. The loop
//! exits only once no job is in flight, every write buffer has drained,
//! and a short linger window has passed with no new traffic — so a client
//! that probes right after its `shutdown` response still gets answers,
//! exactly as it did when each connection had a dedicated thread.
//!
//! ## Telemetry plane
//!
//! Every request gets an ID at the connection (connection ID in the high
//! 32 bits, per-connection sequence in the low 32) and is timed through
//! parse → queue wait → compute. The spans land in three places:
//!
//! * the [`Recorder`] event ring as [`Event::ServeRequest`] entries,
//! * a [`LiveRegistry`] of rolling-window histograms so the `admin stats`
//!   frame answers "what is p99 *right now*" instead of since-boot,
//! * a bounded slow-request ring (served by `admin trace`) plus an
//!   optional JSONL writer, for requests over
//!   [`ServeConfig::slow_threshold_us`].
//!
//! The loop itself is measured too: ticks ([`CounterId::ServeLoopTicks`]),
//! per-tick batch sizes ([`HistId::ServeBatchSize`]), accepted and open
//! connections, and registered fds, all surfaced as a nested `loop`
//! object in the `admin stats` document.
//!
//! Per-error-code counting happens at the single response-queue choke
//! point, so every `bad_frame`/`overloaded`/`timeout`/… answer is counted
//! exactly once no matter where it originated. A plain `GET` on the
//! service port (detected by the 4 length-prefix bytes spelling `"GET "`)
//! is answered with a plain-text metrics exposition so `curl` and
//! scrapers work without speaking the frame protocol.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tlbmap_core::CommMatrix;
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{CounterId, Event, HistId, Json, LiveRegistry, Recorder};
use tlbmap_sim::Topology;

use crate::cache::{CacheKey, CacheOutcome, ShardedCache};
use crate::config::ServeConfig;
use crate::protocol::{
    check_version, write_frame, AdminKind, ErrorCode, FrameError, Request, Response,
};
use crate::session::SessionRegistry;
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Most recent slow-request entries retained for `admin trace`.
const SLOW_RING_CAP: usize = 256;
/// Readiness reports drained per `epoll_wait` call. Level-triggered
/// registration makes this a throughput knob, not a correctness one:
/// anything beyond the batch stays ready and lands in the next tick.
const EVENT_BATCH: usize = 256;
/// epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// epoll token of the wake doorbell.
const TOKEN_WAKE: u64 = 1;
/// Connection tokens start here: token = slot index + `TOKEN_CONN_BASE`.
const TOKEN_CONN_BASE: u64 = 2;
/// After drain quiesces (no in-flight work, buffers flushed), the loop
/// lingers this long so a client can still probe the draining server on
/// an open connection — the event-loop analogue of the old per-thread
/// read-poll grace.
const DRAIN_LINGER: Duration = Duration::from_millis(100);
/// How long an HTTP `GET` may dribble headers before the exposition is
/// answered with whatever arrived.
const HTTP_HEADER_TIMEOUT: Duration = Duration::from_millis(200);
/// HTTP header bytes drained before answering regardless.
const HTTP_HEADER_CAP: usize = 8192;

/// A worker's verdict plus the worker-side span timings.
struct WorkerDone {
    response: Response,
    /// Time the job spent queued before a worker dequeued it.
    queue_us: u64,
    /// Worker time (artificial delay + cache probe + mapper).
    compute_us: u64,
}

/// A finished job on its way back to the event loop.
struct Completion {
    /// Slab slot of the owning connection.
    slot: usize,
    /// Slot generation at admission — a reused slot ignores stale
    /// completions addressed to its previous occupant.
    generation: u64,
    req_id: u64,
    parse_us: u64,
    /// When the request frame was decoded (total-latency anchor).
    started: Instant,
    done: WorkerDone,
}

struct Job {
    req_id: u64,
    slot: usize,
    generation: u64,
    parse_us: u64,
    started: Instant,
    matrix: CommMatrix,
    topo: Topology,
    deadline: Option<Instant>,
    delay_ms: u64,
    enqueued_at: Instant,
}

enum SubmitError {
    Full,
    Closed,
}

/// Bounded MPMC job queue: producers fail fast when full, consumers drain
/// everything admitted before observing closure.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admit a job, or fail fast. On success returns the queue depth
    /// *after* the push (for the queue-depth histogram).
    fn try_push(&self, job: Job) -> Result<usize, SubmitError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block for the next job. Returns the job plus the queue depth
    /// *after* the pop (so drain is visible in the depth histogram, not
    /// just buildup). `None` only once the queue is closed **and** empty,
    /// so admitted work is always drained.
    fn pop(&self) -> Option<(Job, usize)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                let depth = state.jobs.len();
                return Some((job, depth));
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: JobQueue,
    cache: Option<ShardedCache>,
    /// The shared resident mapper every worker maps through (the mapper
    /// is stateless, so sharing one is free — and it is the single
    /// evaluation point the per-tick batches converge on).
    mapper: HierarchicalMapper,
    rec: Recorder,
    /// Rolling-window live metrics behind the admin endpoint.
    live: LiveRegistry,
    /// Wall clock the uptime and utilization are measured against.
    started: Instant,
    /// Next connection ID (the high half of every request ID).
    next_conn_id: AtomicU64,
    /// Workers currently processing a job (gauge).
    busy_workers: AtomicU64,
    /// Cumulative worker busy time in microseconds (for utilization).
    busy_us: AtomicU64,
    /// Open connections (gauge, maintained by the event loop).
    conns_open: AtomicU64,
    /// Fds on the epoll interest list (gauge: conns + listener + wake).
    fds_registered: AtomicU64,
    /// Finished jobs awaiting delivery; workers push, the loop drains.
    completions: Mutex<Vec<Completion>>,
    /// The doorbell that wakes the loop for completions and drain.
    wake: WakeFd,
    /// Most recent slow requests, oldest first (`admin trace`).
    slow_ring: Mutex<VecDeque<Json>>,
    /// Optional JSONL sink for slow requests (one object per line).
    slow_writer: Option<Mutex<Box<dyn Write + Send>>>,
    /// Open streaming sessions (the `open_session`/`delta` plane).
    sessions: SessionRegistry,
    shutdown: AtomicBool,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// The mapping server. Construct with [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7411"`, or port 0 for an ephemeral
    /// port) and start the event-loop and worker threads. All
    /// observability flows through `rec`.
    pub fn start(addr: &str, cfg: ServeConfig, rec: Recorder) -> io::Result<ServerHandle> {
        Server::start_with_slow_log(addr, cfg, rec, None)
    }

    /// [`Server::start`] with a sink for the slow-request log: every
    /// request slower than [`ServeConfig::slow_threshold_us`] is appended
    /// to `slow_log` as one JSON object per line, in addition to the
    /// in-memory ring `admin trace` serves.
    pub fn start_with_slow_log(
        addr: &str,
        cfg: ServeConfig,
        rec: Recorder,
        slow_log: Option<Box<dyn Write + Send>>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.effective_queue_capacity()),
            cache: cfg
                .effective_cache_capacity()
                .map(|cap| ShardedCache::new(cap, cfg.effective_cache_shards())),
            mapper: HierarchicalMapper::new(),
            rec,
            live: LiveRegistry::new(cfg.effective_telemetry()),
            started: Instant::now(),
            next_conn_id: AtomicU64::new(1),
            busy_workers: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            fds_registered: AtomicU64::new(0),
            completions: Mutex::new(Vec::new()),
            wake: WakeFd::new()?,
            slow_ring: Mutex::new(VecDeque::new()),
            slow_writer: slow_log.map(Mutex::new),
            sessions: SessionRegistry::new(&cfg),
            shutdown: AtomicBool::new(false),
            cfg,
        });

        let workers = (0..cfg.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let event_loop = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-loop".to_string())
                .spawn(move || event_loop(listener, &shared))
                .expect("spawn event-loop thread")
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            event_loop: Some(event_loop),
            workers,
        })
    }
}

/// A running server: its address, its recorder, and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder the server reports into — read counters or export
    /// metrics from here after (or during) a run.
    pub fn recorder(&self) -> &Recorder {
        &self.shared.rec
    }

    /// The live rolling-window registry the admin endpoint snapshots.
    pub fn live(&self) -> &LiveRegistry {
        &self.shared.live
    }

    /// Whether shutdown has begun (via [`Self::shutdown`] or a client
    /// `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Begin graceful shutdown from the hosting process: stop accepting,
    /// drain admitted work, then let every thread exit. The doorbell
    /// wakes the loop immediately — there is no polling interval to wait
    /// out.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.shared.wake.wake();
    }

    /// Wait for the server to finish. Only returns once shutdown has been
    /// triggered (by [`Self::shutdown`] or a client request) and all
    /// in-flight work has drained.
    pub fn join(mut self) {
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One connection's state machine on the loop: partial-frame read buffer,
/// pending-write buffer, and the in-order dispatch gate.
struct Conn {
    stream: TcpStream,
    /// Guards completions against slab-slot reuse.
    generation: u64,
    conn_id: u64,
    seq: u64,
    /// Bytes read but not yet decoded (may end mid-frame).
    rbuf: Vec<u8>,
    /// Encoded responses not yet written.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has been written.
    wpos: usize,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// `Some(when detected)` once the length-prefix bytes spelled
    /// `"GET "`: the connection is an HTTP scraper, not a frame peer.
    http: Option<Instant>,
    /// The peer closed its write half (EOF observed).
    peer_closed: bool,
    /// Close once `wbuf` drains (oversized frame, HTTP one-shot).
    close_after_flush: bool,
    /// A map job is out with the workers; frames buffered behind it wait
    /// so responses stay in request order.
    inflight: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }
}

/// Loop-private state: the connection slab and drain bookkeeping.
struct LoopState {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    /// Jobs admitted but not yet completed (across all connections).
    inflight_total: usize,
    /// Last accept/frame/completion activity, for the drain linger.
    last_activity: Instant,
}

fn event_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let Ok(epoll) = Epoll::new() else {
        shared.begin_shutdown();
        return;
    };
    let mut listener = Some(listener);
    if let Some(l) = &listener {
        if epoll.add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER).is_err() {
            shared.begin_shutdown();
            return;
        }
    }
    if epoll.add(shared.wake.fd(), EPOLLIN, TOKEN_WAKE).is_err() {
        shared.begin_shutdown();
        return;
    }
    shared.fds_registered.store(2, Ordering::Relaxed);

    let mut state = LoopState {
        conns: Vec::new(),
        free: Vec::new(),
        next_generation: 0,
        inflight_total: 0,
        last_activity: Instant::now(),
    };
    let mut events = vec![EpollEvent::zeroed(); EVENT_BATCH];

    loop {
        let timeout = next_timeout(&state, shared);
        let n = match epoll.wait(&mut events, timeout) {
            Ok(n) => n,
            Err(_) => {
                shared.begin_shutdown();
                break;
            }
        };
        shared.rec.inc(CounterId::ServeLoopTicks);

        // A drain stops the listener at once; open connections live on.
        if shared.shutting_down() {
            if let Some(l) = listener.take() {
                let _ = epoll.del(l.as_raw_fd());
                shared.fds_registered.fetch_sub(1, Ordering::Relaxed);
            }
        }

        let mut activity = false;
        let mut accept_ready = false;
        let mut touched: Vec<usize> = Vec::new();
        for ev in &events[..n] {
            match ev.token() {
                TOKEN_WAKE => shared.wake.drain(),
                TOKEN_LISTENER => accept_ready = true,
                token => {
                    let slot = (token - TOKEN_CONN_BASE) as usize;
                    if ev.readiness() & EPOLLOUT != 0 {
                        touched.push(slot);
                    }
                    // Read on anything else too (ERR/HUP surface as read
                    // errors or EOF, which is how they are handled).
                    if ev.readiness() & !EPOLLOUT != 0 {
                        match read_into(&mut state.conns, slot) {
                            Ok(read_any) => {
                                activity |= read_any;
                                touched.push(slot);
                            }
                            Err(()) => close_conn(&epoll, &mut state, shared, slot),
                        }
                    }
                }
            }
        }

        if accept_ready {
            if let Some(l) = &listener {
                activity |= accept_burst(&epoll, l, shared, &mut state, &mut touched);
            }
        }

        // Deliver finished jobs before decoding: a connection whose map
        // just completed may have buffered frames waiting their turn.
        activity |= deliver_completions(shared, &mut state, &mut touched);

        // HTTP header timeouts fire even on quiet ticks.
        for slot in 0..state.conns.len() {
            if let Some(conn) = &state.conns[slot] {
                if let Some(started) = conn.http {
                    if started.elapsed() >= HTTP_HEADER_TIMEOUT && !conn.close_after_flush {
                        touched.push(slot);
                    }
                }
            }
        }

        touched.sort_unstable();
        touched.dedup();

        // The batch: every frame decoded across every readable
        // connection this tick, dispatched against the shared state.
        let mut batch: u64 = 0;
        for &slot in &touched {
            process_conn(&epoll, &mut state, shared, slot, &mut batch);
        }
        if batch > 0 {
            activity = true;
            shared.rec.observe(HistId::ServeBatchSize, batch);
            shared.live.observe(HistId::ServeBatchSize, batch);
        }
        for &slot in &touched {
            finalize_conn(&epoll, &mut state, shared, slot);
        }

        if activity {
            state.last_activity = Instant::now();
        }

        if shared.shutting_down()
            && state.inflight_total == 0
            && state.conns.iter().flatten().all(|conn| conn.flushed())
            && state.last_activity.elapsed() >= DRAIN_LINGER
        {
            break;
        }
    }

    // Drop of the slab closes every remaining socket; `epoll` and the
    // listener close on drop as well.
    shared.conns_open.store(0, Ordering::Relaxed);
    shared.fds_registered.store(0, Ordering::Relaxed);
}

/// The epoll timeout for the next tick: `None` (wait forever — accepts,
/// reads, and the doorbell are all edge sources) unless a timer is
/// pending: the drain linger, or an HTTP header deadline.
fn next_timeout(state: &LoopState, shared: &Shared) -> Option<u64> {
    let mut timeout: Option<u64> = None;
    let mut consider = |ms: u64| {
        timeout = Some(timeout.map_or(ms, |t| t.min(ms)));
    };
    if shared.shutting_down() && state.inflight_total == 0 {
        let waited = state.last_activity.elapsed();
        consider(DRAIN_LINGER.saturating_sub(waited).as_millis() as u64 + 1);
    }
    for conn in state.conns.iter().flatten() {
        if let Some(started) = conn.http {
            if !conn.close_after_flush {
                let waited = started.elapsed();
                consider(HTTP_HEADER_TIMEOUT.saturating_sub(waited).as_millis() as u64 + 1);
            }
        }
    }
    timeout
}

/// Accept until the listener runs dry. Returns whether anything arrived.
fn accept_burst(
    epoll: &Epoll,
    listener: &TcpListener,
    shared: &Arc<Shared>,
    state: &mut LoopState,
    touched: &mut Vec<usize>,
) -> bool {
    let mut any = false;
    while let Ok((stream, _)) = listener.accept() {
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let slot = state.free.pop().unwrap_or_else(|| {
            state.conns.push(None);
            state.conns.len() - 1
        });
        let token = TOKEN_CONN_BASE + slot as u64;
        if epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            state.free.push(slot);
            continue;
        }
        state.next_generation += 1;
        state.conns[slot] = Some(Conn {
            stream,
            generation: state.next_generation,
            conn_id: shared.next_conn_id.fetch_add(1, Ordering::Relaxed),
            seq: 0,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            http: None,
            peer_closed: false,
            close_after_flush: false,
            inflight: false,
        });
        shared.rec.inc(CounterId::ServeConnsAccepted);
        shared.conns_open.fetch_add(1, Ordering::Relaxed);
        shared.fds_registered.fetch_add(1, Ordering::Relaxed);
        touched.push(slot);
        any = true;
    }
    any
}

/// Read everything currently available on `slot` into its `rbuf`.
/// `Err(())` means the transport failed and the connection must close.
fn read_into(conns: &mut [Option<Conn>], slot: usize) -> Result<bool, ()> {
    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
        return Ok(false);
    };
    let mut buf = [0u8; 4096];
    let mut any = false;
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.peer_closed = true;
                return Ok(any);
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                any = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(any),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
}

/// Route finished jobs back to their connections. The generation check
/// drops completions addressed to a connection that closed and whose
/// slot was reused while the job was with a worker.
fn deliver_completions(
    shared: &Arc<Shared>,
    state: &mut LoopState,
    touched: &mut Vec<usize>,
) -> bool {
    let pending = std::mem::take(&mut *shared.completions.lock().unwrap());
    let any = !pending.is_empty();
    for comp in pending {
        state.inflight_total -= 1;
        let Some(conn) = state.conns.get_mut(comp.slot).and_then(Option::as_mut) else {
            continue;
        };
        if conn.generation != comp.generation {
            continue;
        }
        conn.inflight = false;
        let cached = matches!(comp.done.response, Response::Map { cached: true, .. });
        let handled = Handled {
            response: comp.done.response,
            kind: "map",
            parse_us: comp.parse_us,
            queue_us: comp.done.queue_us,
            compute_us: comp.done.compute_us,
            cached,
        };
        let total_us = comp.started.elapsed().as_micros() as u64;
        finish_request(shared, comp.req_id, &handled, total_us);
        queue_response(shared, conn, &handled.response);
        touched.push(comp.slot);
    }
    any
}

/// What one decode attempt on a read buffer yielded.
enum Decoded {
    /// A complete, valid frame payload (consumed from the buffer).
    Frame(Json),
    /// A complete frame whose payload is not UTF-8/JSON (consumed; the
    /// framing itself stayed intact, so the connection survives).
    BadPayload(String),
    /// The length prefix announces more than the cap allows.
    TooLarge(usize),
    /// Not enough bytes yet.
    NeedMore,
}

fn decode_one(rbuf: &mut Vec<u8>, max_bytes: usize) -> Decoded {
    if rbuf.len() < 4 {
        return Decoded::NeedMore;
    }
    let len = u32::from_be_bytes([rbuf[0], rbuf[1], rbuf[2], rbuf[3]]) as usize;
    if len > max_bytes {
        return Decoded::TooLarge(len);
    }
    if rbuf.len() < 4 + len {
        return Decoded::NeedMore;
    }
    let parsed = match std::str::from_utf8(&rbuf[4..4 + len]) {
        Ok(text) => Json::parse(text).map_err(|e| e.message),
        Err(e) => Err(format!("not UTF-8: {e}")),
    };
    rbuf.drain(..4 + len);
    match parsed {
        Ok(json) => Decoded::Frame(json),
        Err(message) => Decoded::BadPayload(message),
    }
}

/// Decode and dispatch everything ready on `slot`: detect HTTP, decode
/// frames in order (pausing behind an in-flight map so responses keep
/// request order), answer inline kinds, and admit map jobs.
fn process_conn(
    epoll: &Epoll,
    state: &mut LoopState,
    shared: &Arc<Shared>,
    slot: usize,
    batch: &mut u64,
) {
    let max_bytes = shared.cfg.effective_max_frame_bytes();
    loop {
        let Some(conn) = state.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.close_after_flush {
            return;
        }
        if conn.http.is_none() && conn.rbuf.len() >= 4 && &conn.rbuf[..4] == b"GET " {
            // An HTTP scraper announced itself in the length-prefix
            // position ("GET " as a big-endian u32 would be a ~1.2 GiB
            // frame, so the protocols cannot collide under any sane cap).
            if !shared.cfg.http_stats {
                close_conn(epoll, state, shared, slot);
                return;
            }
            let Some(conn) = state.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            conn.http = Some(Instant::now());
        }
        let Some(conn) = state.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.http.is_some() {
            try_finish_http(shared, conn);
            return;
        }
        if conn.inflight {
            // Frames behind the in-flight map stay buffered in `rbuf`
            // until its completion reopens the gate.
            return;
        }
        match decode_one(&mut conn.rbuf, max_bytes) {
            Decoded::NeedMore => return,
            Decoded::BadPayload(message) => {
                *batch += 1;
                queue_response(
                    shared,
                    conn,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: FrameError::Parse(message).to_string(),
                    },
                );
            }
            Decoded::TooLarge(len) => {
                // Oversized frames cannot be resynchronized without
                // reading (and discarding) the announced bytes; answer,
                // then close once the answer flushes.
                queue_response(
                    shared,
                    conn,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: FrameError::TooLarge(len).to_string(),
                    },
                );
                conn.close_after_flush = true;
                return;
            }
            Decoded::Frame(json) => {
                *batch += 1;
                let started = Instant::now();
                conn.seq += 1;
                let req_id = (conn.conn_id << 32) | (conn.seq & 0xffff_ffff);
                let generation = conn.generation;
                match handle_frame(&json, shared, req_id, slot, generation, started) {
                    Dispatch::Reply(handled) => {
                        let total_us = started.elapsed().as_micros() as u64;
                        finish_request(shared, req_id, &handled, total_us);
                        let Some(conn) = state.conns.get_mut(slot).and_then(Option::as_mut) else {
                            return;
                        };
                        queue_response(shared, conn, &handled.response);
                    }
                    Dispatch::InFlight => {
                        let Some(conn) = state.conns.get_mut(slot).and_then(Option::as_mut) else {
                            return;
                        };
                        conn.inflight = true;
                        state.inflight_total += 1;
                    }
                }
            }
        }
    }
}

/// Flush pending writes, then settle the connection's fate: close when
/// flagged (or the peer is gone and nothing is owed), otherwise keep the
/// epoll interest mask in step with whether writes are pending.
fn finalize_conn(epoll: &Epoll, state: &mut LoopState, shared: &Arc<Shared>, slot: usize) {
    let Some(conn) = state.conns.get_mut(slot).and_then(Option::as_mut) else {
        return;
    };
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                close_conn(epoll, state, shared, slot);
                return;
            }
        }
    }
    if conn.flushed() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    let flushed = conn.flushed();
    if conn.close_after_flush && flushed {
        close_conn(epoll, state, shared, slot);
        return;
    }
    // Clean EOF with nothing owed and nothing in flight: the peer hung
    // up (any partial frame left in `rbuf` dies silently, matching the
    // old mid-frame-EOF behavior).
    if conn.peer_closed && flushed && !conn.inflight && conn.http.is_none() {
        let has_complete_frame = conn.rbuf.len() >= 4 && {
            let len = u32::from_be_bytes([conn.rbuf[0], conn.rbuf[1], conn.rbuf[2], conn.rbuf[3]])
                as usize;
            len > shared.cfg.effective_max_frame_bytes() || conn.rbuf.len() >= 4 + len
        };
        if !has_complete_frame {
            close_conn(epoll, state, shared, slot);
            return;
        }
    }
    let want = EPOLLIN | EPOLLRDHUP | if flushed { 0 } else { EPOLLOUT };
    if want != conn.interest
        && epoll
            .modify(conn.stream.as_raw_fd(), want, TOKEN_CONN_BASE + slot as u64)
            .is_ok()
    {
        conn.interest = want;
    }
}

fn close_conn(epoll: &Epoll, state: &mut LoopState, shared: &Shared, slot: usize) {
    if let Some(conn) = state.conns.get_mut(slot).and_then(Option::take) {
        let _ = epoll.del(conn.stream.as_raw_fd());
        state.free.push(slot);
        shared.conns_open.fetch_sub(1, Ordering::Relaxed);
        shared.fds_registered.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Answer the HTTP exposition once the header is complete (blank line),
/// the peer stopped sending, the cap is hit, or the header timeout
/// passed — whichever comes first.
fn try_finish_http(shared: &Shared, conn: &mut Conn) {
    let Some(started) = conn.http else { return };
    if conn.close_after_flush {
        return;
    }
    let complete = conn.rbuf.windows(4).any(|w| w == b"\r\n\r\n")
        || conn.peer_closed
        || conn.rbuf.len() >= HTTP_HEADER_CAP
        || started.elapsed() >= HTTP_HEADER_TIMEOUT;
    if !complete {
        return;
    }
    let body = exposition_text(shared);
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    conn.wbuf.extend_from_slice(response.as_bytes());
    conn.close_after_flush = true;
}

/// Count an outgoing error frame by its stable code, then append the
/// encoded frame to the connection's write buffer. The single choke
/// point: every error answer — from frame decoding, admission control,
/// the workers — is counted exactly once, and the counters stay ahead of
/// the client's view of the response.
fn queue_response(shared: &Shared, conn: &mut Conn, response: &Response) {
    if let Response::Error { code, .. } = response {
        let counter = match code {
            ErrorCode::BadFrame => CounterId::ServeBadFrames,
            ErrorCode::BadRequest => CounterId::ServeBadRequests,
            ErrorCode::Overloaded => CounterId::ServeOverloaded,
            ErrorCode::Timeout => CounterId::ServeTimeouts,
            ErrorCode::ShuttingDown => CounterId::ServeShuttingDown,
            ErrorCode::Internal => CounterId::ServeInternalErrors,
        };
        shared.rec.inc(counter);
    }
    // Writing into a Vec cannot fail.
    let _ = write_frame(&mut conn.wbuf, &response.to_json());
}

/// A handled request: the answer plus everything the telemetry plane
/// wants to know about how it went.
struct Handled {
    response: Response,
    /// Stable request-kind name (`map`, `health`, … or `?` for frames
    /// that failed validation).
    kind: &'static str,
    parse_us: u64,
    queue_us: u64,
    compute_us: u64,
    cached: bool,
}

impl Handled {
    fn inline(response: Response, kind: &'static str, parse_us: u64) -> Handled {
        Handled {
            response,
            kind,
            parse_us,
            queue_us: 0,
            compute_us: 0,
            cached: false,
        }
    }
}

/// How a frame was dispatched: answered now, or admitted to the workers
/// (the answer arrives later as a [`Completion`]).
enum Dispatch {
    Reply(Handled),
    InFlight,
}

/// Post-response bookkeeping: span timings into the live windows and the
/// event ring, plus the slow-request log.
fn finish_request(shared: &Shared, req_id: u64, done: &Handled, total_us: u64) {
    let outcome = match &done.response {
        Response::Error { code, .. } => code.as_str(),
        _ => "ok",
    };
    if done.kind == "map" {
        shared.rec.observe(HistId::ServeRequestLatencyUs, total_us);
        shared.live.observe(HistId::ServeRequestLatencyUs, total_us);
    }
    let kind = done.kind;
    let (parse_us, queue_us, compute_us, cached) =
        (done.parse_us, done.queue_us, done.compute_us, done.cached);
    shared.rec.emit(|_| Event::ServeRequest {
        req_id,
        kind,
        parse_us,
        queue_us,
        compute_us,
        total_us,
        cached,
        outcome,
    });
    if let Some(threshold) = shared.cfg.effective_slow_threshold_us() {
        if total_us >= threshold {
            shared.rec.inc(CounterId::ServeSlowRequests);
            let entry = Json::obj(vec![
                ("req_id", Json::U64(req_id)),
                ("kind", Json::Str(kind.into())),
                ("parse_us", Json::U64(parse_us)),
                ("queue_us", Json::U64(queue_us)),
                ("compute_us", Json::U64(compute_us)),
                ("total_us", Json::U64(total_us)),
                ("cached", Json::Bool(cached)),
                ("outcome", Json::Str(outcome.into())),
            ]);
            if let Some(writer) = &shared.slow_writer {
                let mut w = writer.lock().unwrap();
                let _ = writeln!(w, "{}", entry.render());
                let _ = w.flush();
            }
            let mut ring = shared.slow_ring.lock().unwrap();
            if ring.len() == SLOW_RING_CAP {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
    }
}

fn handle_frame(
    json: &Json,
    shared: &Arc<Shared>,
    req_id: u64,
    slot: usize,
    generation: u64,
    started: Instant,
) -> Dispatch {
    let parse_start = Instant::now();
    if let Err(message) = check_version(json) {
        return Dispatch::Reply(Handled::inline(
            Response::Error {
                code: ErrorCode::BadFrame,
                message,
            },
            "?",
            parse_start.elapsed().as_micros() as u64,
        ));
    }
    let request = match Request::from_json(json) {
        Ok(request) => request,
        Err(message) => {
            return Dispatch::Reply(Handled::inline(
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message,
                },
                "?",
                parse_start.elapsed().as_micros() as u64,
            ))
        }
    };
    let parse_us = parse_start.elapsed().as_micros() as u64;
    shared.rec.inc(CounterId::ServeRequests);
    let reply = |handled| Dispatch::Reply(handled);
    match request {
        Request::Health => reply(Handled::inline(Response::Health, "health", parse_us)),
        Request::Stats => reply(Handled::inline(
            Response::Stats(stats_doc(shared)),
            "stats",
            parse_us,
        )),
        Request::Admin { kind } => {
            let doc = match kind {
                AdminKind::Stats => admin_stats_doc(shared),
                AdminKind::Health => admin_health_doc(shared),
                AdminKind::Trace => admin_trace_doc(shared),
                AdminKind::Flight => admin_flight_doc(shared),
                AdminKind::Sessions => admin_sessions_doc(shared),
            };
            reply(Handled::inline(
                Response::Admin { kind, doc },
                "admin",
                parse_us,
            ))
        }
        Request::OpenSession {
            topo,
            decay_shift,
            drift_threshold_ppm,
            cooldown_deltas,
        } => {
            if shared.shutting_down() {
                return reply(Handled::inline(drain_refusal(), "open_session", parse_us));
            }
            let start = Instant::now();
            let response = match shared.sessions.open(
                topo,
                decay_shift,
                drift_threshold_ppm,
                cooldown_deltas,
                &shared.rec,
            ) {
                Ok((session, mapping)) => Response::OpenSession { session, mapping },
                Err((code, message)) => Response::Error { code, message },
            };
            let mut done = Handled::inline(response, "open_session", parse_us);
            done.compute_us = start.elapsed().as_micros() as u64;
            reply(done)
        }
        Request::Delta { session, delta } => {
            if shared.shutting_down() {
                return reply(Handled::inline(drain_refusal(), "delta", parse_us));
            }
            let start = Instant::now();
            let response = match shared.sessions.delta(session, &delta, &shared.rec) {
                Ok(outcome) => Response::Delta {
                    session,
                    seq: outcome.seq,
                    similarity_ppm: outcome.similarity_ppm,
                    decision: outcome.decision,
                    warm: outcome.warm,
                    mapping: outcome.mapping,
                },
                Err((code, message)) => Response::Error { code, message },
            };
            let mut done = Handled::inline(response, "delta", parse_us);
            done.compute_us = start.elapsed().as_micros() as u64;
            reply(done)
        }
        // Close is honoured even while draining: it is how a streaming
        // client finishes, so a drain must not strand its sessions.
        Request::CloseSession { session } => {
            let response = match shared.sessions.close(session, &shared.rec) {
                Ok((deltas, remaps)) => Response::CloseSession {
                    session,
                    deltas,
                    remaps,
                },
                Err((code, message)) => Response::Error { code, message },
            };
            reply(Handled::inline(response, "close_session", parse_us))
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            reply(Handled::inline(Response::Shutdown, "shutdown", parse_us))
        }
        Request::Map {
            matrix,
            topo,
            deadline_ms,
            delay_ms,
        } => {
            shared.rec.inc(CounterId::ServeMapRequests);
            let refused = |code: ErrorCode, message: String| {
                Dispatch::Reply(Handled {
                    response: Response::Error { code, message },
                    kind: "map",
                    parse_us,
                    queue_us: 0,
                    compute_us: 0,
                    cached: false,
                })
            };
            if shared.shutting_down() {
                return refused(
                    ErrorCode::ShuttingDown,
                    "server is draining for shutdown".to_string(),
                );
            }
            let deadline = deadline_ms
                .or(shared.cfg.effective_default_deadline_ms())
                .map(|ms| started + Duration::from_millis(ms));
            let job = Job {
                req_id,
                slot,
                generation,
                parse_us,
                started,
                matrix,
                topo,
                deadline,
                delay_ms,
                enqueued_at: started,
            };
            match shared.queue.try_push(job) {
                Ok(depth) => {
                    shared.rec.observe(HistId::ServeQueueDepth, depth as u64);
                    shared.live.observe(HistId::ServeQueueDepth, depth as u64);
                    Dispatch::InFlight
                }
                Err(SubmitError::Full) => refused(
                    ErrorCode::Overloaded,
                    format!(
                        "work queue is full ({} requests waiting)",
                        shared.cfg.effective_queue_capacity()
                    ),
                ),
                Err(SubmitError::Closed) => refused(
                    ErrorCode::ShuttingDown,
                    "server is draining for shutdown".to_string(),
                ),
            }
        }
    }
}

/// The legacy `stats` document (stable keys — older clients parse these).
fn stats_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    Json::obj(vec![
        ("requests", Json::U64(rec.counter(CounterId::ServeRequests))),
        (
            "overloaded",
            Json::U64(rec.counter(CounterId::ServeOverloaded)),
        ),
        ("timeouts", Json::U64(rec.counter(CounterId::ServeTimeouts))),
        (
            "cache_hits",
            Json::U64(rec.counter(CounterId::ServeCacheHits)),
        ),
        (
            "cache_misses",
            Json::U64(rec.counter(CounterId::ServeCacheMisses)),
        ),
        ("queue_depth", Json::U64(shared.queue.depth() as u64)),
        (
            "cache_entries",
            Json::U64(shared.cache.as_ref().map_or(0, ShardedCache::len) as u64),
        ),
        ("workers", Json::U64(shared.cfg.effective_workers() as u64)),
    ])
}

/// The `admin stats` document: a flat object (easy to grep, easy for
/// `tlbmap top` to tabulate) of counters, gauges, and the rolling-window
/// latency quantiles, plus a nested `loop` object describing the event
/// loop. Quantile keys are `null` when the window is empty.
fn admin_stats_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    let c = |id: CounterId| Json::U64(rec.counter(id));
    // Satellite fix: the queue depth histograms were only fed at enqueue,
    // so an idle (or fully drained) queue was invisible. Sampling here
    // makes every admin snapshot a depth observation too.
    let depth = shared.queue.depth() as u64;
    rec.observe(HistId::ServeQueueDepth, depth);
    shared.live.observe(HistId::ServeQueueDepth, depth);

    let uptime_ms = shared.uptime_ms();
    let workers = shared.cfg.effective_workers() as u64;
    let busy_us = shared.busy_us.load(Ordering::Relaxed);
    let capacity_us = (uptime_ms * 1000).max(1) * workers;
    let utilization = (busy_us as f64 / capacity_us as f64).min(1.0);

    let window = shared.live.window(HistId::ServeRequestLatencyUs);
    let lifetime = shared.live.lifetime(HistId::ServeRequestLatencyUs);
    let window_ms = shared.live.window_ms();
    let window_rps = window.count as f64 / (window_ms as f64 / 1000.0);
    let q = |snap: Option<u64>| snap.map_or(Json::Null, Json::U64);

    let ticks = rec.counter(CounterId::ServeLoopTicks);
    let ticks_per_s = ticks as f64 / (uptime_ms.max(1) as f64 / 1000.0);
    let batch = shared.live.window(HistId::ServeBatchSize);
    let loop_doc = Json::obj(vec![
        ("ticks", Json::U64(ticks)),
        ("ticks_per_s", Json::F64(ticks_per_s)),
        (
            "fds",
            Json::U64(shared.fds_registered.load(Ordering::Relaxed)),
        ),
        (
            "conns_open",
            Json::U64(shared.conns_open.load(Ordering::Relaxed)),
        ),
        ("conns_accepted", c(CounterId::ServeConnsAccepted)),
        ("batch_p50", q(batch.quantile(50.0))),
        ("batch_p99", q(batch.quantile(99.0))),
    ]);

    Json::obj(vec![
        ("uptime_ms", Json::U64(uptime_ms)),
        ("requests", c(CounterId::ServeRequests)),
        ("map_requests", c(CounterId::ServeMapRequests)),
        ("queue_depth", Json::U64(depth)),
        (
            "queue_capacity",
            Json::U64(shared.cfg.effective_queue_capacity() as u64),
        ),
        ("workers", Json::U64(workers)),
        (
            "workers_busy",
            Json::U64(shared.busy_workers.load(Ordering::Relaxed)),
        ),
        ("utilization", Json::F64(utilization)),
        ("cache_hits", c(CounterId::ServeCacheHits)),
        ("cache_misses", c(CounterId::ServeCacheMisses)),
        ("cache_coalesced", c(CounterId::ServeCacheCoalesced)),
        (
            "cache_entries",
            Json::U64(shared.cache.as_ref().map_or(0, ShardedCache::len) as u64),
        ),
        ("err_bad_frame", c(CounterId::ServeBadFrames)),
        ("err_bad_request", c(CounterId::ServeBadRequests)),
        ("err_overloaded", c(CounterId::ServeOverloaded)),
        ("err_timeout", c(CounterId::ServeTimeouts)),
        ("err_shutting_down", c(CounterId::ServeShuttingDown)),
        ("err_internal", c(CounterId::ServeInternalErrors)),
        ("window_ms", Json::U64(window_ms)),
        ("window_count", Json::U64(window.count)),
        ("window_rps", Json::F64(window_rps)),
        ("window_p50_us", q(window.quantile(50.0))),
        ("window_p90_us", q(window.quantile(90.0))),
        ("window_p99_us", q(window.quantile(99.0))),
        ("lifetime_p50_us", q(lifetime.quantile(50.0))),
        ("lifetime_p99_us", q(lifetime.quantile(99.0))),
        ("slow_threshold_us", Json::U64(shared.cfg.slow_threshold_us)),
        ("slow_requests", c(CounterId::ServeSlowRequests)),
        (
            "open_sessions",
            Json::U64(shared.sessions.open_count(rec) as u64),
        ),
        ("sessions_opened", c(CounterId::SessionsOpened)),
        ("sessions_closed", c(CounterId::SessionsClosed)),
        ("sessions_evicted", c(CounterId::SessionsEvicted)),
        ("session_deltas", c(CounterId::SessionDeltas)),
        ("remaps_triggered", c(CounterId::RemapsTriggered)),
        ("remaps_suppressed", c(CounterId::RemapsSuppressed)),
        ("warm_start_hits", c(CounterId::WarmStartHits)),
        ("warm_start_fallbacks", c(CounterId::WarmStartFallbacks)),
        ("loop", loop_doc),
    ])
}

/// The `admin sessions` document: the same counters the stats document
/// carries (so `tlbmap top` needs one scrape), plus one row per open
/// session.
fn admin_sessions_doc(shared: &Shared) -> Json {
    let rec = &shared.rec;
    let c = |id: CounterId| Json::U64(rec.counter(id));
    let rows: Vec<Json> = shared
        .sessions
        .summaries(rec)
        .into_iter()
        .map(|row| {
            Json::obj(vec![
                ("id", Json::U64(row.id)),
                ("threads", Json::U64(row.threads as u64)),
                ("deltas", Json::U64(row.deltas)),
                ("remaps", Json::U64(row.remaps)),
                ("last_similarity_ppm", Json::U64(row.last_similarity_ppm)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("open_sessions", Json::U64(rows.len() as u64)),
        (
            "max_sessions",
            Json::U64(shared.cfg.effective_max_sessions() as u64),
        ),
        ("sessions_opened", c(CounterId::SessionsOpened)),
        ("sessions_closed", c(CounterId::SessionsClosed)),
        ("sessions_evicted", c(CounterId::SessionsEvicted)),
        ("session_deltas", c(CounterId::SessionDeltas)),
        ("remaps_triggered", c(CounterId::RemapsTriggered)),
        ("remaps_suppressed", c(CounterId::RemapsSuppressed)),
        ("warm_start_hits", c(CounterId::WarmStartHits)),
        ("warm_start_fallbacks", c(CounterId::WarmStartFallbacks)),
        ("sessions", Json::Arr(rows)),
    ])
}

/// The refusal open/delta frames get while the server drains.
fn drain_refusal() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is draining for shutdown".to_string(),
    }
}

/// The `admin health` document: liveness with uptime and drain state.
fn admin_health_doc(shared: &Shared) -> Json {
    let draining = shared.shutting_down();
    Json::obj(vec![
        (
            "status",
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("uptime_ms", Json::U64(shared.uptime_ms())),
        ("shutting_down", Json::Bool(draining)),
    ])
}

/// The `admin trace` document: the slow-request ring, oldest first.
fn admin_trace_doc(shared: &Shared) -> Json {
    Json::Arr(shared.slow_ring.lock().unwrap().iter().cloned().collect())
}

/// The `admin flight` document: the recorder's flight section (retained
/// windows, phase timeline, per-phase aggregates), or `null` when the
/// flight recorder is disabled.
fn admin_flight_doc(shared: &Shared) -> Json {
    shared.rec.flight_json()
}

/// Render the plain-text exposition: one `tlbmap_<key> <value>` line per
/// numeric field of the admin stats document, in document order. The
/// nested `loop` object flattens to `tlbmap_loop_<key>` lines.
fn exposition_text(shared: &Shared) -> String {
    let doc = admin_stats_doc(shared);
    let mut out = String::new();
    let mut line = |key: &str, value: &Json| match value {
        Json::U64(n) => out.push_str(&format!("tlbmap_{key} {n}\n")),
        Json::F64(x) => out.push_str(&format!("tlbmap_{key} {x:.6}\n")),
        // Null quantiles (empty window) are omitted rather than
        // reported as 0 — a scraper must not graph "infinitely
        // fast" out of "no traffic".
        _ => {}
    };
    if let Json::Obj(pairs) = &doc {
        for (key, value) in pairs {
            if let ("loop", Json::Obj(inner)) = (key.as_str(), value) {
                for (k, v) in inner {
                    line(&format!("loop_{k}"), v);
                }
            } else {
                line(key, value);
            }
        }
    }
    out
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((job, depth)) = shared.queue.pop() {
        // Satellite fix: sample the depth at dequeue too, so the
        // histograms see the queue draining, not only filling.
        shared.rec.observe(HistId::ServeQueueDepth, depth as u64);
        shared.live.observe(HistId::ServeQueueDepth, depth as u64);
        let queue_us = job.enqueued_at.elapsed().as_micros() as u64;
        shared.busy_workers.fetch_add(1, Ordering::Relaxed);
        let busy_start = Instant::now();
        if job.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(job.delay_ms));
        }
        let expired = job
            .deadline
            .is_some_and(|deadline| Instant::now() > deadline);
        let response = if expired {
            Response::Error {
                code: ErrorCode::Timeout,
                message: format!(
                    "request {:#x}: deadline passed before a worker reached it",
                    job.req_id
                ),
            }
        } else {
            compute_map(shared, &job.matrix, &job.topo)
        };
        let compute_us = busy_start.elapsed().as_micros() as u64;
        shared.busy_us.fetch_add(compute_us, Ordering::Relaxed);
        shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
        shared.completions.lock().unwrap().push(Completion {
            slot: job.slot,
            generation: job.generation,
            req_id: job.req_id,
            parse_us: job.parse_us,
            started: job.started,
            done: WorkerDone {
                response,
                queue_us,
                compute_us,
            },
        });
        shared.wake.wake();
    }
}

fn compute_map(shared: &Arc<Shared>, matrix: &CommMatrix, topo: &Topology) -> Response {
    let mapper = &shared.mapper;
    let compute = || mapper.try_map(matrix, topo).map(|m| m.as_slice().to_vec());
    let (result, outcome) = match &shared.cache {
        Some(cache) => {
            let key = CacheKey {
                fingerprint: matrix.fingerprint(),
                chips: topo.chips,
                l2_per_chip: topo.l2_per_chip,
                cores_per_l2: topo.cores_per_l2,
            };
            cache.get_or_compute(key, compute)
        }
        None => (compute(), CacheOutcome::Miss),
    };
    match outcome {
        CacheOutcome::Hit => shared.rec.inc(CounterId::ServeCacheHits),
        CacheOutcome::Coalesced => {
            // A coalesced follower is a hit for rate purposes (stable
            // `cache_hits` semantics), counted separately as well.
            shared.rec.inc(CounterId::ServeCacheHits);
            shared.rec.inc(CounterId::ServeCacheCoalesced);
        }
        CacheOutcome::Miss => shared.rec.inc(CounterId::ServeCacheMisses),
    }
    match result {
        Ok(mapping) => Response::Map {
            mapping,
            cached: outcome != CacheOutcome::Miss,
        },
        Err(message) => Response::Error {
            code: ErrorCode::BadRequest,
            message,
        },
    }
}
