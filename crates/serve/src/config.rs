//! Server construction parameters, with the zero hazards guarded.
//!
//! Mirrors the `ObsConfig` snapshot-period-0 precedent: a nonsensical zero
//! is defused at the point of use instead of hanging or panicking deep in
//! the server. Zero workers or a zero-capacity queue would deadlock every
//! request, so both clamp to 1; a zero-capacity cache simply disables
//! caching (every request computes).

/// Mapping-server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads computing mappings.
    pub workers: usize,
    /// Maximum requests waiting in the work queue; a full queue answers
    /// `overloaded` instead of blocking the connection.
    pub queue_capacity: usize,
    /// Maximum mappings retained in the LRU result cache.
    pub cache_capacity: usize,
    /// Independent shards the result cache is split into (requests pick a
    /// shard by the hash of their matrix fingerprint, so identical
    /// requests still coalesce). 0 means "one shard per worker" — enough
    /// shards that workers rarely contend on one lock.
    pub cache_shards: usize,
    /// Deadline applied to requests that do not carry their own, in
    /// milliseconds. 0 = no default deadline.
    pub default_deadline_ms: u64,
    /// Largest accepted frame payload in bytes; oversized frames are
    /// answered with a `bad_frame` error and the connection is closed
    /// (framing cannot be resynchronized).
    pub max_frame_bytes: usize,
    /// Rolling telemetry window the admin endpoint's live quantiles
    /// cover, in milliseconds. 0 is defused to the 10 s default.
    pub telemetry_window_ms: u64,
    /// Rotating slots the telemetry window is divided into. 0 is defused
    /// to 1 (a single coarse slot).
    pub telemetry_slots: usize,
    /// Requests slower than this (host microseconds) are appended to the
    /// slow-request log. 0 disables slow logging.
    pub slow_threshold_us: u64,
    /// Answer plain-text `GET` requests on the service port with a
    /// metrics exposition (so `curl`/scrapers work without speaking the
    /// frame protocol).
    pub http_stats: bool,
    /// Flight-recorder window length in *simulated cycles* for the
    /// recorder the server reports into. 0 disables the flight recorder
    /// (the `admin flight` document is `null`).
    pub flight_window: u64,
    /// Flight-recorder ring capacity (retained windows). 0 is defused to
    /// 1 — a zero-capacity ring would drop every window at close,
    /// silently recording nothing while claiming to be enabled.
    pub flight_capacity: usize,
    /// Maximum concurrently open streaming sessions; an `open_session`
    /// over the limit is answered `overloaded`. 0 is defused to 1.
    pub max_sessions: usize,
    /// Default decay shift of each session's sliding window: every delta
    /// keeps `1 - 2^-shift` of the accumulated history (shift 1 halves
    /// it, shift 4 keeps 93.75%). Shifts above 63 clamp to 63; 0 is the
    /// memoryless window.
    pub session_decay_shift: u32,
    /// Default remap threshold: a delta whose decayed window scores a
    /// cosine similarity (in ppm) *below* this against the installed
    /// mapping's reference matrix triggers a remap. Values above
    /// 1,000,000 clamp to 1,000,000.
    pub session_drift_threshold_ppm: u64,
    /// Default cooldown, in deltas, after a remap during which further
    /// threshold crossings are suppressed (hysteresis against phase
    /// oscillation). 0 = remap on every crossing.
    pub session_cooldown_deltas: u64,
    /// Idle eviction: sessions that have not seen a delta for this many
    /// milliseconds are evicted on the next registry access. 0 = never
    /// evict.
    pub session_idle_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

impl ServeConfig {
    /// Defaults: 4 workers, 64 queued requests, 128 cached mappings, no
    /// default deadline, 1 MiB frames, a 10 s telemetry window in 10
    /// slots, slow logging off, HTTP exposition on.
    pub fn new() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            cache_shards: 0,
            default_deadline_ms: 0,
            max_frame_bytes: 1 << 20,
            telemetry_window_ms: 10_000,
            telemetry_slots: 10,
            slow_threshold_us: 0,
            http_stats: true,
            flight_window: 0,
            flight_capacity: 64,
            max_sessions: 32,
            session_decay_shift: 2,
            session_drift_threshold_ppm: 800_000,
            session_cooldown_deltas: 2,
            session_idle_ms: 60_000,
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Override the queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Override the cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Override the cache shard count (0 = one shard per worker).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Override the default deadline (0 = none).
    pub fn with_default_deadline_ms(mut self, ms: u64) -> Self {
        self.default_deadline_ms = ms;
        self
    }

    /// Override the telemetry window length (0 = the 10 s default).
    pub fn with_telemetry_window_ms(mut self, ms: u64) -> Self {
        self.telemetry_window_ms = ms;
        self
    }

    /// Override the telemetry slot count (0 = one slot).
    pub fn with_telemetry_slots(mut self, slots: usize) -> Self {
        self.telemetry_slots = slots;
        self
    }

    /// Override the slow-request threshold (0 disables slow logging).
    pub fn with_slow_threshold_us(mut self, us: u64) -> Self {
        self.slow_threshold_us = us;
        self
    }

    /// Enable or disable the plain-text HTTP exposition path.
    pub fn with_http_stats(mut self, enabled: bool) -> Self {
        self.http_stats = enabled;
        self
    }

    /// Override the flight-recorder window length (0 = recorder off).
    pub fn with_flight_window(mut self, cycles: u64) -> Self {
        self.flight_window = cycles;
        self
    }

    /// Override the flight-recorder ring capacity (0 is defused to 1).
    pub fn with_flight_capacity(mut self, windows: usize) -> Self {
        self.flight_capacity = windows;
        self
    }

    /// Override the open-session cap (0 is defused to 1).
    pub fn with_max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = sessions;
        self
    }

    /// Override the default session decay shift (clamped to 63).
    pub fn with_session_decay_shift(mut self, shift: u32) -> Self {
        self.session_decay_shift = shift;
        self
    }

    /// Override the default drift threshold in ppm (clamped to 1e6).
    pub fn with_session_drift_threshold_ppm(mut self, ppm: u64) -> Self {
        self.session_drift_threshold_ppm = ppm;
        self
    }

    /// Override the default remap cooldown in deltas (0 = none).
    pub fn with_session_cooldown_deltas(mut self, deltas: u64) -> Self {
        self.session_cooldown_deltas = deltas;
        self
    }

    /// Override the idle-eviction timeout (0 = never evict).
    pub fn with_session_idle_ms(mut self, ms: u64) -> Self {
        self.session_idle_ms = ms;
        self
    }

    /// Worker count with the zero hazard removed: zero workers would leave
    /// every queued request unanswered forever, so it is treated as 1.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Queue capacity with the zero hazard removed: a zero-capacity queue
    /// would reject every request as `overloaded`, making the server
    /// unable to do any work at all, so it is treated as 1.
    pub fn effective_queue_capacity(&self) -> usize {
        self.queue_capacity.max(1)
    }

    /// Cache capacity as an option: 0 means "no caching" (the meaningful
    /// reading), never "insert then instantly evict" — evicting a
    /// single-flight leader's pending slot would strand its followers.
    pub fn effective_cache_capacity(&self) -> Option<usize> {
        if self.cache_capacity == 0 {
            None
        } else {
            Some(self.cache_capacity)
        }
    }

    /// Cache shard count with the zero hazard removed: zero shards would
    /// leave no cache to probe at all (a modulo-by-zero, not "sharding
    /// off"), so 0 is read as the intent it encodes — one shard per
    /// worker, the point where workers stop contending on a shared lock.
    pub fn effective_cache_shards(&self) -> usize {
        if self.cache_shards == 0 {
            self.effective_workers()
        } else {
            self.cache_shards
        }
    }

    /// The default deadline as an option (0 = none).
    pub fn effective_default_deadline_ms(&self) -> Option<u64> {
        if self.default_deadline_ms == 0 {
            None
        } else {
            Some(self.default_deadline_ms)
        }
    }

    /// Frame-size cap with the zero hazard removed: a cap below the
    /// smallest well-formed request would reject everything, so anything
    /// under 64 bytes is treated as 64.
    pub fn effective_max_frame_bytes(&self) -> usize {
        self.max_frame_bytes.max(64)
    }

    /// Telemetry sizing with the zero hazards removed (mirroring the
    /// `ObsConfig` snapshot-period-0 guard): a zero-length window could
    /// never hold an observation — every admin snapshot would report empty
    /// quantiles forever — so it is treated as the 10 s default; zero
    /// slots would divide by zero on every observation, so it is treated
    /// as one slot. The defusing itself lives in
    /// [`LiveConfig`](tlbmap_obs::LiveConfig)'s own `effective_*` guards.
    pub fn effective_telemetry(&self) -> tlbmap_obs::LiveConfig {
        let cfg = tlbmap_obs::LiveConfig::new()
            .with_window_ms(self.telemetry_window_ms)
            .with_slots(self.telemetry_slots);
        tlbmap_obs::LiveConfig {
            window_ms: cfg.effective_window_ms(),
            slots: cfg.effective_slots(),
        }
    }

    /// The slow-request threshold as an option (0 = slow logging off).
    pub fn effective_slow_threshold_us(&self) -> Option<u64> {
        if self.slow_threshold_us == 0 {
            None
        } else {
            Some(self.slow_threshold_us)
        }
    }

    /// Flight-recorder window as an option (0 = recorder disabled),
    /// mirroring the `ObsConfig::effective_flight_window` guard so a
    /// zero-length window can never divide the run into infinitely many
    /// empty windows.
    pub fn effective_flight_window(&self) -> Option<u64> {
        if self.flight_window == 0 {
            None
        } else {
            Some(self.flight_window)
        }
    }

    /// Flight-recorder ring capacity with the zero hazard removed: a
    /// zero-capacity ring would drop every closed window on arrival, so
    /// it is treated as 1 (mirroring `ObsConfig::effective_flight_capacity`).
    pub fn effective_flight_capacity(&self) -> usize {
        self.flight_capacity.max(1)
    }

    /// Session cap with the zero hazard removed: a zero-session server
    /// would answer every `open_session` `overloaded` while advertising
    /// the feature, so it is treated as 1.
    pub fn effective_max_sessions(&self) -> usize {
        self.max_sessions.max(1)
    }

    /// Decay shift clamped to 63 — `v >> 64` is not a meaningful decay
    /// and would panic in debug builds.
    pub fn effective_session_decay_shift(&self) -> u32 {
        self.session_decay_shift.min(63)
    }

    /// Drift threshold clamped to 1e6 ppm: cosine similarity never
    /// exceeds 1, so a larger threshold would remap on *every* delta —
    /// almost certainly a typo, not intent.
    pub fn effective_session_drift_threshold_ppm(&self) -> u64 {
        self.session_drift_threshold_ppm.min(1_000_000)
    }

    /// Idle-eviction timeout as an option (0 = sessions never expire).
    pub fn effective_session_idle_ms(&self) -> Option<u64> {
        if self.session_idle_ms == 0 {
            None
        } else {
            Some(self.session_idle_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_and_queue_clamp_to_one() {
        let cfg = ServeConfig::new().with_workers(0).with_queue_capacity(0);
        assert_eq!(cfg.effective_workers(), 1);
        assert_eq!(cfg.effective_queue_capacity(), 1);
    }

    #[test]
    fn zero_cache_capacity_disables_caching() {
        assert_eq!(
            ServeConfig::new()
                .with_cache_capacity(0)
                .effective_cache_capacity(),
            None
        );
        assert_eq!(
            ServeConfig::new()
                .with_cache_capacity(9)
                .effective_cache_capacity(),
            Some(9)
        );
    }

    #[test]
    fn zero_cache_shards_follow_the_worker_count() {
        // Shards default to the worker count (the contention-free point);
        // an explicit count passes through untouched.
        assert_eq!(ServeConfig::new().effective_cache_shards(), 4);
        assert_eq!(
            ServeConfig::new().with_workers(7).effective_cache_shards(),
            7
        );
        assert_eq!(
            ServeConfig::new()
                .with_cache_shards(3)
                .effective_cache_shards(),
            3
        );
        // Even a zero-worker typo still yields at least one shard.
        assert_eq!(
            ServeConfig::new().with_workers(0).effective_cache_shards(),
            1
        );
    }

    #[test]
    fn zero_deadline_means_none() {
        assert_eq!(ServeConfig::new().effective_default_deadline_ms(), None);
        assert_eq!(
            ServeConfig::new()
                .with_default_deadline_ms(250)
                .effective_default_deadline_ms(),
            Some(250)
        );
    }

    #[test]
    fn tiny_frame_cap_is_floored() {
        let mut cfg = ServeConfig::new();
        cfg.max_frame_bytes = 0;
        assert_eq!(cfg.effective_max_frame_bytes(), 64);
    }

    #[test]
    fn zero_telemetry_window_and_slots_are_defused() {
        // Satellite guard: a zero-length or zero-bucket telemetry window
        // must be rejected at construction, not hand every admin snapshot
        // an empty histogram (window 0) or a divide-by-zero (slots 0).
        let cfg = ServeConfig::new()
            .with_telemetry_window_ms(0)
            .with_telemetry_slots(0);
        let live = cfg.effective_telemetry();
        assert_eq!(live.window_ms, 10_000);
        assert_eq!(live.slots, 1);
        let explicit = ServeConfig::new()
            .with_telemetry_window_ms(5_000)
            .with_telemetry_slots(5)
            .effective_telemetry();
        assert_eq!(explicit.window_ms, 5_000);
        assert_eq!(explicit.slots, 5);
    }

    #[test]
    fn zero_slow_threshold_disables_slow_logging() {
        assert_eq!(ServeConfig::new().effective_slow_threshold_us(), None);
        assert_eq!(
            ServeConfig::new()
                .with_slow_threshold_us(250_000)
                .effective_slow_threshold_us(),
            Some(250_000)
        );
    }

    #[test]
    fn zero_flight_knobs_are_defused() {
        // Satellite guard: flight window 0 means "recorder off", not an
        // infinite loop of zero-length windows; ring capacity 0 clamps to
        // one retained window instead of silently dropping everything.
        let cfg = ServeConfig::new();
        assert_eq!(cfg.effective_flight_window(), None);
        assert_eq!(
            ServeConfig::new()
                .with_flight_window(0)
                .effective_flight_window(),
            None
        );
        assert_eq!(
            ServeConfig::new()
                .with_flight_window(5_000)
                .effective_flight_window(),
            Some(5_000)
        );
        assert_eq!(
            ServeConfig::new()
                .with_flight_capacity(0)
                .effective_flight_capacity(),
            1
        );
        assert_eq!(
            ServeConfig::new()
                .with_flight_capacity(16)
                .effective_flight_capacity(),
            16
        );
    }

    #[test]
    fn session_knob_hazards_are_defused() {
        // A zero-session cap, a 64-bit decay shift, and a >1.0 cosine
        // threshold are all configuration typos that would make streaming
        // unusable (or panic); each clamps to its nearest sane value.
        let cfg = ServeConfig::new()
            .with_max_sessions(0)
            .with_session_decay_shift(200)
            .with_session_drift_threshold_ppm(5_000_000)
            .with_session_idle_ms(0);
        assert_eq!(cfg.effective_max_sessions(), 1);
        assert_eq!(cfg.effective_session_decay_shift(), 63);
        assert_eq!(cfg.effective_session_drift_threshold_ppm(), 1_000_000);
        assert_eq!(cfg.effective_session_idle_ms(), None);
        let cfg = ServeConfig::new()
            .with_max_sessions(8)
            .with_session_decay_shift(3)
            .with_session_drift_threshold_ppm(900_000)
            .with_session_cooldown_deltas(5)
            .with_session_idle_ms(30_000);
        assert_eq!(cfg.effective_max_sessions(), 8);
        assert_eq!(cfg.effective_session_decay_shift(), 3);
        assert_eq!(cfg.effective_session_drift_threshold_ppm(), 900_000);
        assert_eq!(cfg.session_cooldown_deltas, 5);
        assert_eq!(cfg.effective_session_idle_ms(), Some(30_000));
    }

    #[test]
    fn nonzero_values_pass_through() {
        let cfg = ServeConfig::new()
            .with_workers(7)
            .with_queue_capacity(3)
            .with_cache_capacity(11);
        assert_eq!(cfg.effective_workers(), 7);
        assert_eq!(cfg.effective_queue_capacity(), 3);
        assert_eq!(cfg.effective_cache_capacity(), Some(11));
    }
}
