//! The wire protocol: length-prefixed JSON frames, versioned schemas.
//!
//! ## Frame layout
//!
//! Every message — in both directions — is one *frame*:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 BE | payload: JSON bytes |
//! +----------------+---------------------+
//! ```
//!
//! The length counts payload bytes only. Payloads are UTF-8 JSON objects
//! carrying a `"v"` protocol-version field; peers reject frames whose
//! version they do not speak, so the protocol can evolve without silent
//! misparses.
//!
//! ## Requests (client → server)
//!
//! | `req`           | fields                                                            |
//! |-----------------|-------------------------------------------------------------------|
//! | `map`           | `matrix` (CommMatrix JSON), `topology` (optional, default 2×2×2), `deadline_ms` (optional), `delay_ms` (optional, testing/loadgen) |
//! | `health`        | —                                                                 |
//! | `stats`         | —                                                                 |
//! | `admin`         | `kind`: `stats` (live telemetry snapshot), `health` (liveness + uptime), `trace` (slow-request log), `flight` (flight-recorder windows + phases), `sessions` (streaming-session registry) |
//! | `open_session`  | `topology` (optional, default 2×2×2), `decay_shift` / `drift_threshold_ppm` / `cooldown_deltas` (optional per-session overrides) |
//! | `delta`         | `session`, `n` (thread count), `cells` (sparse upper-triangle `[i, j, amount]` triples) |
//! | `close_session` | `session`                                                         |
//! | `shutdown`      | —                                                                 |
//!
//! ## Responses (server → client)
//!
//! Success: `{"v":1,"ok":true,"resp":...}` with per-kind fields (`map`
//! carries `mapping` + `cached`; `stats` carries the counters document).
//! Failure: `{"v":1,"ok":false,"code":<ErrorCode>,"message":...}`.
//! The error codes are stable API — clients branch on them.

use std::io::{self, Read, Write};
use tlbmap_core::CommMatrix;
use tlbmap_obs::Json;
use tlbmap_sim::Topology;

/// Protocol version spoken by this crate.
pub const PROTOCOL_VERSION: u64 = 1;

/// Stable error codes carried by error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad length, non-JSON payload,
    /// wrong protocol version).
    BadFrame,
    /// The frame decoded but the request is invalid (unknown kind,
    /// malformed matrix, impossible topology).
    BadRequest,
    /// The work queue is full; retry later.
    Overloaded,
    /// The request's deadline passed before a worker got to it.
    Timeout,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The request was accepted but its response was lost server-side.
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse a wire name back into a code.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_frame" => ErrorCode::BadFrame,
            "bad_request" => ErrorCode::BadRequest,
            "overloaded" => ErrorCode::Overloaded,
            "timeout" => ErrorCode::Timeout,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// What an `admin` frame asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminKind {
    /// Live telemetry snapshot: uptime, queue depth, worker utilization,
    /// cache rates, per-error-code counts, windowed latency quantiles.
    Stats,
    /// Liveness plus uptime and shutdown state.
    Health,
    /// The slow-request log (most recent entries, oldest first).
    Trace,
    /// The flight recorder: retained windows, phase timeline, per-phase
    /// aggregates (`null` when the recorder is disabled).
    Flight,
    /// The streaming-session registry: per-session control-loop state
    /// plus the aggregate session counters.
    Sessions,
}

impl AdminKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AdminKind::Stats => "stats",
            AdminKind::Health => "health",
            AdminKind::Trace => "trace",
            AdminKind::Flight => "flight",
            AdminKind::Sessions => "sessions",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn from_wire(s: &str) -> Option<AdminKind> {
        Some(match s {
            "stats" => AdminKind::Stats,
            "health" => AdminKind::Health,
            "trace" => AdminKind::Trace,
            "flight" => AdminKind::Flight,
            "sessions" => AdminKind::Sessions,
            _ => return None,
        })
    }
}

/// What the session control loop decided about one ingested delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaDecision {
    /// Drift crossed the threshold: a new mapping was computed and
    /// installed (the response carries it).
    Remap,
    /// The decayed window still matches the installed mapping's
    /// reference; no remap needed.
    Stable,
    /// Drift crossed the threshold but the session is inside its cooldown
    /// (hysteresis): the remap was suppressed to avoid thrashing.
    Cooldown,
}

impl DeltaDecision {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaDecision::Remap => "remap",
            DeltaDecision::Stable => "stable",
            DeltaDecision::Cooldown => "cooldown",
        }
    }

    /// Parse a wire name back into a decision.
    pub fn from_wire(s: &str) -> Option<DeltaDecision> {
        Some(match s {
            "remap" => DeltaDecision::Remap,
            "stable" => DeltaDecision::Stable,
            "cooldown" => DeltaDecision::Cooldown,
            _ => return None,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compute (or fetch from cache) the hierarchical mapping of a
    /// communication matrix on a topology.
    Map {
        /// The detected communication matrix.
        matrix: CommMatrix,
        /// The machine to map onto.
        topo: Topology,
        /// Per-request deadline in milliseconds (overrides the server
        /// default; 0/absent = server default).
        deadline_ms: Option<u64>,
        /// Artificial worker delay in milliseconds, for load generation
        /// and deterministic overload/deadline testing.
        delay_ms: u64,
    },
    /// Liveness probe.
    Health,
    /// Counter/queue snapshot.
    Stats,
    /// Live-telemetry admin query (stats, health, or the slow-request
    /// trace) — the operator/scraper surface.
    Admin {
        /// What to snapshot.
        kind: AdminKind,
    },
    /// Open a streaming session: the server allocates a decayed-window
    /// matrix sized for `topo` and an identity initial mapping, and hands
    /// back a session ID for subsequent `delta` frames.
    OpenSession {
        /// The machine the session maps onto.
        topo: Topology,
        /// Per-session decay shift override (`None` = server default).
        decay_shift: Option<u32>,
        /// Per-session drift threshold override in ppm of cosine
        /// similarity (`None` = server default).
        drift_threshold_ppm: Option<u64>,
        /// Per-session remap cooldown override, in deltas (`None` =
        /// server default).
        cooldown_deltas: Option<u64>,
    },
    /// Ingest one sparse communication-matrix delta into a session's
    /// decayed window and run the remap control loop on it.
    Delta {
        /// The session the delta belongs to.
        session: u64,
        /// The delta, already assembled from the wire's sparse cells.
        delta: CommMatrix,
    },
    /// Close a streaming session and free its window.
    CloseSession {
        /// The session to close.
        session: u64,
    },
    /// Begin graceful shutdown: drain queued work, then exit.
    Shutdown,
}

/// Serialize a topology for the wire.
pub fn topology_to_json(topo: &Topology) -> Json {
    Json::obj(vec![
        ("chips", Json::U64(topo.chips as u64)),
        ("l2_per_chip", Json::U64(topo.l2_per_chip as u64)),
        ("cores_per_l2", Json::U64(topo.cores_per_l2 as u64)),
    ])
}

/// Parse a wire topology, rejecting zero arities (which `Topology::new`
/// would panic on).
pub fn topology_from_json(json: &Json) -> Result<Topology, String> {
    let field = |name: &str| -> Result<usize, String> {
        let v = json
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("topology: missing or mistyped field `{name}`"))?;
        if v == 0 || v > 1 << 16 {
            return Err(format!("topology: `{name}` must be in 1..=65536, got {v}"));
        }
        Ok(v as usize)
    };
    Ok(Topology {
        chips: field("chips")?,
        l2_per_chip: field("l2_per_chip")?,
        cores_per_l2: field("cores_per_l2")?,
    })
}

impl Request {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("v", Json::U64(PROTOCOL_VERSION))];
        match self {
            Request::Map {
                matrix,
                topo,
                deadline_ms,
                delay_ms,
            } => {
                pairs.push(("req", Json::Str("map".into())));
                pairs.push(("matrix", matrix.to_json()));
                pairs.push(("topology", topology_to_json(topo)));
                if let Some(d) = deadline_ms {
                    pairs.push(("deadline_ms", Json::U64(*d)));
                }
                if *delay_ms > 0 {
                    pairs.push(("delay_ms", Json::U64(*delay_ms)));
                }
            }
            Request::Health => pairs.push(("req", Json::Str("health".into()))),
            Request::Stats => pairs.push(("req", Json::Str("stats".into()))),
            Request::Admin { kind } => {
                pairs.push(("req", Json::Str("admin".into())));
                pairs.push(("kind", Json::Str(kind.as_str().into())));
            }
            Request::OpenSession {
                topo,
                decay_shift,
                drift_threshold_ppm,
                cooldown_deltas,
            } => {
                pairs.push(("req", Json::Str("open_session".into())));
                pairs.push(("topology", topology_to_json(topo)));
                if let Some(s) = decay_shift {
                    pairs.push(("decay_shift", Json::U64(u64::from(*s))));
                }
                if let Some(t) = drift_threshold_ppm {
                    pairs.push(("drift_threshold_ppm", Json::U64(*t)));
                }
                if let Some(c) = cooldown_deltas {
                    pairs.push(("cooldown_deltas", Json::U64(*c)));
                }
            }
            Request::Delta { session, delta } => {
                pairs.push(("req", Json::Str("delta".into())));
                pairs.push(("session", Json::U64(*session)));
                pairs.push(("n", Json::U64(delta.num_threads() as u64)));
                let cells: Vec<Json> = delta
                    .pairs()
                    .filter(|&(_, _, v)| v > 0)
                    .map(|(i, j, v)| {
                        Json::Arr(vec![Json::U64(i as u64), Json::U64(j as u64), Json::U64(v)])
                    })
                    .collect();
                pairs.push(("cells", Json::Arr(cells)));
            }
            Request::CloseSession { session } => {
                pairs.push(("req", Json::Str("close_session".into())));
                pairs.push(("session", Json::U64(*session)));
            }
            Request::Shutdown => pairs.push(("req", Json::Str("shutdown".into()))),
        }
        Json::obj(pairs)
    }

    /// Decode a request payload. The version must already have been
    /// checked by [`check_version`].
    pub fn from_json(json: &Json) -> Result<Request, String> {
        match json.get("req").and_then(Json::as_str) {
            Some("map") => {
                let matrix_json = json
                    .get("matrix")
                    .ok_or_else(|| "map request: missing `matrix`".to_string())?;
                let matrix = CommMatrix::from_json(matrix_json)
                    .map_err(|e| format!("map request: bad matrix: {}", e.message))?;
                let topo = match json.get("topology") {
                    Some(t) => topology_from_json(t)?,
                    None => Topology::harpertown(),
                };
                let deadline_ms = json
                    .get("deadline_ms")
                    .and_then(Json::as_u64)
                    .filter(|&d| d > 0);
                let delay_ms = json.get("delay_ms").and_then(Json::as_u64).unwrap_or(0);
                Ok(Request::Map {
                    matrix,
                    topo,
                    deadline_ms,
                    delay_ms,
                })
            }
            Some("health") => Ok(Request::Health),
            Some("stats") => Ok(Request::Stats),
            Some("admin") => match json.get("kind").and_then(Json::as_str) {
                Some(kind) => AdminKind::from_wire(kind)
                    .map(|kind| Request::Admin { kind })
                    .ok_or_else(|| {
                        format!(
                            "unknown admin kind `{kind}` \
                             (stats | health | trace | flight | sessions)"
                        )
                    }),
                None => Err("admin request: missing or mistyped field `kind`".to_string()),
            },
            Some("open_session") => {
                let topo = match json.get("topology") {
                    Some(t) => topology_from_json(t)?,
                    None => Topology::harpertown(),
                };
                let decay_shift = json
                    .get("decay_shift")
                    .and_then(Json::as_u64)
                    .map(|s| s.min(63) as u32);
                let drift_threshold_ppm = json.get("drift_threshold_ppm").and_then(Json::as_u64);
                let cooldown_deltas = json.get("cooldown_deltas").and_then(Json::as_u64);
                Ok(Request::OpenSession {
                    topo,
                    decay_shift,
                    drift_threshold_ppm,
                    cooldown_deltas,
                })
            }
            Some("delta") => {
                let session = json.get("session").and_then(Json::as_u64).ok_or_else(|| {
                    "delta request: missing or mistyped field `session`".to_string()
                })?;
                let n = json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "delta request: missing or mistyped field `n`".to_string())?;
                if n == 0 || n > 1 << 16 {
                    return Err(format!("delta request: `n` must be in 1..=65536, got {n}"));
                }
                let n = n as usize;
                let cells = json.get("cells").and_then(Json::as_array).ok_or_else(|| {
                    "delta request: missing or mistyped field `cells`".to_string()
                })?;
                let mut delta = CommMatrix::new(n);
                for cell in cells {
                    let triple = cell
                        .as_array()
                        .filter(|t| t.len() == 3)
                        .and_then(|t| Some((t[0].as_u64()?, t[1].as_u64()?, t[2].as_u64()?)))
                        .ok_or_else(|| {
                            "delta request: each cell must be an [i, j, amount] triple".to_string()
                        })?;
                    let (i, j, amount) = triple;
                    if i >= j || j >= n as u64 {
                        return Err(format!(
                            "delta request: cell ({i}, {j}) is not an upper-triangle pair of {n} threads"
                        ));
                    }
                    delta.add(i as usize, j as usize, amount);
                }
                Ok(Request::Delta { session, delta })
            }
            Some("close_session") => json
                .get("session")
                .and_then(Json::as_u64)
                .map(|session| Request::CloseSession { session })
                .ok_or_else(|| {
                    "close_session request: missing or mistyped field `session`".to_string()
                }),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown request kind `{other}`")),
            None => Err("missing or mistyped field `req`".to_string()),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A computed (or cached) mapping: `mapping[thread] = core`.
    Map {
        /// The thread→core assignment.
        mapping: Vec<usize>,
        /// Whether the result came from the cache (hit or coalesced).
        cached: bool,
    },
    /// Liveness answer.
    Health,
    /// Counter/queue snapshot (opaque JSON document).
    Stats(Json),
    /// Admin answer: which kind it is and its document (a flat object
    /// for `stats`/`health`, an array of slow-log entries for `trace`).
    Admin {
        /// The queried kind.
        kind: AdminKind,
        /// The snapshot document.
        doc: Json,
    },
    /// A streaming session was opened.
    OpenSession {
        /// The allocated session ID — carry it in every `delta` /
        /// `close_session` frame.
        session: u64,
        /// The initial mapping (identity until the first remap).
        mapping: Vec<usize>,
    },
    /// One delta was ingested; the control loop's verdict.
    Delta {
        /// The session the delta landed in.
        session: u64,
        /// Sequence number of this delta within the session (1-based).
        seq: u64,
        /// Cosine similarity of the decayed window to the installed
        /// mapping's reference matrix, in ppm.
        similarity_ppm: u64,
        /// What the control loop decided.
        decision: DeltaDecision,
        /// Whether the remap's matching was fully warm-started (only
        /// meaningful when `decision` is `remap`).
        warm: bool,
        /// The newly installed mapping when `decision` is `remap`.
        mapping: Option<Vec<usize>>,
    },
    /// A streaming session was closed; its lifetime summary.
    CloseSession {
        /// The closed session's ID.
        session: u64,
        /// Deltas it ingested.
        deltas: u64,
        /// Remaps it installed.
        remaps: u64,
    },
    /// Shutdown acknowledged; the server drains and exits.
    Shutdown,
    /// The request failed.
    Error {
        /// Stable machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("v", Json::U64(PROTOCOL_VERSION))];
        match self {
            Response::Map { mapping, cached } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("map".into())));
                pairs.push((
                    "mapping",
                    Json::Arr(mapping.iter().map(|&c| Json::U64(c as u64)).collect()),
                ));
                pairs.push(("cached", Json::Bool(*cached)));
            }
            Response::Health => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("health".into())));
            }
            Response::Stats(doc) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("stats".into())));
                pairs.push(("stats", doc.clone()));
            }
            Response::Admin { kind, doc } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("admin".into())));
                pairs.push(("kind", Json::Str(kind.as_str().into())));
                pairs.push(("body", doc.clone()));
            }
            Response::OpenSession { session, mapping } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("open_session".into())));
                pairs.push(("session", Json::U64(*session)));
                pairs.push((
                    "mapping",
                    Json::Arr(mapping.iter().map(|&c| Json::U64(c as u64)).collect()),
                ));
            }
            Response::Delta {
                session,
                seq,
                similarity_ppm,
                decision,
                warm,
                mapping,
            } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("delta".into())));
                pairs.push(("session", Json::U64(*session)));
                pairs.push(("seq", Json::U64(*seq)));
                pairs.push(("similarity_ppm", Json::U64(*similarity_ppm)));
                pairs.push(("decision", Json::Str(decision.as_str().into())));
                pairs.push(("warm", Json::Bool(*warm)));
                if let Some(mapping) = mapping {
                    pairs.push((
                        "mapping",
                        Json::Arr(mapping.iter().map(|&c| Json::U64(c as u64)).collect()),
                    ));
                }
            }
            Response::CloseSession {
                session,
                deltas,
                remaps,
            } => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("close_session".into())));
                pairs.push(("session", Json::U64(*session)));
                pairs.push(("deltas", Json::U64(*deltas)));
                pairs.push(("remaps", Json::U64(*remaps)));
            }
            Response::Shutdown => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("resp", Json::Str("shutdown".into())));
            }
            Response::Error { code, message } => {
                pairs.push(("ok", Json::Bool(false)));
                pairs.push(("code", Json::Str(code.as_str().into())));
                pairs.push(("message", Json::Str(message.clone())));
            }
        }
        Json::obj(pairs)
    }

    /// Decode a response payload.
    pub fn from_json(json: &Json) -> Result<Response, String> {
        match json.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                let code = json
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::from_wire)
                    .ok_or_else(|| "error response: missing or unknown `code`".to_string())?;
                let message = json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                return Ok(Response::Error { code, message });
            }
            None => return Err("response: missing `ok`".to_string()),
        }
        match json.get("resp").and_then(Json::as_str) {
            Some("map") => {
                let mapping = json
                    .get("mapping")
                    .and_then(Json::as_array)
                    .ok_or_else(|| "map response: missing `mapping`".to_string())?
                    .iter()
                    .map(|v| v.as_u64().map(|c| c as usize))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or_else(|| "map response: non-integer core".to_string())?;
                let cached = json.get("cached").and_then(Json::as_bool).unwrap_or(false);
                Ok(Response::Map { mapping, cached })
            }
            Some("health") => Ok(Response::Health),
            Some("stats") => Ok(Response::Stats(
                json.get("stats").cloned().unwrap_or(Json::Null),
            )),
            Some("admin") => {
                let kind = json
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(AdminKind::from_wire)
                    .ok_or_else(|| "admin response: missing or unknown `kind`".to_string())?;
                Ok(Response::Admin {
                    kind,
                    doc: json.get("body").cloned().unwrap_or(Json::Null),
                })
            }
            Some("open_session") => {
                let session = json
                    .get("session")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "open_session response: missing `session`".to_string())?;
                let mapping = json
                    .get("mapping")
                    .and_then(Json::as_array)
                    .ok_or_else(|| "open_session response: missing `mapping`".to_string())?
                    .iter()
                    .map(|v| v.as_u64().map(|c| c as usize))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or_else(|| "open_session response: non-integer core".to_string())?;
                Ok(Response::OpenSession { session, mapping })
            }
            Some("delta") => {
                let field = |name: &str| -> Result<u64, String> {
                    json.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("delta response: missing `{name}`"))
                };
                let decision = json
                    .get("decision")
                    .and_then(Json::as_str)
                    .and_then(DeltaDecision::from_wire)
                    .ok_or_else(|| "delta response: missing or unknown `decision`".to_string())?;
                let warm = json.get("warm").and_then(Json::as_bool).unwrap_or(false);
                let mapping = match json.get("mapping").and_then(Json::as_array) {
                    Some(arr) => Some(
                        arr.iter()
                            .map(|v| v.as_u64().map(|c| c as usize))
                            .collect::<Option<Vec<usize>>>()
                            .ok_or_else(|| "delta response: non-integer core".to_string())?,
                    ),
                    None => None,
                };
                Ok(Response::Delta {
                    session: field("session")?,
                    seq: field("seq")?,
                    similarity_ppm: field("similarity_ppm")?,
                    decision,
                    warm,
                    mapping,
                })
            }
            Some("close_session") => {
                let field = |name: &str| -> Result<u64, String> {
                    json.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("close_session response: missing `{name}`"))
                };
                Ok(Response::CloseSession {
                    session: field("session")?,
                    deltas: field("deltas")?,
                    remaps: field("remaps")?,
                })
            }
            Some("shutdown") => Ok(Response::Shutdown),
            Some(other) => Err(format!("unknown response kind `{other}`")),
            None => Err("response: missing `resp`".to_string()),
        }
    }
}

/// Check a decoded payload's protocol version.
pub fn check_version(json: &Json) -> Result<(), String> {
    match json.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => Ok(()),
        Some(v) => Err(format!(
            "unsupported protocol version {v} (this peer speaks {PROTOCOL_VERSION})"
        )),
        None => Err("missing protocol version field `v`".to_string()),
    }
}

/// Why a frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Transport error (includes mid-frame EOF).
    Io(io::Error),
    /// The announced length exceeds the configured cap.
    TooLarge(usize),
    /// The payload is not valid JSON.
    Parse(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the size cap"),
            FrameError::Parse(e) => write!(f, "payload is not valid JSON: {e}"),
        }
    }
}

/// Write one frame.
pub fn write_frame(w: &mut dyn Write, payload: &Json) -> io::Result<()> {
    let body = payload.render().into_bytes();
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    // One write for header + payload: two small writes would trip the
    // Nagle/delayed-ACK interaction and cost ~40 ms per frame.
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&body);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame, capping the payload at `max_bytes`.
///
/// A clean EOF before any length byte is [`FrameError::Closed`]; EOF in
/// the middle of a frame is an I/O error (truncated stream).
pub fn read_frame(r: &mut dyn Read, max_bytes: usize) -> Result<Json, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let text =
        std::str::from_utf8(&payload).map_err(|e| FrameError::Parse(format!("not UTF-8: {e}")))?;
    Json::parse(text).map_err(|e| FrameError::Parse(e.message))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> CommMatrix {
        let mut m = CommMatrix::new(4);
        m.add(0, 1, 10);
        m.add(2, 3, 7);
        m
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Map {
                matrix: sample_matrix(),
                topo: Topology::harpertown(),
                deadline_ms: Some(250),
                delay_ms: 5,
            },
            Request::Health,
            Request::Stats,
            Request::Admin {
                kind: AdminKind::Stats,
            },
            Request::Admin {
                kind: AdminKind::Health,
            },
            Request::Admin {
                kind: AdminKind::Trace,
            },
            Request::Admin {
                kind: AdminKind::Flight,
            },
            Request::Admin {
                kind: AdminKind::Sessions,
            },
            Request::OpenSession {
                topo: Topology::harpertown(),
                decay_shift: Some(3),
                drift_threshold_ppm: Some(850_000),
                cooldown_deltas: None,
            },
            Request::Delta {
                session: 7,
                delta: sample_matrix(),
            },
            Request::CloseSession { session: 7 },
            Request::Shutdown,
        ];
        for req in reqs {
            let json = req.to_json();
            check_version(&json).unwrap();
            assert_eq!(Request::from_json(&json).unwrap(), req, "{:?}", req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Map {
                mapping: vec![3, 1, 0, 2],
                cached: true,
            },
            Response::Health,
            Response::Stats(Json::obj(vec![("queue_depth", Json::U64(3))])),
            Response::Admin {
                kind: AdminKind::Stats,
                doc: Json::obj(vec![
                    ("requests", Json::U64(12)),
                    ("window_p99_us", Json::U64(1536)),
                ]),
            },
            Response::Admin {
                kind: AdminKind::Trace,
                doc: Json::Arr(vec![Json::obj(vec![("req_id", Json::U64(7))])]),
            },
            Response::OpenSession {
                session: 3,
                mapping: vec![0, 1, 2, 3],
            },
            Response::Delta {
                session: 3,
                seq: 12,
                similarity_ppm: 431_337,
                decision: DeltaDecision::Remap,
                warm: true,
                mapping: Some(vec![2, 3, 0, 1]),
            },
            Response::Delta {
                session: 3,
                seq: 13,
                similarity_ppm: 991_000,
                decision: DeltaDecision::Stable,
                warm: false,
                mapping: None,
            },
            Response::CloseSession {
                session: 3,
                deltas: 13,
                remaps: 2,
            },
            Response::Shutdown,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
        ];
        for resp in resps {
            let json = resp.to_json();
            check_version(&json).unwrap();
            assert_eq!(Response::from_json(&json).unwrap(), resp, "{:?}", resp);
        }
    }

    #[test]
    fn version_is_enforced() {
        let mut json = Request::Health.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::U64(99);
        }
        assert!(check_version(&json).unwrap_err().contains("version 99"));
        assert!(check_version(&Json::obj(vec![])).is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_display_errors() {
        for text in [
            r#"{"v":1}"#,
            r#"{"v":1,"req":"warp"}"#,
            r#"{"v":1,"req":"map"}"#,
            r#"{"v":1,"req":"map","matrix":{"n":2,"rows":[[0,1],[2,0]]}}"#,
            r#"{"v":1,"req":"map","matrix":{"n":2,"rows":[[0,1],[1,0]]},"topology":{"chips":0,"l2_per_chip":1,"cores_per_l2":2}}"#,
        ] {
            let json = Json::parse(text).unwrap();
            let err = Request::from_json(&json).unwrap_err();
            assert!(!err.is_empty(), "{text}");
        }
    }

    #[test]
    fn unknown_admin_kind_is_a_bad_request() {
        // Satellite 3: the unknown-frame-kind error path. An `admin` frame
        // whose `kind` is unrecognized (or absent) must decode to a
        // descriptive error, which the server surfaces as `bad_request`.
        let json = Json::parse(r#"{"v":1,"req":"admin","kind":"flamegraph"}"#).unwrap();
        let err = Request::from_json(&json).unwrap_err();
        assert!(err.contains("flamegraph"), "{err}");
        assert!(
            err.contains("stats | health | trace | flight | sessions"),
            "{err}"
        );

        let missing = Json::parse(r#"{"v":1,"req":"admin"}"#).unwrap();
        let err = Request::from_json(&missing).unwrap_err();
        assert!(err.contains("kind"), "{err}");

        // Same guard on the response side: a peer cannot hand back an
        // admin document under a kind this version does not speak.
        let resp =
            Json::parse(r#"{"v":1,"ok":true,"resp":"admin","kind":"heap","body":{}}"#).unwrap();
        assert!(Response::from_json(&resp).is_err());
    }

    #[test]
    fn admin_kind_wire_names_are_stable() {
        for kind in [
            AdminKind::Stats,
            AdminKind::Health,
            AdminKind::Trace,
            AdminKind::Flight,
            AdminKind::Sessions,
        ] {
            assert_eq!(AdminKind::from_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(AdminKind::from_wire("metrics"), None);
    }

    #[test]
    fn delta_decision_wire_names_are_stable() {
        for d in [
            DeltaDecision::Remap,
            DeltaDecision::Stable,
            DeltaDecision::Cooldown,
        ] {
            assert_eq!(DeltaDecision::from_wire(d.as_str()), Some(d));
        }
        assert_eq!(DeltaDecision::from_wire("thrash"), None);
    }

    #[test]
    fn malformed_session_frames_are_rejected() {
        for text in [
            r#"{"v":1,"req":"delta"}"#,
            r#"{"v":1,"req":"delta","session":1}"#,
            r#"{"v":1,"req":"delta","session":1,"n":0,"cells":[]}"#,
            r#"{"v":1,"req":"delta","session":1,"n":4,"cells":[[0,0,5]]}"#,
            r#"{"v":1,"req":"delta","session":1,"n":4,"cells":[[1,0,5]]}"#,
            r#"{"v":1,"req":"delta","session":1,"n":4,"cells":[[0,9,5]]}"#,
            r#"{"v":1,"req":"delta","session":1,"n":4,"cells":[[0,1]]}"#,
            r#"{"v":1,"req":"close_session"}"#,
            r#"{"v":1,"req":"open_session","topology":{"chips":0,"l2_per_chip":1,"cores_per_l2":2}}"#,
        ] {
            let json = Json::parse(text).unwrap();
            assert!(Request::from_json(&json).is_err(), "{text}");
        }
        // Sparse cells accumulate: duplicate triples on the same pair sum.
        let json =
            Json::parse(r#"{"v":1,"req":"delta","session":1,"n":4,"cells":[[0,1,5],[0,1,2]]}"#)
                .unwrap();
        match Request::from_json(&json).unwrap() {
            Request::Delta { delta, .. } => assert_eq!(delta.get(0, 1), 7),
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = Request::Map {
            matrix: sample_matrix(),
            topo: Topology::harpertown(),
            deadline_ms: None,
            delay_ms: 0,
        }
        .to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &Request::Health.to_json()).unwrap();
        let mut cursor = &buf[..];
        let a = read_frame(&mut cursor, 1 << 20).unwrap();
        let b = read_frame(&mut cursor, 1 << 20).unwrap();
        assert_eq!(a, payload);
        assert_eq!(b, Request::Health.to_json());
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Health.to_json()).unwrap();
        assert!(matches!(
            read_frame(&mut &buf[..], 4),
            Err(FrameError::TooLarge(_))
        ));
        // Truncate mid-payload.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut &cut[..], 1 << 20),
            Err(FrameError::Io(_))
        ));
        // Garbage payload with a valid length prefix.
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&5u32.to_be_bytes());
        garbage.extend_from_slice(b"not{j");
        assert!(matches!(
            read_frame(&mut &garbage[..], 1 << 20),
            Err(FrameError::Parse(_))
        ));
    }

    #[test]
    fn topology_wire_round_trip() {
        let topo = Topology::new(2, 4, 2);
        let back = topology_from_json(&topology_to_json(&topo)).unwrap();
        assert_eq!(back, topo);
        assert!(topology_from_json(&Json::obj(vec![])).is_err());
    }
}
