//! # tlbmap-serve — mapping as a service
//!
//! The paper's end product is a *mapping decision*: a communication matrix
//! goes in, a hierarchical thread placement comes out (§V). This crate
//! turns that decision into a long-running **service** so the placement can
//! be consulted repeatedly at runtime (the online-mapping setting of the
//! STM thread-mapping line of work) instead of re-running the whole
//! in-process pipeline per decision.
//!
//! Everything is built on `std` only (`std::net` + hand-rolled threading
//! primitives) — consistent with the workspace's vendored-deps policy.
//! The pieces:
//!
//! * [`protocol`] — length-prefixed JSON frames, versioned request and
//!   response schemas, stable error codes.
//! * [`ServeConfig`] — worker/queue/cache sizing with the zero hazards
//!   guarded (mirroring `ObsConfig`'s snapshot-period-0 precedent).
//! * [`MapCache`] — an LRU result cache keyed by the matrix
//!   [fingerprint](tlbmap_core::CommMatrix::fingerprint) + topology, with
//!   single-flight coalescing of identical concurrent requests.
//! * [`Server`]/[`ServerHandle`] — the TCP server: a handwritten worker
//!   pool behind a **bounded** queue (overload answers an `overloaded`
//!   error frame instead of hanging), per-request deadlines, and graceful
//!   shutdown that drains in-flight work.
//! * [`Client`] — a blocking client speaking the same frames.
//! * [`loadgen`] — N connections × M requests, reporting p50/p90/p99
//!   latency, throughput, and a per-second time series.
//!
//! The server records everything through `tlbmap-obs` (request counters,
//! latency histogram, queue-depth histogram, cache hit/miss counters), so
//! a service run exports through the exact same metrics-JSON schema as a
//! simulation run.
//!
//! On top of the since-boot recorder sits a **live telemetry plane**:
//! every request is tagged with an ID and span-timed through parse →
//! queue wait → compute; latencies feed rolling-window histograms
//! ([`tlbmap_obs::LiveRegistry`]) so the versioned `admin` frame kind
//! ([`AdminKind`]: `stats` | `health` | `trace`) answers with *current*
//! p50/p99, queue depth, worker utilization, cache rates, and per-error
//! counts. Requests over a configurable threshold land in a slow-request
//! ring (and optionally a JSONL log), and a plain `GET` on the service
//! port returns a text exposition for `curl`/scrapers. `tlbmap top`
//! renders the admin stats as a live dashboard.
//!
//! ```
//! use tlbmap_core::CommMatrix;
//! use tlbmap_obs::{ObsConfig, Recorder};
//! use tlbmap_serve::{Client, ServeConfig, Server};
//! use tlbmap_sim::Topology;
//!
//! let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
//! let handle = Server::start("127.0.0.1:0", ServeConfig::new(), rec).unwrap();
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let mut m = CommMatrix::new(8);
//! m.add(0, 7, 100);
//! let reply = client.map(&m, &Topology::harpertown(), None, 0).unwrap();
//! assert_eq!(reply.mapping.len(), 8);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod config;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::{CacheKey, CacheOutcome, MapCache};
pub use client::{Client, MapReply, ServeError};
pub use config::ServeConfig;
pub use loadgen::{
    run_loadgen, run_stream_loadgen, stream_delta, LoadgenConfig, LoadgenReport, SecondStat,
    StreamConfig, StreamReport,
};
pub use protocol::{AdminKind, DeltaDecision, ErrorCode, Request, Response, PROTOCOL_VERSION};
pub use server::{Server, ServerHandle};
pub use session::{DeltaOutcome, SessionRegistry, SessionSummary};
