//! # tlbmap-serve — mapping as a service
//!
//! The paper's end product is a *mapping decision*: a communication matrix
//! goes in, a hierarchical thread placement comes out (§V). This crate
//! turns that decision into a long-running **service** so the placement can
//! be consulted repeatedly at runtime (the online-mapping setting of the
//! STM thread-mapping line of work) instead of re-running the whole
//! in-process pipeline per decision.
//!
//! Everything is built on `std` only (`std::net` + hand-rolled threading
//! primitives) — consistent with the workspace's vendored-deps policy.
//! The pieces:
//!
//! * [`protocol`] — length-prefixed JSON frames, versioned request and
//!   response schemas, stable error codes.
//! * [`ServeConfig`] — worker/queue/cache sizing with the zero hazards
//!   guarded (mirroring `ObsConfig`'s snapshot-period-0 precedent).
//! * [`MapCache`]/[`ShardedCache`] — an LRU result cache keyed by the
//!   matrix [fingerprint](tlbmap_core::CommMatrix::fingerprint) +
//!   topology, with single-flight coalescing of identical concurrent
//!   requests; the server shards it by fingerprint hash (one shard per
//!   worker by default) so unrelated requests never contend on one lock.
//! * [`sys`] — a `std`-only epoll/eventfd wrapper over raw fds (the four
//!   syscalls the readiness loop needs, declared against the libc `std`
//!   already links).
//! * [`Server`]/[`ServerHandle`] — the TCP server: a nonblocking
//!   **readiness loop** owns every socket (connections are slab entries,
//!   not threads; frames arriving in the same tick decode as one batch),
//!   and a handwritten worker pool behind a **bounded** queue evaluates
//!   `map` requests against one shared resident mapper (overload answers
//!   an `overloaded` error frame instead of hanging), with per-request
//!   deadlines and graceful shutdown that drains in-flight work on an
//!   eventfd doorbell.
//! * [`Client`] — a blocking client speaking the same frames.
//! * [`loadgen`] — closed loop (N connections × M requests, p50/p90/p99
//!   and a per-second time series) and open loop ([`run_curve`]: fixed
//!   arrival rates, latency from scheduled send time, a p99-vs-offered-
//!   load curve).
//!
//! The server records everything through `tlbmap-obs` (request counters,
//! latency histogram, queue-depth histogram, cache hit/miss counters), so
//! a service run exports through the exact same metrics-JSON schema as a
//! simulation run.
//!
//! On top of the since-boot recorder sits a **live telemetry plane**:
//! every request is tagged with an ID and span-timed through parse →
//! queue wait → compute; latencies feed rolling-window histograms
//! ([`tlbmap_obs::LiveRegistry`]) so the versioned `admin` frame kind
//! ([`AdminKind`]: `stats` | `health` | `trace`) answers with *current*
//! p50/p99, queue depth, worker utilization, cache rates, and per-error
//! counts. Requests over a configurable threshold land in a slow-request
//! ring (and optionally a JSONL log), and a plain `GET` on the service
//! port returns a text exposition for `curl`/scrapers. `tlbmap top`
//! renders the admin stats as a live dashboard.
//!
//! ```
//! use tlbmap_core::CommMatrix;
//! use tlbmap_obs::{ObsConfig, Recorder};
//! use tlbmap_serve::{Client, ServeConfig, Server};
//! use tlbmap_sim::Topology;
//!
//! let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
//! let handle = Server::start("127.0.0.1:0", ServeConfig::new(), rec).unwrap();
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let mut m = CommMatrix::new(8);
//! m.add(0, 7, 100);
//! let reply = client.map(&m, &Topology::harpertown(), None, 0).unwrap();
//! assert_eq!(reply.mapping.len(), 8);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod config;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod session;
pub mod sys;

pub use cache::{CacheKey, CacheOutcome, MapCache, ShardedCache};
pub use client::{Client, MapReply, ServeError};
pub use config::ServeConfig;
pub use loadgen::{
    run_curve, run_loadgen, run_stream_loadgen, stream_delta, CurveConfig, CurvePoint, CurveReport,
    LoadgenConfig, LoadgenReport, SecondStat, StreamConfig, StreamReport,
};
pub use protocol::{AdminKind, DeltaDecision, ErrorCode, Request, Response, PROTOCOL_VERSION};
pub use server::{Server, ServerHandle};
pub use session::{DeltaOutcome, SessionRegistry, SessionSummary};
