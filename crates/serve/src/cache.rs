//! LRU result cache with single-flight coalescing.
//!
//! Mapping computation is deterministic: the same (normalized matrix,
//! topology) pair always yields the same placement, so results are safe to
//! cache indefinitely. The key is [`CommMatrix::fingerprint`] — invariant
//! under accumulation order and uniform scaling — plus the topology
//! arities, so two detections of the same sharing pattern at different
//! sampling intensities hit the same slot.
//!
//! **Single flight:** when several connections ask for the same key
//! concurrently, exactly one (the *leader*) computes; the rest block on a
//! condvar and receive the leader's result ([`CacheOutcome::Coalesced`]).
//! If the leader fails, one waiter is promoted to leader and retries.
//!
//! **Sharding:** [`ShardedCache`] splits the key space over independent
//! [`MapCache`] shards by the hash of the matrix fingerprint, so workers
//! resolving *different* matrices stop serializing on one global lock
//! while identical concurrent requests (same fingerprint → same shard)
//! still coalesce onto a single computation.
//!
//! [`CommMatrix::fingerprint`]: tlbmap_core::CommMatrix::fingerprint

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Cache key: matrix fingerprint + topology arities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`tlbmap_core::CommMatrix::fingerprint`] of the request matrix.
    pub fingerprint: u64,
    /// Chips in the target topology.
    pub chips: usize,
    /// L2 caches per chip.
    pub l2_per_chip: usize,
    /// Cores per L2 cache.
    pub cores_per_l2: usize,
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The result was already cached.
    Hit,
    /// This caller computed the result.
    Miss,
    /// Another in-flight caller computed it; this caller waited.
    Coalesced,
}

enum Slot {
    /// A leader is computing this key.
    Pending,
    /// A computed mapping; `stamp` orders LRU eviction.
    Ready { mapping: Vec<usize>, stamp: u64 },
}

struct Inner {
    slots: HashMap<CacheKey, Slot>,
    tick: u64,
}

/// Bounded mapping cache shared by the worker pool.
pub struct MapCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl MapCache {
    /// A cache retaining at most `capacity` ready mappings (pending slots
    /// do not count toward the bound and are never evicted).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MapCache capacity must be positive");
        MapCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Number of ready entries currently cached.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`, computing with `compute` on a miss. Identical
    /// concurrent misses coalesce onto one computation.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Vec<usize>, String>,
    ) -> (Result<Vec<usize>, String>, CacheOutcome) {
        let mut waited = false;
        let mut inner = self.inner.lock().unwrap();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            match inner.slots.get_mut(&key) {
                Some(Slot::Ready { mapping, stamp }) => {
                    *stamp = tick;
                    let result = mapping.clone();
                    let outcome = if waited {
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::Hit
                    };
                    return (Ok(result), outcome);
                }
                Some(Slot::Pending) => {
                    waited = true;
                    inner = self.ready.wait(inner).unwrap();
                }
                None => break,
            }
        }
        // Become the leader for this key.
        inner.slots.insert(key, Slot::Pending);
        drop(inner);

        let result = compute();

        let mut inner = self.inner.lock().unwrap();
        match &result {
            Ok(mapping) => {
                inner.tick += 1;
                let stamp = inner.tick;
                inner.slots.insert(
                    key,
                    Slot::Ready {
                        mapping: mapping.clone(),
                        stamp,
                    },
                );
                self.evict_over_capacity(&mut inner);
            }
            Err(_) => {
                // Drop the pending slot so a waiter can retry as leader.
                inner.slots.remove(&key);
            }
        }
        drop(inner);
        self.ready.notify_all();
        (result, CacheOutcome::Miss)
    }

    fn evict_over_capacity(&self, inner: &mut Inner) {
        loop {
            let ready = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { stamp, .. } => Some((*k, *stamp)),
                    Slot::Pending => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= self.capacity {
                return;
            }
            if let Some((victim, _)) = ready.iter().min_by_key(|(_, stamp)| *stamp) {
                inner.slots.remove(victim);
            }
        }
    }
}

/// A result cache split over independent [`MapCache`] shards.
///
/// The shard is chosen by hashing only the matrix fingerprint (the
/// topology arities are near-constant across a deployment and would add
/// nothing to the spread), so a given matrix always lands on the same
/// shard and single-flight coalescing keeps working within it. Distinct
/// matrices spread across shards and take distinct locks.
pub struct ShardedCache {
    shards: Vec<MapCache>,
}

impl ShardedCache {
    /// A cache of `capacity` total entries split over `shards` shards.
    ///
    /// Capacity is divided evenly (rounding up, so the total is never
    /// silently below the request); each shard keeps at least one entry.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "ShardedCache capacity must be positive");
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| MapCache::new(per_shard)).collect(),
        }
    }

    /// Number of shards the key space is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to (stable for a given fingerprint).
    pub fn shard_of(&self, key: &CacheKey) -> usize {
        // Fibonacci multiplicative hash: the fingerprint is itself a
        // mixed 64-bit digest, so one odd-constant multiply spreads its
        // low bits well enough for a handful of shards.
        let mixed = key.fingerprint.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (mixed >> 32) as usize % self.shards.len()
    }

    /// Ready entries summed across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(MapCache::len).sum()
    }

    /// Whether no shard holds a ready entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key` on its shard, computing with `compute` on a miss.
    /// Only callers whose keys share a shard ever contend on a lock.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<Vec<usize>, String>,
    ) -> (Result<Vec<usize>, String>, CacheOutcome) {
        self.shards[self.shard_of(&key)].get_or_compute(key, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            chips: 2,
            l2_per_chip: 2,
            cores_per_l2: 2,
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = MapCache::new(4);
        let (r, o) = cache.get_or_compute(key(1), || Ok(vec![0, 1]));
        assert_eq!(r.unwrap(), vec![0, 1]);
        assert_eq!(o, CacheOutcome::Miss);
        let (r, o) = cache.get_or_compute(key(1), || panic!("should not recompute"));
        assert_eq!(r.unwrap(), vec![0, 1]);
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn distinct_topologies_do_not_collide() {
        let cache = MapCache::new(4);
        let a = key(1);
        let b = CacheKey {
            cores_per_l2: 4,
            ..key(1)
        };
        cache.get_or_compute(a, || Ok(vec![0])).0.unwrap();
        let (_, o) = cache.get_or_compute(b, || Ok(vec![1]));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = MapCache::new(2);
        cache.get_or_compute(key(1), || Ok(vec![1])).0.unwrap();
        cache.get_or_compute(key(2), || Ok(vec![2])).0.unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.get_or_compute(key(1), || unreachable!()).0.unwrap();
        cache.get_or_compute(key(3), || Ok(vec![3])).0.unwrap();
        assert_eq!(cache.len(), 2);
        let (_, o) = cache.get_or_compute(key(1), || Ok(vec![9]));
        assert_eq!(o, CacheOutcome::Hit);
        let (_, o) = cache.get_or_compute(key(2), || Ok(vec![2]));
        assert_eq!(o, CacheOutcome::Miss, "key 2 should have been evicted");
    }

    #[test]
    fn error_results_are_not_cached() {
        let cache = MapCache::new(4);
        let (r, _) = cache.get_or_compute(key(1), || Err("boom".to_string()));
        assert!(r.is_err());
        let (r, o) = cache.get_or_compute(key(1), || Ok(vec![7]));
        assert_eq!(r.unwrap(), vec![7]);
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_onto_one_computation() {
        let cache = Arc::new(MapCache::new(4));
        let computations = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computations = Arc::clone(&computations);
                std::thread::spawn(move || {
                    cache.get_or_compute(key(42), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(vec![4, 2])
                    })
                })
            })
            .collect();
        let outcomes: Vec<CacheOutcome> = threads
            .into_iter()
            .map(|t| {
                let (r, o) = t.join().unwrap();
                assert_eq!(r.unwrap(), vec![4, 2]);
                o
            })
            .collect();
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "exactly one leader should compute"
        );
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == CacheOutcome::Miss)
                .count(),
            1
        );
    }

    #[test]
    fn sharded_routing_is_stable_and_still_coalesces() {
        let cache = ShardedCache::new(16, 4);
        assert_eq!(cache.shard_count(), 4);
        // Routing is a pure function of the fingerprint.
        for fp in 0..64 {
            assert_eq!(cache.shard_of(&key(fp)), cache.shard_of(&key(fp)));
        }
        // Hits still work through the shard layer.
        let (r, o) = cache.get_or_compute(key(5), || Ok(vec![5]));
        assert_eq!(r.unwrap(), vec![5]);
        assert_eq!(o, CacheOutcome::Miss);
        let (r, o) = cache.get_or_compute(key(5), || panic!("should not recompute"));
        assert_eq!(r.unwrap(), vec![5]);
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn sharded_len_sums_across_shards() {
        let cache = ShardedCache::new(64, 4);
        assert!(cache.is_empty());
        for fp in 0..32 {
            cache
                .get_or_compute(key(fp), || Ok(vec![fp as usize]))
                .0
                .unwrap();
        }
        assert_eq!(cache.len(), 32);
        // The multiplicative hash should actually spread keys: no single
        // shard may have swallowed everything.
        let per_shard: Vec<usize> =
            (0..32)
                .map(|fp| cache.shard_of(&key(fp)))
                .fold(vec![0usize; 4], |mut acc, s| {
                    acc[s] += 1;
                    acc
                });
        assert!(per_shard.iter().filter(|&&n| n > 0).count() > 1);
    }

    #[test]
    fn sharded_capacity_divides_with_a_floor_of_one() {
        // 2 entries over 4 shards: each shard still holds one entry, so
        // total capacity rounds up rather than collapsing to zero.
        let cache = ShardedCache::new(2, 4);
        for fp in 0..16 {
            cache.get_or_compute(key(fp), || Ok(vec![1])).0.unwrap();
        }
        assert!(cache.len() <= 4);
        assert!(!cache.is_empty());
    }

    #[test]
    fn sharded_concurrent_identical_requests_coalesce() {
        let cache = Arc::new(ShardedCache::new(16, 4));
        let computations = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computations = Arc::clone(&computations);
                std::thread::spawn(move || {
                    cache.get_or_compute(key(42), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(vec![4, 2])
                    })
                })
            })
            .collect();
        for t in threads {
            let (r, _) = t.join().unwrap();
            assert_eq!(r.unwrap(), vec![4, 2]);
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_leader_promotes_a_waiter() {
        let cache = Arc::new(MapCache::new(4));
        let attempts = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let attempts = Arc::clone(&attempts);
                std::thread::spawn(move || {
                    cache.get_or_compute(key(7), || {
                        let n = attempts.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        if n == 0 {
                            Err("first leader fails".to_string())
                        } else {
                            Ok(vec![n])
                        }
                    })
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let failures = results.iter().filter(|(r, _)| r.is_err()).count();
        let successes = results.iter().filter(|(r, _)| r.is_ok()).count();
        assert_eq!(failures, 1, "only the first leader observes the error");
        assert_eq!(successes, 3);
    }
}
