//! Minimal Linux readiness-notification bindings: `epoll` and `eventfd`
//! over raw fds, declared against the C library the Rust standard library
//! already links — no new dependencies.
//!
//! The serve event loop needs exactly four primitives the standard library
//! does not expose: create an epoll instance, register/modify/remove
//! interest in a file descriptor, block for readiness, and a userspace
//! doorbell (`eventfd`) other threads can ring to wake the loop for
//! worker completions and drain. Everything here is a thin `io::Result`
//! wrapper that turns `-1` returns into `io::Error::last_os_error()`;
//! ownership follows RAII (`Drop` closes the fd).
//!
//! The bindings are deliberately *not* a general epoll crate: one
//! interest list, `u64` tokens, level-triggered only. Level-triggered is
//! the right discipline for a batching loop — a connection whose buffer
//! still holds a partial frame stays readable on the next tick without
//! re-arm bookkeeping, so a missed byte can cost a tick but never a hang.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

/// Readiness: data to read (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: writable without blocking (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Condition: error on the fd (`EPOLLERR`, always reported).
pub const EPOLLERR: u32 = 0x008;
/// Condition: hangup (`EPOLLHUP`, always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Condition: peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
/// `EPOLL_CLOEXEC` == `O_CLOEXEC` (octal 02000000).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness report. On x86-64 the kernel ABI packs the struct
/// (no padding between the 32-bit mask and the 64-bit payload); other
/// architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

impl EpollEvent {
    /// An empty slot for the `wait` output buffer.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness bitmask, copied out (the struct may be packed, so
    /// fields must be read by value, never by reference).
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The caller's token, copied out.
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance: one interest list, level-triggered, `u64` tokens.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Register interest in `fd`; readiness reports carry `token` back.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest mask of an already registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove `fd` from the interest list.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL on modern kernels but must
        // be non-null on pre-2.6.9 ABIs; passing a real struct costs
        // nothing.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready, a signal lands,
    /// or `timeout_ms` elapses (`None` = wait forever). Returns how many
    /// slots of `events` were filled; `EINTR` reads as 0 ready fds so the
    /// caller's loop re-evaluates its own state instead of dying.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: Option<u64>) -> io::Result<usize> {
        let timeout = timeout_ms.map_or(-1, |ms| ms.min(c_int::MAX as u64) as c_int);
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// A wakeup doorbell: an `eventfd` the loop registers for `EPOLLIN` and
/// any thread rings with [`WakeFd::wake`]. Nonblocking on both ends, and
/// the counter semantics coalesce: a thousand wakes between two ticks
/// cost one readiness report and one 8-byte drain.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create the doorbell (counter 0, nonblocking, close-on-exec).
    pub fn new() -> io::Result<WakeFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// The fd to register with [`Epoll::add`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Ring the doorbell. Safe from any thread; a full counter (already
    /// `u64::MAX - 1` pending wakes) is indistinguishable from success —
    /// the loop is getting woken either way.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, (&one as *const u64).cast::<c_void>(), 8);
        }
    }

    /// Drain pending wakes so the level-triggered registration goes quiet
    /// until the next [`WakeFd::wake`].
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(self.fd, (&mut buf as *mut u64).cast::<c_void>(), 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Raise the soft `RLIMIT_NOFILE` cap toward `want` (bounded by the hard
/// limit). Returns the resulting soft limit. The event loop itself never
/// needs this, but tests that open a thousand loopback connections hold
/// *both* ends in one process and can outrun a conservative default of
/// 1024.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: c_int = 7;
    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut c_void) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const c_void) -> c_int;
    }
    let mut lim = RLimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, (&mut lim as *mut RLimit).cast()) })?;
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    lim.cur = want.min(lim.max);
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, (&lim as *const RLimit).cast()) })?;
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_fd_reports_readable_and_drains_quiet() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.fd(), EPOLLIN, 7).unwrap();

        // Quiet doorbell: a zero-timeout wait sees nothing.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);

        // Many wakes coalesce into one readiness report with our token.
        wake.wake();
        wake.wake();
        wake.wake();
        let n = ep.wait(&mut events, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Drained, the level-triggered registration goes quiet again.
        wake.drain();
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_follows_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0, "no data yet");

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Level-triggered: unread data keeps the fd ready on every tick.
        let again = ep.wait(&mut events, Some(0)).unwrap();
        assert_eq!(again, 1);

        // Reading it all quiets the fd; peer close raises RDHUP.
        let mut buf = [0u8; 8];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
        drop(client);
        let n = ep.wait(&mut events, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].readiness() & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);

        ep.del(server_side.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn modify_switches_interest_to_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        // Interest in reads only: an idle connected socket is quiet.
        ep.add(server_side.as_raw_fd(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
        // Swap to writes: an empty send buffer reports writable at once.
        ep.modify(server_side.as_raw_fd(), EPOLLOUT, 2).unwrap();
        let n = ep.wait(&mut events, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);
        assert_ne!(events[0].readiness() & EPOLLOUT, 0);
        drop(client);
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let now = raise_nofile_limit(0).unwrap();
        assert!(now > 0);
        // Asking for what we already have (or less) never lowers it.
        assert_eq!(raise_nofile_limit(now).unwrap(), now);
    }
}
