//! Load generators: a closed loop (N connections × M requests) and an
//! open loop (target arrival rate, latency from *scheduled* send time).
//!
//! In the closed loop each connection is a thread running send, wait,
//! send — the offered load is `connections` in-flight requests at all
//! times, and the measured latency is a *response time under constant
//! concurrency*. That is the wrong instrument for a capacity question:
//! when the server slows down, a closed loop slows its own arrivals too,
//! so queueing delay hides (coordinated omission).
//!
//! The open loop ([`run_curve`]) instead fixes an arrival schedule at a
//! target RPS — request *j* of a point is due at `start + j/rps`,
//! striped round-robin across the connections — and measures each
//! latency from its **scheduled** send time, so a stalled server keeps
//! accumulating due requests and the stall shows up in the percentiles
//! instead of disappearing into a slower send rate. Sweeping several RPS
//! points yields a p99-vs-offered-load curve, the shape capacity
//! planning actually needs.
//!
//! Latencies are merged across connections and summarized with the
//! nearest-rank percentiles from `tlbmap-bench`, putting service latency
//! in the same statistical vocabulary as the simulator's benchmarks.
//!
//! Two telemetry extras ride along:
//!
//! * a **per-second timeline** (requests sent, completions, p50/p99 per
//!   wall-clock second of the run) so the report shows the run's shape,
//!   not just its totals, and
//! * an optional **admin sampler** ([`LoadgenConfig::sample_period_ms`])
//!   that scrapes the server's `admin stats` frame before, during, and
//!   after the run on its own connection — so the report can check the
//!   server's own counters against the client-observed totals
//!   ([`LoadgenReport::map_requests_delta`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tlbmap_bench::{percentile, sparkline, Table};
use tlbmap_core::CommMatrix;
use tlbmap_obs::Json;
use tlbmap_sim::Topology;

use crate::client::{Client, ServeError};
use crate::protocol::{AdminKind, DeltaDecision};

/// What the load generator sends.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Per-request deadline in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Artificial worker delay per request in milliseconds.
    pub delay_ms: u64,
    /// Scrape the server's `admin stats` frame every this many
    /// milliseconds on a dedicated connection (plus one scrape before and
    /// one after the run). 0 disables scraping entirely — the default, so
    /// a plain campaign sends *exactly* `connections × requests` frames
    /// and server-side counters stay exactly predictable.
    pub sample_period_ms: u64,
    /// The matrix every request carries.
    pub matrix: CommMatrix,
    /// The topology every request targets.
    pub topo: Topology,
}

impl LoadgenConfig {
    /// A small default campaign: 4 connections × 25 requests over an
    /// 8-thread ring matrix on the paper's 2×2×2 machine, no sampling.
    pub fn new() -> Self {
        let mut matrix = CommMatrix::new(8);
        for t in 0..8 {
            matrix.add(t, (t + 1) % 8, 100);
        }
        LoadgenConfig {
            connections: 4,
            requests: 25,
            deadline_ms: 0,
            delay_ms: 0,
            sample_period_ms: 0,
            matrix,
            topo: Topology::harpertown(),
        }
    }

    /// Override the admin-sampler period (0 = off).
    pub fn with_sample_period_ms(mut self, ms: u64) -> Self {
        self.sample_period_ms = ms;
        self
    }
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig::new()
    }
}

/// One second of the run, client-side view.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondStat {
    /// Seconds since the run started (0 = the first second).
    pub sec: u64,
    /// Requests that *completed* (ok or error) in this second.
    pub sent: u64,
    /// Of those, requests answered with a mapping.
    pub ok: u64,
    /// Median latency of this second's successful requests (0 if none).
    pub p50_us: f64,
    /// 99th-percentile latency of this second's successes (0 if none).
    pub p99_us: f64,
}

impl SecondStat {
    /// JSON shape used inside the report's `timeline` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sec", Json::U64(self.sec)),
            ("sent", Json::U64(self.sent)),
            ("ok", Json::U64(self.ok)),
            ("p50_us", Json::F64(self.p50_us)),
            ("p99_us", Json::F64(self.p99_us)),
        ])
    }
}

/// Aggregated result of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub sent: usize,
    /// Requests answered with a mapping.
    pub ok: usize,
    /// Of the `ok` answers, how many the server served from cache.
    pub cached: usize,
    /// Failures by error label (`overloaded`, `timeout`, `transport`, …).
    pub errors: BTreeMap<String, usize>,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Successful requests per second over the whole run.
    pub throughput_rps: f64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Per-second time series of the run (empty for sub-second runs only
    /// if nothing completed).
    pub timeline: Vec<SecondStat>,
    /// `admin stats` scraped just before the first request (sampler on).
    pub server_before: Option<Json>,
    /// `admin stats` scraped just after the last request (sampler on).
    pub server_after: Option<Json>,
    /// Periodic `admin stats` scrapes taken during the run (sampler on).
    pub server_samples: Vec<Json>,
}

/// Pull a `u64` field out of an admin-stats document.
fn stat_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

impl LoadgenReport {
    /// Total failed requests.
    pub fn total_errors(&self) -> usize {
        self.errors.values().sum()
    }

    /// How many `map` requests the *server* says it saw between the
    /// before/after scrapes. With no other traffic on the server this
    /// equals [`LoadgenReport::sent`] — the consistency check the service
    /// CI gate enforces. `None` when the sampler was off.
    pub fn map_requests_delta(&self) -> Option<u64> {
        let before = stat_u64(self.server_before.as_ref()?, "map_requests")?;
        let after = stat_u64(self.server_after.as_ref()?, "map_requests")?;
        Some(after.saturating_sub(before))
    }

    /// The report as a benchmark-artifact JSON document (kind
    /// `"loadgen"`), shaped like the other `results/BENCH_*.json` files.
    pub fn to_json(&self, connections: usize, requests: usize) -> Json {
        let opt = |doc: &Option<Json>| doc.clone().unwrap_or(Json::Null);
        Json::obj(vec![
            ("kind", Json::Str("loadgen".into())),
            ("connections", Json::U64(connections as u64)),
            ("requests_per_connection", Json::U64(requests as u64)),
            ("sent", Json::U64(self.sent as u64)),
            ("ok", Json::U64(self.ok as u64)),
            ("cached", Json::U64(self.cached as u64)),
            (
                "errors",
                Json::Obj(
                    self.errors
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v as u64)))
                        .collect(),
                ),
            ),
            ("p50_us", Json::F64(self.p50_us)),
            ("p90_us", Json::F64(self.p90_us)),
            ("p99_us", Json::F64(self.p99_us)),
            ("throughput_rps", Json::F64(self.throughput_rps)),
            ("wall_ms", Json::F64(self.wall_ms)),
            (
                "timeline",
                Json::Arr(self.timeline.iter().map(SecondStat::to_json).collect()),
            ),
            (
                "server",
                Json::obj(vec![
                    ("before", opt(&self.server_before)),
                    ("after", opt(&self.server_after)),
                    (
                        "map_requests_delta",
                        self.map_requests_delta().map_or(Json::Null, Json::U64),
                    ),
                    ("samples", Json::Arr(self.server_samples.clone())),
                ]),
            ),
        ])
    }

    /// Render the report as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec!["metric", "value"]);
        table.row(vec!["sent".to_string(), self.sent.to_string()]);
        table.row(vec!["ok".to_string(), self.ok.to_string()]);
        table.row(vec!["cached".to_string(), self.cached.to_string()]);
        table.row(vec!["errors".to_string(), self.total_errors().to_string()]);
        table.row(vec!["p50 (us)".to_string(), format!("{:.1}", self.p50_us)]);
        table.row(vec!["p90 (us)".to_string(), format!("{:.1}", self.p90_us)]);
        table.row(vec!["p99 (us)".to_string(), format!("{:.1}", self.p99_us)]);
        table.row(vec![
            "throughput (req/s)".to_string(),
            format!("{:.1}", self.throughput_rps),
        ]);
        table.row(vec![
            "wall time (ms)".to_string(),
            format!("{:.1}", self.wall_ms),
        ]);
        let mut out = table.render();
        for (label, count) in &self.errors {
            out.push_str(&format!("  error[{label}] = {count}\n"));
        }
        if self.timeline.len() > 1 {
            let rps: Vec<f64> = self.timeline.iter().map(|s| s.sent as f64).collect();
            let p99: Vec<f64> = self.timeline.iter().map(|s| s.p99_us).collect();
            let peak_rps = rps.iter().cloned().fold(0.0, f64::max);
            let peak_p99 = p99.iter().cloned().fold(0.0, f64::max);
            out.push_str(&format!(
                "  rps/s  {} (peak {peak_rps:.0})\n",
                sparkline(&rps)
            ));
            out.push_str(&format!(
                "  p99/s  {} (peak {peak_p99:.0} us)\n",
                sparkline(&p99)
            ));
        }
        if let Some(delta) = self.map_requests_delta() {
            out.push_str(&format!(
                "  server map_requests delta = {delta} (client sent {})\n",
                self.sent
            ));
        }
        out
    }
}

/// One completed request as a connection thread saw it.
struct RequestSample {
    /// Whole seconds since the run started when the request completed.
    sec: u64,
    latency_us: f64,
    ok: bool,
}

struct ConnOutcome {
    samples: Vec<RequestSample>,
    ok: usize,
    cached: usize,
    errors: BTreeMap<String, usize>,
}

fn error_label(e: &ServeError) -> String {
    match e {
        ServeError::Remote { code, .. } => code.as_str().to_string(),
        ServeError::Transport(_) => "transport".to_string(),
    }
}

fn run_connection(
    addr: &str,
    cfg: &LoadgenConfig,
    run_start: Instant,
) -> Result<ConnOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut outcome = ConnOutcome {
        samples: Vec::with_capacity(cfg.requests),
        ok: 0,
        cached: 0,
        errors: BTreeMap::new(),
    };
    let deadline = if cfg.deadline_ms > 0 {
        Some(cfg.deadline_ms)
    } else {
        None
    };
    for _ in 0..cfg.requests {
        let start = Instant::now();
        let result = client.map(&cfg.matrix, &cfg.topo, deadline, cfg.delay_ms);
        let latency_us = start.elapsed().as_secs_f64() * 1e6;
        let sec = run_start.elapsed().as_secs();
        match result {
            Ok(reply) => {
                outcome.samples.push(RequestSample {
                    sec,
                    latency_us,
                    ok: true,
                });
                outcome.ok += 1;
                if reply.cached {
                    outcome.cached += 1;
                }
            }
            Err(e) => {
                outcome.samples.push(RequestSample {
                    sec,
                    latency_us,
                    ok: false,
                });
                *outcome.errors.entry(error_label(&e)).or_insert(0) += 1;
                // A transport error means the connection is unusable.
                if matches!(e, ServeError::Transport(_)) {
                    break;
                }
            }
        }
    }
    Ok(outcome)
}

/// Scrape `admin stats` every `period` until `stop` is raised; returns
/// the scrapes in order. Runs on its own connection so it never perturbs
/// the campaign connections' closed loops.
fn sampler_loop(addr: &str, period: Duration, stop: &AtomicBool) -> Vec<Json> {
    let mut samples = Vec::new();
    let Ok(mut client) = Client::connect(addr) else {
        return samples;
    };
    let quantum = period.min(Duration::from_millis(25));
    let mut next = Instant::now() + period;
    while !stop.load(Ordering::Relaxed) {
        if Instant::now() >= next {
            if let Ok(doc) = client.admin(AdminKind::Stats) {
                samples.push(doc);
            }
            next += period;
        }
        std::thread::sleep(quantum);
    }
    samples
}

/// Bucket every request completion into whole seconds since run start.
fn build_timeline(samples: &[RequestSample]) -> Vec<SecondStat> {
    let mut by_sec: BTreeMap<u64, (u64, u64, Vec<f64>)> = BTreeMap::new();
    for s in samples {
        let entry = by_sec.entry(s.sec).or_insert((0, 0, Vec::new()));
        entry.0 += 1;
        if s.ok {
            entry.1 += 1;
            entry.2.push(s.latency_us);
        }
    }
    let last = by_sec.keys().next_back().copied().unwrap_or(0);
    // Fill gaps so idle seconds show as zeros instead of vanishing —
    // a stall must be visible in the timeline.
    (0..=last)
        .map(|sec| match by_sec.get(&sec) {
            Some((sent, ok, lats)) => SecondStat {
                sec,
                sent: *sent,
                ok: *ok,
                p50_us: percentile(lats, 50.0).unwrap_or(0.0),
                p99_us: percentile(lats, 99.0).unwrap_or(0.0),
            },
            None => SecondStat {
                sec,
                sent: 0,
                ok: 0,
                p50_us: 0.0,
                p99_us: 0.0,
            },
        })
        .collect()
}

/// Run the campaign against a live server at `addr`.
pub fn run_loadgen(addr: &str, cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.connections == 0 || cfg.requests == 0 {
        return Err("loadgen needs at least 1 connection and 1 request".to_string());
    }
    let sampling = cfg.sample_period_ms > 0;
    let server_before = if sampling {
        Client::connect(addr)
            .and_then(|mut c| c.admin(AdminKind::Stats))
            .ok()
    } else {
        None
    };

    let start = Instant::now();
    let stop = AtomicBool::new(false);
    let (outcomes, server_samples) = std::thread::scope(|scope| {
        let sampler = sampling.then(|| {
            let period = Duration::from_millis(cfg.sample_period_ms);
            let stop = &stop;
            scope.spawn(move || sampler_loop(addr, period, stop))
        });
        let handles: Vec<_> = (0..cfg.connections)
            .map(|_| scope.spawn(|| run_connection(addr, cfg, start)))
            .collect();
        let outcomes = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "connection thread panicked".to_string())?
            })
            .collect::<Result<Vec<_>, String>>();
        stop.store(true, Ordering::Relaxed);
        let samples = sampler.and_then(|h| h.join().ok()).unwrap_or_default();
        outcomes.map(|o| (o, samples))
    })?;
    let wall = start.elapsed();

    let server_after = if sampling {
        Client::connect(addr)
            .and_then(|mut c| c.admin(AdminKind::Stats))
            .ok()
    } else {
        None
    };

    let mut all_samples = Vec::new();
    let mut latencies = Vec::new();
    let mut ok = 0;
    let mut cached = 0;
    let mut errors: BTreeMap<String, usize> = BTreeMap::new();
    for outcome in outcomes {
        for s in &outcome.samples {
            if s.ok {
                latencies.push(s.latency_us);
            }
        }
        all_samples.extend(outcome.samples);
        ok += outcome.ok;
        cached += outcome.cached;
        for (label, count) in outcome.errors {
            *errors.entry(label).or_insert(0) += count;
        }
    }
    let failed: usize = errors.values().sum();
    Ok(LoadgenReport {
        sent: ok + failed,
        ok,
        cached,
        errors,
        p50_us: percentile(&latencies, 50.0).unwrap_or(0.0),
        p90_us: percentile(&latencies, 90.0).unwrap_or(0.0),
        p99_us: percentile(&latencies, 99.0).unwrap_or(0.0),
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            ok as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall_ms: wall.as_secs_f64() * 1e3,
        timeline: build_timeline(&all_samples),
        server_before,
        server_after,
        server_samples,
    })
}

/// What the open-loop load generator sends (`loadgen --rps`).
#[derive(Debug, Clone)]
pub struct CurveConfig {
    /// Connections the arrival schedule is striped across.
    pub connections: usize,
    /// Offered-load points to sweep, in requests per second.
    pub rps_points: Vec<u64>,
    /// How long each point runs, in milliseconds.
    pub duration_ms: u64,
    /// Per-request deadline in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Artificial worker delay per request in milliseconds.
    pub delay_ms: u64,
    /// The matrix every request carries.
    pub matrix: CommMatrix,
    /// The topology every request targets.
    pub topo: Topology,
}

impl CurveConfig {
    /// A small default sweep: 500 / 2000 / 8000 offered RPS for 1 s each
    /// over 4 connections, same ring matrix as [`LoadgenConfig::new`].
    pub fn new() -> Self {
        let base = LoadgenConfig::new();
        CurveConfig {
            connections: 4,
            rps_points: vec![500, 2000, 8000],
            duration_ms: 1000,
            deadline_ms: 0,
            delay_ms: 0,
            matrix: base.matrix,
            topo: base.topo,
        }
    }
}

impl Default for CurveConfig {
    fn default() -> Self {
        CurveConfig::new()
    }
}

/// One offered-load point of an open-loop sweep.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// The target arrival rate of this point (requests per second).
    pub offered_rps: u64,
    /// Requests the schedule called for (and the connections attempted).
    pub sent: usize,
    /// Requests answered with a mapping.
    pub ok: usize,
    /// Of the `ok` answers, how many the server served from cache.
    pub cached: usize,
    /// Failures by error label.
    pub errors: BTreeMap<String, usize>,
    /// Median latency in microseconds, measured from *scheduled* send.
    pub p50_us: f64,
    /// 90th percentile, scheduled-send basis.
    pub p90_us: f64,
    /// 99th percentile, scheduled-send basis.
    pub p99_us: f64,
    /// Completions per second actually achieved over the point's wall
    /// clock. Tracks `offered_rps` until the server saturates.
    pub achieved_rps: f64,
    /// Worst observed send lag behind schedule in microseconds — how far
    /// the *generator* fell behind, as opposed to the server. Large
    /// values mean the curve under-offered and the point should be read
    /// with suspicion.
    pub max_lag_us: f64,
    /// Wall-clock duration of the point in milliseconds.
    pub wall_ms: f64,
}

impl CurvePoint {
    /// JSON shape used inside the curve report's `points` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("offered_rps", Json::U64(self.offered_rps)),
            ("sent", Json::U64(self.sent as u64)),
            ("ok", Json::U64(self.ok as u64)),
            ("cached", Json::U64(self.cached as u64)),
            (
                "errors",
                Json::Obj(
                    self.errors
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v as u64)))
                        .collect(),
                ),
            ),
            ("p50_us", Json::F64(self.p50_us)),
            ("p90_us", Json::F64(self.p90_us)),
            ("p99_us", Json::F64(self.p99_us)),
            ("achieved_rps", Json::F64(self.achieved_rps)),
            ("max_lag_us", Json::F64(self.max_lag_us)),
            ("wall_ms", Json::F64(self.wall_ms)),
        ])
    }
}

/// Aggregated result of an open-loop sweep: one [`CurvePoint`] per
/// offered-load level, in the order they were run.
#[derive(Debug, Clone)]
pub struct CurveReport {
    /// Connections the schedule was striped across.
    pub connections: usize,
    /// Milliseconds each point ran.
    pub duration_ms: u64,
    /// The measured points.
    pub points: Vec<CurvePoint>,
}

impl CurveReport {
    /// Total failed requests across all points.
    pub fn total_errors(&self) -> usize {
        self.points
            .iter()
            .map(|p| p.errors.values().sum::<usize>())
            .sum()
    }

    /// Whether achieved throughput is monotone (non-decreasing, within
    /// `tolerance` as a fraction) in offered load across the sweep — the
    /// sanity property the CI service gate asserts: more offered load
    /// must never *reduce* completions until the generator itself lags.
    pub fn monotone_achieved(&self, tolerance: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].achieved_rps >= w[0].achieved_rps * (1.0 - tolerance))
    }

    /// The report as a benchmark-artifact JSON document (kind
    /// `"loadgen_curve"`), shaped like the other `results/BENCH_*.json`
    /// files. `monotone_achieved` is precomputed (10% tolerance) so
    /// text-level CI gates can grep for it.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("loadgen_curve".into())),
            ("connections", Json::U64(self.connections as u64)),
            ("duration_ms_per_point", Json::U64(self.duration_ms)),
            (
                "monotone_achieved",
                Json::Bool(self.monotone_achieved(0.10)),
            ),
            (
                "points",
                Json::Arr(self.points.iter().map(CurvePoint::to_json).collect()),
            ),
        ])
    }

    /// Render the sweep as a plain-text table, one row per point.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "offered rps",
            "achieved rps",
            "ok",
            "errors",
            "p50 (us)",
            "p99 (us)",
            "max lag (us)",
        ]);
        for p in &self.points {
            table.row(vec![
                p.offered_rps.to_string(),
                format!("{:.0}", p.achieved_rps),
                p.ok.to_string(),
                p.errors.values().sum::<usize>().to_string(),
                format!("{:.1}", p.p50_us),
                format!("{:.1}", p.p99_us),
                format!("{:.0}", p.max_lag_us),
            ]);
        }
        let mut out = table.render();
        if self.points.len() > 1 {
            let p99: Vec<f64> = self.points.iter().map(|p| p.p99_us).collect();
            out.push_str(&format!("  p99 vs load  {}\n", sparkline(&p99)));
        }
        out
    }
}

/// One connection's share of an open-loop point: requests `first`,
/// `first + stride`, … below `total`, each due at `start + j/rps` on the
/// *global* schedule. Sleeps until each due time, then measures from the
/// due time — a late send (server stall backing up this connection)
/// charges its wait to the latency, which is the whole point of an open
/// loop.
#[allow(clippy::too_many_arguments)]
fn run_open_loop_connection(
    addr: &str,
    cfg: &CurveConfig,
    rps: u64,
    first: usize,
    stride: usize,
    total: usize,
    start: Instant,
) -> Result<PointOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut outcome = PointOutcome::default();
    let deadline = if cfg.deadline_ms > 0 {
        Some(cfg.deadline_ms)
    } else {
        None
    };
    let mut j = first;
    while j < total {
        let due = start + Duration::from_nanos((j as u64).saturating_mul(1_000_000_000) / rps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let lag_us = Instant::now().saturating_duration_since(due).as_secs_f64() * 1e6;
        outcome.max_lag_us = outcome.max_lag_us.max(lag_us);
        let result = client.map(&cfg.matrix, &cfg.topo, deadline, cfg.delay_ms);
        let latency_us = Instant::now().saturating_duration_since(due).as_secs_f64() * 1e6;
        outcome.sent += 1;
        match result {
            Ok(reply) => {
                outcome.latencies.push(latency_us);
                outcome.ok += 1;
                if reply.cached {
                    outcome.cached += 1;
                }
            }
            Err(e) => {
                *outcome.errors.entry(error_label(&e)).or_insert(0) += 1;
                if matches!(e, ServeError::Transport(_)) {
                    break;
                }
            }
        }
        j += stride;
    }
    Ok(outcome)
}

#[derive(Default)]
struct PointOutcome {
    latencies: Vec<f64>,
    sent: usize,
    ok: usize,
    cached: usize,
    errors: BTreeMap<String, usize>,
    max_lag_us: f64,
}

/// Run one offered-load point of the sweep.
fn run_curve_point(addr: &str, cfg: &CurveConfig, rps: u64) -> Result<CurvePoint, String> {
    let total = ((rps.saturating_mul(cfg.duration_ms)) / 1000).max(1) as usize;
    let start = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.min(total))
            .map(|first| {
                scope.spawn(move || {
                    run_open_loop_connection(addr, cfg, rps, first, cfg.connections, total, start)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "open-loop connection thread panicked".to_string())?
            })
            .collect::<Result<Vec<_>, String>>()
    })?;
    let wall = start.elapsed();
    let mut latencies = Vec::new();
    let mut point = CurvePoint {
        offered_rps: rps,
        sent: 0,
        ok: 0,
        cached: 0,
        errors: BTreeMap::new(),
        p50_us: 0.0,
        p90_us: 0.0,
        p99_us: 0.0,
        achieved_rps: 0.0,
        max_lag_us: 0.0,
        wall_ms: wall.as_secs_f64() * 1e3,
    };
    for o in outcomes {
        latencies.extend(o.latencies);
        point.sent += o.sent;
        point.ok += o.ok;
        point.cached += o.cached;
        point.max_lag_us = point.max_lag_us.max(o.max_lag_us);
        for (label, count) in o.errors {
            *point.errors.entry(label).or_insert(0) += count;
        }
    }
    point.p50_us = percentile(&latencies, 50.0).unwrap_or(0.0);
    point.p90_us = percentile(&latencies, 90.0).unwrap_or(0.0);
    point.p99_us = percentile(&latencies, 99.0).unwrap_or(0.0);
    if wall.as_secs_f64() > 0.0 {
        point.achieved_rps = point.ok as f64 / wall.as_secs_f64();
    }
    Ok(point)
}

/// Run the open-loop sweep against a live server at `addr`: one
/// [`CurvePoint`] per entry of [`CurveConfig::rps_points`], in order.
/// Points run back to back on fresh connections, so later points start
/// with the server's cache warm from the earlier ones — deliberate: the
/// curve isolates *load* effects, not cold-start effects.
pub fn run_curve(addr: &str, cfg: &CurveConfig) -> Result<CurveReport, String> {
    if cfg.connections == 0 || cfg.rps_points.is_empty() || cfg.duration_ms == 0 {
        return Err(
            "open-loop loadgen needs at least 1 connection, 1 rps point, and a positive duration"
                .to_string(),
        );
    }
    if cfg.rps_points.contains(&0) {
        return Err("open-loop rps points must be positive".to_string());
    }
    let mut points = Vec::with_capacity(cfg.rps_points.len());
    for &rps in &cfg.rps_points {
        points.push(run_curve_point(addr, cfg, rps)?);
    }
    Ok(CurveReport {
        connections: cfg.connections,
        duration_ms: cfg.duration_ms,
        points,
    })
}

/// What the streaming load generator sends (`loadgen --stream`).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Concurrent sessions (threads, one session each).
    pub sessions: usize,
    /// Deltas per session.
    pub deltas: usize,
    /// Flip the communication phase every this many deltas (0 = a
    /// stationary stream that never changes phase).
    pub phase_every: usize,
    /// The topology every session maps onto.
    pub topo: Topology,
}

impl StreamConfig {
    /// A small default campaign: 2 sessions × 24 deltas, phase flip every
    /// 8, on the paper's 2×2×2 machine.
    pub fn new() -> Self {
        StreamConfig {
            sessions: 2,
            deltas: 24,
            phase_every: 8,
            topo: Topology::harpertown(),
        }
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig::new()
    }
}

/// Aggregated result of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Sessions opened successfully.
    pub sessions: usize,
    /// Deltas answered (any decision).
    pub deltas_sent: usize,
    /// Deltas the server answered with a fresh mapping.
    pub remaps_triggered: usize,
    /// Deltas answered `stable` or `cooldown` (no remap).
    pub remaps_suppressed: usize,
    /// Of the remaps, how many the warm-start certificate served.
    pub warm_remaps: usize,
    /// Failures by error label.
    pub errors: BTreeMap<String, usize>,
    /// Median round-trip latency of remapping deltas in microseconds.
    pub remap_p50_us: f64,
    /// 99th-percentile latency of remapping deltas in microseconds.
    pub remap_p99_us: f64,
    /// Median round-trip latency of non-remapping deltas in microseconds.
    pub suppressed_p50_us: f64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
}

impl StreamReport {
    /// Total failed operations.
    pub fn total_errors(&self) -> usize {
        self.errors.values().sum()
    }

    /// The report as a benchmark-artifact JSON document (kind
    /// `"loadgen_stream"`), shaped like the other `results/BENCH_*.json`
    /// sections.
    pub fn to_json(&self, cfg: &StreamConfig) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("loadgen_stream".into())),
            ("sessions", Json::U64(cfg.sessions as u64)),
            ("deltas_per_session", Json::U64(cfg.deltas as u64)),
            ("phase_every", Json::U64(cfg.phase_every as u64)),
            ("deltas_sent", Json::U64(self.deltas_sent as u64)),
            ("remaps_triggered", Json::U64(self.remaps_triggered as u64)),
            (
                "remaps_suppressed",
                Json::U64(self.remaps_suppressed as u64),
            ),
            ("warm_remaps", Json::U64(self.warm_remaps as u64)),
            (
                "errors",
                Json::Obj(
                    self.errors
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v as u64)))
                        .collect(),
                ),
            ),
            ("remap_p50_us", Json::F64(self.remap_p50_us)),
            ("remap_p99_us", Json::F64(self.remap_p99_us)),
            ("suppressed_p50_us", Json::F64(self.suppressed_p50_us)),
            ("wall_ms", Json::F64(self.wall_ms)),
        ])
    }

    /// Render the report as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec!["metric", "value"]);
        table.row(vec!["sessions".to_string(), self.sessions.to_string()]);
        table.row(vec!["deltas".to_string(), self.deltas_sent.to_string()]);
        table.row(vec![
            "remaps triggered".to_string(),
            self.remaps_triggered.to_string(),
        ]);
        table.row(vec![
            "remaps suppressed".to_string(),
            self.remaps_suppressed.to_string(),
        ]);
        table.row(vec![
            "warm remaps".to_string(),
            format!(
                "{} ({:.0}%)",
                self.warm_remaps,
                if self.remaps_triggered > 0 {
                    100.0 * self.warm_remaps as f64 / self.remaps_triggered as f64
                } else {
                    0.0
                }
            ),
        ]);
        table.row(vec!["errors".to_string(), self.total_errors().to_string()]);
        table.row(vec![
            "remap p50 (us)".to_string(),
            format!("{:.1}", self.remap_p50_us),
        ]);
        table.row(vec![
            "remap p99 (us)".to_string(),
            format!("{:.1}", self.remap_p99_us),
        ]);
        table.row(vec![
            "suppressed p50 (us)".to_string(),
            format!("{:.1}", self.suppressed_p50_us),
        ]);
        table.row(vec![
            "wall time (ms)".to_string(),
            format!("{:.1}", self.wall_ms),
        ]);
        let mut out = table.render();
        for (label, count) in &self.errors {
            out.push_str(&format!("  error[{label}] = {count}\n"));
        }
        out
    }
}

/// The delta a streaming connection sends at step `step`: neighbour pairs
/// in the even phases, across-the-machine pairs in the odd ones (the same
/// two patterns the simulator's phase benchmarks use). `phase_every = 0`
/// pins phase 0 forever.
pub fn stream_delta(topo: &Topology, step: usize, phase_every: usize) -> CommMatrix {
    let n = topo.num_cores();
    let phase = step.checked_div(phase_every).map_or(0, |p| p % 2);
    let mut delta = CommMatrix::new(n);
    if phase == 0 {
        for i in (0..n.saturating_sub(1)).step_by(2) {
            delta.add(i, i + 1, 1_000);
        }
    } else {
        for i in 0..n / 2 {
            delta.add(i, i + n / 2, 1_000);
        }
    }
    delta
}

struct StreamOutcome {
    opened: bool,
    deltas: usize,
    remap_latencies: Vec<f64>,
    suppressed_latencies: Vec<f64>,
    remaps: usize,
    suppressed: usize,
    warm: usize,
    errors: BTreeMap<String, usize>,
}

fn run_stream_connection(addr: &str, cfg: &StreamConfig) -> Result<StreamOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut outcome = StreamOutcome {
        opened: false,
        deltas: 0,
        remap_latencies: Vec::new(),
        suppressed_latencies: Vec::new(),
        remaps: 0,
        suppressed: 0,
        warm: 0,
        errors: BTreeMap::new(),
    };
    let session = match client.open_session(&cfg.topo, None, None, None) {
        Ok((session, _)) => session,
        Err(e) => {
            *outcome.errors.entry(error_label(&e)).or_insert(0) += 1;
            return Ok(outcome);
        }
    };
    outcome.opened = true;
    for step in 0..cfg.deltas {
        let delta = stream_delta(&cfg.topo, step, cfg.phase_every);
        let start = Instant::now();
        match client.delta(session, &delta) {
            Ok(reply) => {
                let latency_us = start.elapsed().as_secs_f64() * 1e6;
                outcome.deltas += 1;
                if reply.decision == DeltaDecision::Remap {
                    outcome.remaps += 1;
                    outcome.remap_latencies.push(latency_us);
                    if reply.warm {
                        outcome.warm += 1;
                    }
                } else {
                    outcome.suppressed += 1;
                    outcome.suppressed_latencies.push(latency_us);
                }
            }
            Err(e) => {
                *outcome.errors.entry(error_label(&e)).or_insert(0) += 1;
                if matches!(e, ServeError::Transport(_)) {
                    return Ok(outcome);
                }
            }
        }
    }
    if let Err(e) = client.close_session(session) {
        *outcome.errors.entry(error_label(&e)).or_insert(0) += 1;
    }
    Ok(outcome)
}

/// Run the streaming campaign against a live server at `addr`: each
/// connection opens one session, streams `deltas` deltas through the
/// phased (or stationary) workload, and closes.
pub fn run_stream_loadgen(addr: &str, cfg: &StreamConfig) -> Result<StreamReport, String> {
    if cfg.sessions == 0 || cfg.deltas == 0 {
        return Err("stream loadgen needs at least 1 session and 1 delta".to_string());
    }
    let start = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|_| scope.spawn(|| run_stream_connection(addr, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "stream connection thread panicked".to_string())?
            })
            .collect::<Result<Vec<_>, String>>()
    })?;
    let wall = start.elapsed();

    let mut report = StreamReport {
        sessions: 0,
        deltas_sent: 0,
        remaps_triggered: 0,
        remaps_suppressed: 0,
        warm_remaps: 0,
        errors: BTreeMap::new(),
        remap_p50_us: 0.0,
        remap_p99_us: 0.0,
        suppressed_p50_us: 0.0,
        wall_ms: wall.as_secs_f64() * 1e3,
    };
    let mut remap_latencies = Vec::new();
    let mut suppressed_latencies = Vec::new();
    for outcome in outcomes {
        report.sessions += usize::from(outcome.opened);
        report.deltas_sent += outcome.deltas;
        report.remaps_triggered += outcome.remaps;
        report.remaps_suppressed += outcome.suppressed;
        report.warm_remaps += outcome.warm;
        remap_latencies.extend(outcome.remap_latencies);
        suppressed_latencies.extend(outcome.suppressed_latencies);
        for (label, count) in outcome.errors {
            *report.errors.entry(label).or_insert(0) += count;
        }
    }
    report.remap_p50_us = percentile(&remap_latencies, 50.0).unwrap_or(0.0);
    report.remap_p99_us = percentile(&remap_latencies, 99.0).unwrap_or(0.0);
    report.suppressed_p50_us = percentile(&suppressed_latencies, 50.0).unwrap_or(0.0);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LoadgenReport {
        LoadgenReport {
            sent: 100,
            ok: 98,
            cached: 90,
            errors: BTreeMap::from([("overloaded".to_string(), 2)]),
            p50_us: 120.0,
            p90_us: 300.0,
            p99_us: 900.0,
            throughput_rps: 4500.0,
            wall_ms: 22.0,
            timeline: vec![
                SecondStat {
                    sec: 0,
                    sent: 60,
                    ok: 59,
                    p50_us: 110.0,
                    p99_us: 800.0,
                },
                SecondStat {
                    sec: 1,
                    sent: 40,
                    ok: 39,
                    p50_us: 130.0,
                    p99_us: 950.0,
                },
            ],
            server_before: Some(Json::obj(vec![("map_requests", Json::U64(10))])),
            server_after: Some(Json::obj(vec![("map_requests", Json::U64(110))])),
            server_samples: vec![Json::obj(vec![("map_requests", Json::U64(60))])],
        }
    }

    #[test]
    fn report_json_has_the_benchmark_shape() {
        let report = sample_report();
        let json = report.to_json(4, 25);
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("loadgen"));
        assert_eq!(json.get("ok").and_then(Json::as_u64), Some(98));
        assert_eq!(
            json.get("errors")
                .and_then(|e| e.get("overloaded"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert!(report.render().contains("throughput"));
        assert_eq!(report.total_errors(), 2);
    }

    #[test]
    fn report_json_carries_the_timeline_and_server_scrapes() {
        let report = sample_report();
        let json = report.to_json(4, 25);
        let timeline = json.get("timeline").and_then(Json::as_array).unwrap();
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].get("sent").and_then(Json::as_u64), Some(60));
        assert_eq!(timeline[1].get("sec").and_then(Json::as_u64), Some(1));
        let server = json.get("server").unwrap();
        assert_eq!(
            server.get("map_requests_delta").and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(
            server
                .get("samples")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(1)
        );
        // The rendered report shows the consistency line + sparklines.
        let text = report.render();
        assert!(text.contains("map_requests delta = 100"), "{text}");
        assert!(text.contains("rps/s"), "{text}");
    }

    #[test]
    fn sampler_off_leaves_server_fields_null() {
        let mut report = sample_report();
        report.server_before = None;
        report.server_after = None;
        report.server_samples.clear();
        assert_eq!(report.map_requests_delta(), None);
        let json = report.to_json(4, 25);
        let server = json.get("server").unwrap();
        assert_eq!(server.get("before"), Some(&Json::Null));
        assert_eq!(server.get("map_requests_delta"), Some(&Json::Null));
    }

    #[test]
    fn timelines_fill_idle_seconds() {
        let samples = vec![
            RequestSample {
                sec: 0,
                latency_us: 100.0,
                ok: true,
            },
            RequestSample {
                sec: 2,
                latency_us: 300.0,
                ok: false,
            },
        ];
        let timeline = build_timeline(&samples);
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0].ok, 1);
        assert_eq!(timeline[1].sent, 0);
        // Second 2 saw one completion but no success: sent counts it,
        // quantiles stay 0 rather than reporting an error's latency.
        assert_eq!(timeline[2].sent, 1);
        assert_eq!(timeline[2].ok, 0);
        assert_eq!(timeline[2].p50_us, 0.0);
    }

    #[test]
    fn zero_sized_campaigns_are_rejected() {
        let mut cfg = LoadgenConfig::new();
        cfg.connections = 0;
        assert!(run_loadgen("127.0.0.1:1", &cfg).is_err());
        let mut cfg = StreamConfig::new();
        cfg.sessions = 0;
        assert!(run_stream_loadgen("127.0.0.1:1", &cfg).is_err());
    }

    fn sample_point(rps: u64, achieved: f64, p99: f64) -> CurvePoint {
        CurvePoint {
            offered_rps: rps,
            sent: 100,
            ok: 100,
            cached: 99,
            errors: BTreeMap::new(),
            p50_us: 100.0,
            p90_us: 200.0,
            p99_us: p99,
            achieved_rps: achieved,
            max_lag_us: 40.0,
            wall_ms: 1000.0,
        }
    }

    #[test]
    fn curve_report_json_has_the_benchmark_shape() {
        let report = CurveReport {
            connections: 4,
            duration_ms: 1000,
            points: vec![
                sample_point(500, 499.0, 300.0),
                sample_point(2000, 1998.0, 450.0),
                sample_point(8000, 7100.0, 2200.0),
            ],
        };
        let json = report.to_json();
        assert_eq!(
            json.get("kind").and_then(Json::as_str),
            Some("loadgen_curve")
        );
        assert_eq!(json.get("monotone_achieved"), Some(&Json::Bool(true)));
        let points = json.get("points").and_then(Json::as_array).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(
            points[0].get("offered_rps").and_then(Json::as_u64),
            Some(500)
        );
        assert_eq!(points[2].get("p99_us"), Some(&Json::F64(2200.0)));
        let text = report.render();
        assert!(text.contains("offered rps"), "{text}");
        assert!(text.contains("p99 vs load"), "{text}");
        assert_eq!(report.total_errors(), 0);
    }

    #[test]
    fn curve_monotonicity_allows_tolerance_but_not_collapse() {
        let rising = CurveReport {
            connections: 4,
            duration_ms: 1000,
            points: vec![
                sample_point(500, 500.0, 300.0),
                sample_point(2000, 1900.0, 400.0),
            ],
        };
        assert!(rising.monotone_achieved(0.10));
        // A small sag within tolerance still counts as monotone…
        let sag = CurveReport {
            connections: 4,
            duration_ms: 1000,
            points: vec![
                sample_point(500, 500.0, 300.0),
                sample_point(2000, 460.0, 400.0),
            ],
        };
        assert!(sag.monotone_achieved(0.10));
        // …but a collapse does not.
        let collapse = CurveReport {
            connections: 4,
            duration_ms: 1000,
            points: vec![
                sample_point(500, 500.0, 300.0),
                sample_point(2000, 300.0, 400.0),
            ],
        };
        assert!(!collapse.monotone_achieved(0.10));
    }

    #[test]
    fn zero_sized_curves_are_rejected() {
        let mut cfg = CurveConfig::new();
        cfg.rps_points.clear();
        assert!(run_curve("127.0.0.1:1", &cfg).is_err());
        let mut cfg = CurveConfig::new();
        cfg.rps_points = vec![500, 0];
        assert!(run_curve("127.0.0.1:1", &cfg).is_err());
        let mut cfg = CurveConfig::new();
        cfg.duration_ms = 0;
        assert!(run_curve("127.0.0.1:1", &cfg).is_err());
    }

    #[test]
    fn stream_deltas_alternate_phases_on_schedule() {
        let topo = Topology::harpertown();
        // phase_every = 4: steps 0-3 are neighbour pairs, 4-7 across.
        let early = stream_delta(&topo, 0, 4);
        assert_eq!(early.get(0, 1), 1_000);
        assert_eq!(early.get(0, 4), 0);
        let late = stream_delta(&topo, 5, 4);
        assert_eq!(late.get(0, 1), 0);
        assert_eq!(late.get(0, 4), 1_000);
        // Stationary: phase 0 forever.
        let stationary = stream_delta(&topo, 999, 0);
        assert_eq!(stationary.get(0, 1), 1_000);
    }

    #[test]
    fn stream_report_json_has_the_benchmark_shape() {
        let cfg = StreamConfig::new();
        let report = StreamReport {
            sessions: 2,
            deltas_sent: 48,
            remaps_triggered: 6,
            remaps_suppressed: 42,
            warm_remaps: 4,
            errors: BTreeMap::new(),
            remap_p50_us: 400.0,
            remap_p99_us: 900.0,
            suppressed_p50_us: 80.0,
            wall_ms: 12.0,
        };
        let json = report.to_json(&cfg);
        assert_eq!(
            json.get("kind").and_then(Json::as_str),
            Some("loadgen_stream")
        );
        assert_eq!(json.get("remaps_triggered").and_then(Json::as_u64), Some(6));
        assert_eq!(
            json.get("remaps_suppressed").and_then(Json::as_u64),
            Some(42)
        );
        assert_eq!(json.get("warm_remaps").and_then(Json::as_u64), Some(4));
        let text = report.render();
        assert!(text.contains("remaps triggered"), "{text}");
        assert!(text.contains("(67%)"), "{text}");
    }
}
