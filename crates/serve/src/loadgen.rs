//! Closed-loop load generator: N connections × M requests each.
//!
//! Each connection is a thread running a closed loop (send, wait, send),
//! so the offered load is `connections` in-flight requests at all times.
//! Latencies are merged across connections and summarized with the
//! nearest-rank percentiles from `tlbmap-bench`, putting service latency
//! in the same statistical vocabulary as the simulator's benchmarks.

use std::collections::BTreeMap;
use std::time::Instant;

use tlbmap_bench::{percentile, Table};
use tlbmap_core::CommMatrix;
use tlbmap_obs::Json;
use tlbmap_sim::Topology;

use crate::client::{Client, ServeError};

/// What the load generator sends.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Per-request deadline in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Artificial worker delay per request in milliseconds.
    pub delay_ms: u64,
    /// The matrix every request carries.
    pub matrix: CommMatrix,
    /// The topology every request targets.
    pub topo: Topology,
}

impl LoadgenConfig {
    /// A small default campaign: 4 connections × 25 requests over an
    /// 8-thread ring matrix on the paper's 2×2×2 machine.
    pub fn new() -> Self {
        let mut matrix = CommMatrix::new(8);
        for t in 0..8 {
            matrix.add(t, (t + 1) % 8, 100);
        }
        LoadgenConfig {
            connections: 4,
            requests: 25,
            deadline_ms: 0,
            delay_ms: 0,
            matrix,
            topo: Topology::harpertown(),
        }
    }
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig::new()
    }
}

/// Aggregated result of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub sent: usize,
    /// Requests answered with a mapping.
    pub ok: usize,
    /// Of the `ok` answers, how many the server served from cache.
    pub cached: usize,
    /// Failures by error label (`overloaded`, `timeout`, `transport`, …).
    pub errors: BTreeMap<String, usize>,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Successful requests per second over the whole run.
    pub throughput_rps: f64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
}

impl LoadgenReport {
    /// Total failed requests.
    pub fn total_errors(&self) -> usize {
        self.errors.values().sum()
    }

    /// The report as a benchmark-artifact JSON document (kind
    /// `"loadgen"`), shaped like the other `results/BENCH_*.json` files.
    pub fn to_json(&self, connections: usize, requests: usize) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("loadgen".into())),
            ("connections", Json::U64(connections as u64)),
            ("requests_per_connection", Json::U64(requests as u64)),
            ("sent", Json::U64(self.sent as u64)),
            ("ok", Json::U64(self.ok as u64)),
            ("cached", Json::U64(self.cached as u64)),
            (
                "errors",
                Json::Obj(
                    self.errors
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v as u64)))
                        .collect(),
                ),
            ),
            ("p50_us", Json::F64(self.p50_us)),
            ("p90_us", Json::F64(self.p90_us)),
            ("p99_us", Json::F64(self.p99_us)),
            ("throughput_rps", Json::F64(self.throughput_rps)),
            ("wall_ms", Json::F64(self.wall_ms)),
        ])
    }

    /// Render the report as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec!["metric", "value"]);
        table.row(vec!["sent".to_string(), self.sent.to_string()]);
        table.row(vec!["ok".to_string(), self.ok.to_string()]);
        table.row(vec!["cached".to_string(), self.cached.to_string()]);
        table.row(vec!["errors".to_string(), self.total_errors().to_string()]);
        table.row(vec!["p50 (us)".to_string(), format!("{:.1}", self.p50_us)]);
        table.row(vec!["p90 (us)".to_string(), format!("{:.1}", self.p90_us)]);
        table.row(vec!["p99 (us)".to_string(), format!("{:.1}", self.p99_us)]);
        table.row(vec![
            "throughput (req/s)".to_string(),
            format!("{:.1}", self.throughput_rps),
        ]);
        table.row(vec![
            "wall time (ms)".to_string(),
            format!("{:.1}", self.wall_ms),
        ]);
        let mut out = table.render();
        for (label, count) in &self.errors {
            out.push_str(&format!("  error[{label}] = {count}\n"));
        }
        out
    }
}

struct ConnOutcome {
    latencies_us: Vec<f64>,
    ok: usize,
    cached: usize,
    errors: BTreeMap<String, usize>,
}

fn error_label(e: &ServeError) -> String {
    match e {
        ServeError::Remote { code, .. } => code.as_str().to_string(),
        ServeError::Transport(_) => "transport".to_string(),
    }
}

fn run_connection(addr: &str, cfg: &LoadgenConfig) -> Result<ConnOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut outcome = ConnOutcome {
        latencies_us: Vec::with_capacity(cfg.requests),
        ok: 0,
        cached: 0,
        errors: BTreeMap::new(),
    };
    let deadline = if cfg.deadline_ms > 0 {
        Some(cfg.deadline_ms)
    } else {
        None
    };
    for _ in 0..cfg.requests {
        let start = Instant::now();
        match client.map(&cfg.matrix, &cfg.topo, deadline, cfg.delay_ms) {
            Ok(reply) => {
                outcome
                    .latencies_us
                    .push(start.elapsed().as_secs_f64() * 1e6);
                outcome.ok += 1;
                if reply.cached {
                    outcome.cached += 1;
                }
            }
            Err(e) => {
                *outcome.errors.entry(error_label(&e)).or_insert(0) += 1;
                // A transport error means the connection is unusable.
                if matches!(e, ServeError::Transport(_)) {
                    break;
                }
            }
        }
    }
    Ok(outcome)
}

/// Run the campaign against a live server at `addr`.
pub fn run_loadgen(addr: &str, cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.connections == 0 || cfg.requests == 0 {
        return Err("loadgen needs at least 1 connection and 1 request".to_string());
    }
    let start = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|_| scope.spawn(|| run_connection(addr, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "connection thread panicked".to_string())?
            })
            .collect::<Result<Vec<_>, String>>()
    })?;
    let wall = start.elapsed();

    let mut latencies = Vec::new();
    let mut ok = 0;
    let mut cached = 0;
    let mut errors: BTreeMap<String, usize> = BTreeMap::new();
    for outcome in outcomes {
        latencies.extend(outcome.latencies_us);
        ok += outcome.ok;
        cached += outcome.cached;
        for (label, count) in outcome.errors {
            *errors.entry(label).or_insert(0) += count;
        }
    }
    let failed: usize = errors.values().sum();
    Ok(LoadgenReport {
        sent: ok + failed,
        ok,
        cached,
        errors,
        p50_us: percentile(&latencies, 50.0),
        p90_us: percentile(&latencies, 90.0),
        p99_us: percentile(&latencies, 99.0),
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            ok as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall_ms: wall.as_secs_f64() * 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_the_benchmark_shape() {
        let report = LoadgenReport {
            sent: 100,
            ok: 98,
            cached: 90,
            errors: BTreeMap::from([("overloaded".to_string(), 2)]),
            p50_us: 120.0,
            p90_us: 300.0,
            p99_us: 900.0,
            throughput_rps: 4500.0,
            wall_ms: 22.0,
        };
        let json = report.to_json(4, 25);
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("loadgen"));
        assert_eq!(json.get("ok").and_then(Json::as_u64), Some(98));
        assert_eq!(
            json.get("errors")
                .and_then(|e| e.get("overloaded"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert!(report.render().contains("throughput"));
        assert_eq!(report.total_errors(), 2);
    }

    #[test]
    fn zero_sized_campaigns_are_rejected() {
        let mut cfg = LoadgenConfig::new();
        cfg.connections = 0;
        assert!(run_loadgen("127.0.0.1:1", &cfg).is_err());
    }
}
