//! End-to-end tests over a loopback TCP connection: a real server, real
//! client, real frames — exercising correctness, error paths,
//! backpressure, deadlines, and graceful shutdown.

use std::time::Duration;

use tlbmap_core::CommMatrix;
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{CounterId, ObsConfig, Recorder};
use tlbmap_serve::{Client, ErrorCode, ServeConfig, ServeError, Server, ServerHandle};
use tlbmap_sim::Topology;

fn ring_matrix(n: usize) -> CommMatrix {
    let mut m = CommMatrix::new(n);
    for t in 0..n {
        m.add(t, (t + 1) % n, 50 + t as u64);
    }
    m
}

fn start(cfg: ServeConfig) -> ServerHandle {
    let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
    Server::start("127.0.0.1:0", cfg, rec).expect("bind loopback server")
}

#[test]
fn served_mapping_matches_the_direct_library_call() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    let mut client = Client::connect(&addr).unwrap();
    let reply = client.map(&matrix, &topo, None, 0).unwrap();
    let direct = HierarchicalMapper::new().map(&matrix, &topo);
    assert_eq!(reply.mapping, direct.as_slice().to_vec());
    assert!(!reply.cached, "first request must be a cache miss");

    // The identical request again: served from cache, same answer.
    let again = client.map(&matrix, &topo, None, 0).unwrap();
    assert_eq!(again.mapping, reply.mapping);
    assert!(again.cached, "second identical request must hit the cache");

    // A uniformly scaled matrix shares the fingerprint, so it hits too.
    let mut scaled = CommMatrix::new(8);
    for (a, b, v) in matrix.pairs() {
        scaled.add(a, b, v * 3);
    }
    let scaled_reply = client.map(&scaled, &topo, None, 0).unwrap();
    assert!(scaled_reply.cached);
    assert_eq!(scaled_reply.mapping, reply.mapping);

    assert!(handle.recorder().counter(CounterId::ServeCacheHits) >= 2);
    assert_eq!(handle.recorder().counter(CounterId::ServeCacheMisses), 1);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn malformed_frame_gets_an_error_and_the_connection_survives() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // A well-formed frame wrapping a non-JSON payload.
    let payload = b"this is not json";
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected a bad_frame error, got {other:?}"),
    }

    // Valid JSON but the wrong protocol version: also bad_frame.
    let payload = br#"{"v":99,"req":"health"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected a bad_frame error, got {other:?}"),
    }

    // Valid frame, unknown request kind: bad_request.
    let payload = br#"{"v":1,"req":"warp"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadRequest)
        }
        other => panic!("expected a bad_request error, got {other:?}"),
    }

    // The same connection still serves real requests.
    client.health().unwrap();
    let reply = client
        .map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();
    assert_eq!(reply.mapping.len(), 8);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn queue_saturation_answers_overloaded() {
    // One worker, one queue slot: a slow request occupies the worker, a
    // second fills the queue, a third must bounce.
    let handle = start(
        ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_capacity(0),
    );
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    let slow = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 500).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let queued = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 0).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let mut c = Client::connect(&addr).unwrap();
    match c.map(&matrix, &topo, None, 0) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(handle.recorder().counter(CounterId::ServeOverloaded), 1);

    // The slow and queued requests still complete normally.
    assert_eq!(slow.join().unwrap().mapping.len(), 8);
    assert_eq!(queued.join().unwrap().mapping.len(), 8);

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn expired_deadline_answers_timeout() {
    let handle = start(ServeConfig::new().with_workers(1).with_cache_capacity(0));
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    // Occupy the single worker for 300 ms.
    let slow = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 300).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // This request can only be reached after ~300 ms but allows 50 ms.
    let mut c = Client::connect(&addr).unwrap();
    match c.map(&matrix, &topo, Some(50), 0) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert_eq!(handle.recorder().counter(CounterId::ServeTimeouts), 1);
    slow.join().unwrap();

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let handle = start(ServeConfig::new().with_workers(1));
    let addr = handle.addr().to_string();
    let topo = Topology::harpertown();

    // An in-flight request that takes ~300 ms.
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&ring_matrix(8), &topo, None, 300)
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // Shut down from a second connection while the first is in flight.
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();

    // New work is refused...
    match c.map(&ring_matrix(8), &topo, None, 0) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::ShuttingDown)
        }
        other => panic!("expected shutting_down, got {other:?}"),
    }

    // ...but the in-flight request still completes with a real answer.
    let reply = in_flight
        .join()
        .unwrap()
        .expect("in-flight request drained");
    assert_eq!(reply.mapping.len(), 8);

    // And the whole server winds down.
    handle.join();
}

#[test]
fn loadgen_completes_cleanly_below_the_queue_bound() {
    let handle = start(ServeConfig::new().with_workers(4).with_queue_capacity(64));
    let addr = handle.addr().to_string();

    let mut cfg = tlbmap_serve::LoadgenConfig::new();
    cfg.connections = 4;
    cfg.requests = 25;
    cfg.matrix = ring_matrix(8);
    let report = tlbmap_serve::run_loadgen(&addr, &cfg).unwrap();

    assert_eq!(report.sent, 100);
    assert_eq!(report.ok, 100);
    assert_eq!(report.total_errors(), 0, "errors: {:?}", report.errors);
    assert!(report.cached >= 90, "identical requests should mostly hit");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    assert!(report.throughput_rps > 0.0);

    let rec = handle.recorder();
    assert!(rec.counter(CounterId::ServeCacheHits) > 0);
    assert_eq!(rec.counter(CounterId::ServeRequests), 100);

    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("requests").and_then(tlbmap_obs::Json::as_u64),
        Some(101),
        "stats counts the stats request itself"
    );
    c.shutdown().unwrap();
    handle.join();
}
