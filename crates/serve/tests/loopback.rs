//! End-to-end tests over a loopback TCP connection: a real server, real
//! client, real frames — exercising correctness, error paths,
//! backpressure, deadlines, and graceful shutdown.

use std::time::Duration;

use tlbmap_core::CommMatrix;
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{CounterId, Json, ObsConfig, Recorder};
use tlbmap_serve::{AdminKind, Client, ErrorCode, ServeConfig, ServeError, Server, ServerHandle};
use tlbmap_sim::Topology;

fn ring_matrix(n: usize) -> CommMatrix {
    let mut m = CommMatrix::new(n);
    for t in 0..n {
        m.add(t, (t + 1) % n, 50 + t as u64);
    }
    m
}

fn start(cfg: ServeConfig) -> ServerHandle {
    let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
    Server::start("127.0.0.1:0", cfg, rec).expect("bind loopback server")
}

#[test]
fn served_mapping_matches_the_direct_library_call() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    let mut client = Client::connect(&addr).unwrap();
    let reply = client.map(&matrix, &topo, None, 0).unwrap();
    let direct = HierarchicalMapper::new().map(&matrix, &topo);
    assert_eq!(reply.mapping, direct.as_slice().to_vec());
    assert!(!reply.cached, "first request must be a cache miss");

    // The identical request again: served from cache, same answer.
    let again = client.map(&matrix, &topo, None, 0).unwrap();
    assert_eq!(again.mapping, reply.mapping);
    assert!(again.cached, "second identical request must hit the cache");

    // A uniformly scaled matrix shares the fingerprint, so it hits too.
    let mut scaled = CommMatrix::new(8);
    for (a, b, v) in matrix.pairs() {
        scaled.add(a, b, v * 3);
    }
    let scaled_reply = client.map(&scaled, &topo, None, 0).unwrap();
    assert!(scaled_reply.cached);
    assert_eq!(scaled_reply.mapping, reply.mapping);

    assert!(handle.recorder().counter(CounterId::ServeCacheHits) >= 2);
    assert_eq!(handle.recorder().counter(CounterId::ServeCacheMisses), 1);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn malformed_frame_gets_an_error_and_the_connection_survives() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // A well-formed frame wrapping a non-JSON payload.
    let payload = b"this is not json";
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected a bad_frame error, got {other:?}"),
    }

    // Valid JSON but the wrong protocol version: also bad_frame.
    let payload = br#"{"v":99,"req":"health"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected a bad_frame error, got {other:?}"),
    }

    // Valid frame, unknown request kind: bad_request.
    let payload = br#"{"v":1,"req":"warp"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadRequest)
        }
        other => panic!("expected a bad_request error, got {other:?}"),
    }

    // The same connection still serves real requests.
    client.health().unwrap();
    let reply = client
        .map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();
    assert_eq!(reply.mapping.len(), 8);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn queue_saturation_answers_overloaded() {
    // One worker, one queue slot: a slow request occupies the worker, a
    // second fills the queue, a third must bounce.
    let handle = start(
        ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_capacity(0),
    );
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    let slow = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 500).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let queued = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 0).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let mut c = Client::connect(&addr).unwrap();
    match c.map(&matrix, &topo, None, 0) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(handle.recorder().counter(CounterId::ServeOverloaded), 1);

    // The slow and queued requests still complete normally.
    assert_eq!(slow.join().unwrap().mapping.len(), 8);
    assert_eq!(queued.join().unwrap().mapping.len(), 8);

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn expired_deadline_answers_timeout() {
    let handle = start(ServeConfig::new().with_workers(1).with_cache_capacity(0));
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    // Occupy the single worker for 300 ms.
    let slow = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 300).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // This request can only be reached after ~300 ms but allows 50 ms.
    let mut c = Client::connect(&addr).unwrap();
    match c.map(&matrix, &topo, Some(50), 0) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert_eq!(handle.recorder().counter(CounterId::ServeTimeouts), 1);
    slow.join().unwrap();

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let handle = start(ServeConfig::new().with_workers(1));
    let addr = handle.addr().to_string();
    let topo = Topology::harpertown();

    // An in-flight request that takes ~300 ms.
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&ring_matrix(8), &topo, None, 300)
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // Shut down from a second connection while the first is in flight.
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();

    // New work is refused...
    match c.map(&ring_matrix(8), &topo, None, 0) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::ShuttingDown)
        }
        other => panic!("expected shutting_down, got {other:?}"),
    }

    // ...but the in-flight request still completes with a real answer.
    let reply = in_flight
        .join()
        .unwrap()
        .expect("in-flight request drained");
    assert_eq!(reply.mapping.len(), 8);

    // And the whole server winds down.
    handle.join();
}

#[test]
fn admin_frames_answer_over_loopback() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    // health: alive, not draining.
    let health = c.admin(AdminKind::Health).unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("shutting_down").and_then(Json::as_bool),
        Some(false)
    );

    // stats: the flat document, with the map traffic counted and a
    // non-empty latency window.
    c.map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();
    let stats = c.admin(AdminKind::Stats).unwrap();
    assert_eq!(stats.get("map_requests").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("queue_capacity").and_then(Json::as_u64), Some(64));
    assert!(stats.get("window_p50_us").and_then(Json::as_u64).is_some());
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert!(stats.get("utilization").and_then(Json::as_f64).is_some());

    // trace: empty — slow logging is off by default.
    let trace = c.admin(AdminKind::Trace).unwrap();
    assert_eq!(trace.as_array().map(<[Json]>::len), Some(0));

    // flight: the recorder has no flight window configured, so the
    // document is null (disabled), not an empty object.
    let flight = c.admin(AdminKind::Flight).unwrap();
    assert_eq!(flight, Json::Null);

    // Unknown admin kind over the real wire: bad_request, with the
    // connection intact afterwards.
    let payload = br#"{"v":1,"req":"admin","kind":"flamegraph"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client_send_expect_bad_request(&mut c, &frame);
    c.health().unwrap();
    assert_eq!(handle.recorder().counter(CounterId::ServeBadRequests), 1);

    c.shutdown().unwrap();
    handle.join();
}

fn client_send_expect_bad_request(c: &mut Client, frame: &[u8]) {
    c.send_raw(frame).unwrap();
    match c.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("flamegraph"), "{message}");
        }
        other => panic!("expected a bad_request error, got {other:?}"),
    }
}

/// A `Write` sink backed by shared memory, standing in for the slow-log
/// JSONL file.
#[derive(Clone)]
struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_requests_land_in_the_trace_ring_and_the_jsonl_sink() {
    let sink = SharedSink(std::sync::Arc::new(std::sync::Mutex::new(Vec::new())));
    let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
    // Threshold 1 µs: every request qualifies as slow.
    let handle = Server::start_with_slow_log(
        "127.0.0.1:0",
        ServeConfig::new().with_slow_threshold_us(1),
        rec,
        Some(Box::new(sink.clone())),
    )
    .expect("bind loopback server");
    let addr = handle.addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    c.map(&ring_matrix(8), &Topology::harpertown(), None, 2)
        .unwrap();
    let trace = c.admin(AdminKind::Trace).unwrap();
    let entries = trace.as_array().expect("trace is an array");
    assert!(!entries.is_empty(), "the map request must be in the ring");
    let entry = &entries[0];
    assert_eq!(entry.get("kind").and_then(Json::as_str), Some("map"));
    assert_eq!(entry.get("outcome").and_then(Json::as_str), Some("ok"));
    assert!(entry.get("req_id").and_then(Json::as_u64).unwrap() > 0);
    assert!(entry.get("total_us").and_then(Json::as_u64).unwrap() >= 1);
    assert!(handle.recorder().counter(CounterId::ServeSlowRequests) >= 1);

    // The JSONL sink got one parseable object per line.
    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let first = text.lines().next().expect("at least one slow-log line");
    let parsed = Json::parse(first).expect("slow-log line is valid JSON");
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("map"));

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn http_get_on_the_service_port_serves_the_exposition() {
    use std::io::{Read as _, Write as _};

    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();

    // Prime a counter so the exposition has something non-zero.
    let mut c = Client::connect(&addr).unwrap();
    c.map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET / HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("tlbmap_map_requests 1"), "{body}");
    assert!(body.contains("tlbmap_uptime_ms "), "{body}");
    // Empty-window quantiles are omitted, never zero; after one map the
    // latency window is non-empty, so p50 must be present.
    assert!(body.contains("tlbmap_window_p50_us "), "{body}");

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn http_get_is_refused_when_exposition_is_disabled() {
    use std::io::{Read as _, Write as _};

    let handle = start(ServeConfig::new().with_http_stats(false));
    let addr = handle.addr().to_string();
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    // The server closes without answering; depending on timing the close
    // lands as a clean EOF or a reset (unread bytes), but never as data.
    let mut response = Vec::new();
    let _ = raw.read_to_end(&mut response);
    assert!(response.is_empty(), "disabled exposition must just close");

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn admin_flight_serves_the_recorder_document() {
    // A server whose recorder has the flight recorder on answers `admin
    // flight` with the structured document (even before any simulated
    // cycles have closed a window).
    let rec = Recorder::new(
        ObsConfig::new(0)
            .with_ring_capacity(64)
            .with_flight_window(Some(1_000))
            .with_flight_capacity(8),
    );
    let handle =
        Server::start("127.0.0.1:0", ServeConfig::new(), rec).expect("bind loopback server");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let flight = c.admin(AdminKind::Flight).unwrap();
    assert_ne!(flight, Json::Null, "flight recorder is enabled");
    assert_eq!(
        flight.get("window_cycles").and_then(Json::as_u64),
        Some(1_000)
    );
    assert_eq!(flight.get("capacity").and_then(Json::as_u64), Some(8));
    assert_eq!(flight.get("windows_closed").and_then(Json::as_u64), Some(0));
    assert_eq!(flight.get("phase").and_then(Json::as_u64), Some(0));

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn live_telemetry_agrees_with_a_thousand_request_loadgen() {
    // The acceptance bar: ≥1000 requests through loadgen with the admin
    // sampler on; the server's own live counters must agree with the
    // client-observed totals, and the windowed quantiles must be present.
    let handle = start(ServeConfig::new().with_workers(4).with_queue_capacity(64));
    let addr = handle.addr().to_string();

    let mut cfg = tlbmap_serve::LoadgenConfig::new().with_sample_period_ms(20);
    cfg.connections = 8;
    cfg.requests = 125;
    cfg.matrix = ring_matrix(8);
    let report = tlbmap_serve::run_loadgen(&addr, &cfg).unwrap();

    assert_eq!(report.sent, 1000);
    assert_eq!(report.ok, 1000);
    assert_eq!(report.total_errors(), 0, "errors: {:?}", report.errors);

    // Client-side timeline accounts for every request.
    let timeline_sent: u64 = report.timeline.iter().map(|s| s.sent).sum();
    assert_eq!(timeline_sent, 1000);

    // Server-side delta agrees with the client's count.
    assert_eq!(report.map_requests_delta(), Some(1000));
    let after = report.server_after.as_ref().expect("after scrape");
    assert_eq!(after.get("map_requests").and_then(Json::as_u64), Some(1000));
    let hits = after.get("cache_hits").and_then(Json::as_u64).unwrap();
    let misses = after.get("cache_misses").and_then(Json::as_u64).unwrap();
    assert_eq!(hits + misses, 1000, "every map is a hit or a miss");

    // The rolling window saw the traffic: non-empty quantiles, and the
    // recorder's counters line up with the admin view.
    assert!(after.get("window_count").and_then(Json::as_u64).unwrap() > 0);
    assert!(after.get("window_p50_us").and_then(Json::as_u64).is_some());
    assert!(after.get("window_p99_us").and_then(Json::as_u64).is_some());
    assert_eq!(handle.recorder().counter(CounterId::ServeMapRequests), 1000);

    Client::connect(&addr).unwrap().shutdown().unwrap();
    handle.join();
}

#[test]
fn loadgen_completes_cleanly_below_the_queue_bound() {
    let handle = start(ServeConfig::new().with_workers(4).with_queue_capacity(64));
    let addr = handle.addr().to_string();

    let mut cfg = tlbmap_serve::LoadgenConfig::new();
    cfg.connections = 4;
    cfg.requests = 25;
    cfg.matrix = ring_matrix(8);
    let report = tlbmap_serve::run_loadgen(&addr, &cfg).unwrap();

    assert_eq!(report.sent, 100);
    assert_eq!(report.ok, 100);
    assert_eq!(report.total_errors(), 0, "errors: {:?}", report.errors);
    assert!(report.cached >= 90, "identical requests should mostly hit");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    assert!(report.throughput_rps > 0.0);

    let rec = handle.recorder();
    assert!(rec.counter(CounterId::ServeCacheHits) > 0);
    assert_eq!(rec.counter(CounterId::ServeRequests), 100);

    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("requests").and_then(tlbmap_obs::Json::as_u64),
        Some(101),
        "stats counts the stats request itself"
    );
    c.shutdown().unwrap();
    handle.join();
}
