//! End-to-end tests over a loopback TCP connection: a real server, real
//! client, real frames — exercising correctness, error paths,
//! backpressure, deadlines, and graceful shutdown.

use std::time::Duration;

use tlbmap_core::{CommMatrix, DecayedMatrix};
use tlbmap_mapping::HierarchicalMapper;
use tlbmap_obs::{CounterId, Event, Json, ObsConfig, Recorder};
use tlbmap_serve::{
    AdminKind, Client, DeltaDecision, ErrorCode, ServeConfig, ServeError, Server, ServerHandle,
};
use tlbmap_sim::Topology;

fn ring_matrix(n: usize) -> CommMatrix {
    let mut m = CommMatrix::new(n);
    for t in 0..n {
        m.add(t, (t + 1) % n, 50 + t as u64);
    }
    m
}

fn start(cfg: ServeConfig) -> ServerHandle {
    let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
    Server::start("127.0.0.1:0", cfg, rec).expect("bind loopback server")
}

#[test]
fn served_mapping_matches_the_direct_library_call() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    let mut client = Client::connect(&addr).unwrap();
    let reply = client.map(&matrix, &topo, None, 0).unwrap();
    let direct = HierarchicalMapper::new().map(&matrix, &topo);
    assert_eq!(reply.mapping, direct.as_slice().to_vec());
    assert!(!reply.cached, "first request must be a cache miss");

    // The identical request again: served from cache, same answer.
    let again = client.map(&matrix, &topo, None, 0).unwrap();
    assert_eq!(again.mapping, reply.mapping);
    assert!(again.cached, "second identical request must hit the cache");

    // A uniformly scaled matrix shares the fingerprint, so it hits too.
    let mut scaled = CommMatrix::new(8);
    for (a, b, v) in matrix.pairs() {
        scaled.add(a, b, v * 3);
    }
    let scaled_reply = client.map(&scaled, &topo, None, 0).unwrap();
    assert!(scaled_reply.cached);
    assert_eq!(scaled_reply.mapping, reply.mapping);

    assert!(handle.recorder().counter(CounterId::ServeCacheHits) >= 2);
    assert_eq!(handle.recorder().counter(CounterId::ServeCacheMisses), 1);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn malformed_frame_gets_an_error_and_the_connection_survives() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // A well-formed frame wrapping a non-JSON payload.
    let payload = b"this is not json";
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected a bad_frame error, got {other:?}"),
    }

    // Valid JSON but the wrong protocol version: also bad_frame.
    let payload = br#"{"v":99,"req":"health"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected a bad_frame error, got {other:?}"),
    }

    // Valid frame, unknown request kind: bad_request.
    let payload = br#"{"v":1,"req":"warp"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client.send_raw(&frame).unwrap();
    match client.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadRequest)
        }
        other => panic!("expected a bad_request error, got {other:?}"),
    }

    // The same connection still serves real requests.
    client.health().unwrap();
    let reply = client
        .map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();
    assert_eq!(reply.mapping.len(), 8);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn queue_saturation_answers_overloaded() {
    // One worker, one queue slot: a slow request occupies the worker, a
    // second fills the queue, a third must bounce.
    let handle = start(
        ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_capacity(0),
    );
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    let slow = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 500).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let queued = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 0).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let mut c = Client::connect(&addr).unwrap();
    match c.map(&matrix, &topo, None, 0) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(handle.recorder().counter(CounterId::ServeOverloaded), 1);

    // The slow and queued requests still complete normally.
    assert_eq!(slow.join().unwrap().mapping.len(), 8);
    assert_eq!(queued.join().unwrap().mapping.len(), 8);

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn expired_deadline_answers_timeout() {
    let handle = start(ServeConfig::new().with_workers(1).with_cache_capacity(0));
    let addr = handle.addr().to_string();
    let matrix = ring_matrix(8);
    let topo = Topology::harpertown();

    // Occupy the single worker for 300 ms.
    let slow = {
        let addr = addr.clone();
        let matrix = matrix.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&matrix, &topo, None, 300).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // This request can only be reached after ~300 ms but allows 50 ms.
    let mut c = Client::connect(&addr).unwrap();
    match c.map(&matrix, &topo, Some(50), 0) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert_eq!(handle.recorder().counter(CounterId::ServeTimeouts), 1);
    slow.join().unwrap();

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let handle = start(ServeConfig::new().with_workers(1));
    let addr = handle.addr().to_string();
    let topo = Topology::harpertown();

    // An in-flight request that takes ~300 ms.
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.map(&ring_matrix(8), &topo, None, 300)
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // Shut down from a second connection while the first is in flight.
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();

    // New work is refused...
    match c.map(&ring_matrix(8), &topo, None, 0) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::ShuttingDown)
        }
        other => panic!("expected shutting_down, got {other:?}"),
    }

    // ...but the in-flight request still completes with a real answer.
    let reply = in_flight
        .join()
        .unwrap()
        .expect("in-flight request drained");
    assert_eq!(reply.mapping.len(), 8);

    // And the whole server winds down.
    handle.join();
}

#[test]
fn admin_frames_answer_over_loopback() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    // health: alive, not draining.
    let health = c.admin(AdminKind::Health).unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("shutting_down").and_then(Json::as_bool),
        Some(false)
    );

    // stats: the flat document, with the map traffic counted and a
    // non-empty latency window.
    c.map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();
    let stats = c.admin(AdminKind::Stats).unwrap();
    assert_eq!(stats.get("map_requests").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("queue_capacity").and_then(Json::as_u64), Some(64));
    assert!(stats.get("window_p50_us").and_then(Json::as_u64).is_some());
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert!(stats.get("utilization").and_then(Json::as_f64).is_some());

    // trace: empty — slow logging is off by default.
    let trace = c.admin(AdminKind::Trace).unwrap();
    assert_eq!(trace.as_array().map(<[Json]>::len), Some(0));

    // flight: the recorder has no flight window configured, so the
    // document is null (disabled), not an empty object.
    let flight = c.admin(AdminKind::Flight).unwrap();
    assert_eq!(flight, Json::Null);

    // Unknown admin kind over the real wire: bad_request, with the
    // connection intact afterwards.
    let payload = br#"{"v":1,"req":"admin","kind":"flamegraph"}"#;
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    client_send_expect_bad_request(&mut c, &frame);
    c.health().unwrap();
    assert_eq!(handle.recorder().counter(CounterId::ServeBadRequests), 1);

    c.shutdown().unwrap();
    handle.join();
}

fn client_send_expect_bad_request(c: &mut Client, frame: &[u8]) {
    c.send_raw(frame).unwrap();
    match c.read_response().unwrap() {
        tlbmap_serve::Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("flamegraph"), "{message}");
        }
        other => panic!("expected a bad_request error, got {other:?}"),
    }
}

/// A `Write` sink backed by shared memory, standing in for the slow-log
/// JSONL file.
#[derive(Clone)]
struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_requests_land_in_the_trace_ring_and_the_jsonl_sink() {
    let sink = SharedSink(std::sync::Arc::new(std::sync::Mutex::new(Vec::new())));
    let rec = Recorder::new(ObsConfig::new(0).with_ring_capacity(64));
    // Threshold 1 µs: every request qualifies as slow.
    let handle = Server::start_with_slow_log(
        "127.0.0.1:0",
        ServeConfig::new().with_slow_threshold_us(1),
        rec,
        Some(Box::new(sink.clone())),
    )
    .expect("bind loopback server");
    let addr = handle.addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    c.map(&ring_matrix(8), &Topology::harpertown(), None, 2)
        .unwrap();
    let trace = c.admin(AdminKind::Trace).unwrap();
    let entries = trace.as_array().expect("trace is an array");
    assert!(!entries.is_empty(), "the map request must be in the ring");
    let entry = &entries[0];
    assert_eq!(entry.get("kind").and_then(Json::as_str), Some("map"));
    assert_eq!(entry.get("outcome").and_then(Json::as_str), Some("ok"));
    assert!(entry.get("req_id").and_then(Json::as_u64).unwrap() > 0);
    assert!(entry.get("total_us").and_then(Json::as_u64).unwrap() >= 1);
    assert!(handle.recorder().counter(CounterId::ServeSlowRequests) >= 1);

    // The JSONL sink got one parseable object per line.
    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let first = text.lines().next().expect("at least one slow-log line");
    let parsed = Json::parse(first).expect("slow-log line is valid JSON");
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("map"));

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn http_get_on_the_service_port_serves_the_exposition() {
    use std::io::{Read as _, Write as _};

    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();

    // Prime a counter so the exposition has something non-zero.
    let mut c = Client::connect(&addr).unwrap();
    c.map(&ring_matrix(8), &Topology::harpertown(), None, 0)
        .unwrap();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET / HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("tlbmap_map_requests 1"), "{body}");
    assert!(body.contains("tlbmap_uptime_ms "), "{body}");
    // Empty-window quantiles are omitted, never zero; after one map the
    // latency window is non-empty, so p50 must be present.
    assert!(body.contains("tlbmap_window_p50_us "), "{body}");

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn http_get_is_refused_when_exposition_is_disabled() {
    use std::io::{Read as _, Write as _};

    let handle = start(ServeConfig::new().with_http_stats(false));
    let addr = handle.addr().to_string();
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
    // The server closes without answering; depending on timing the close
    // lands as a clean EOF or a reset (unread bytes), but never as data.
    let mut response = Vec::new();
    let _ = raw.read_to_end(&mut response);
    assert!(response.is_empty(), "disabled exposition must just close");

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn admin_flight_serves_the_recorder_document() {
    // A server whose recorder has the flight recorder on answers `admin
    // flight` with the structured document (even before any simulated
    // cycles have closed a window).
    let rec = Recorder::new(
        ObsConfig::new(0)
            .with_ring_capacity(64)
            .with_flight_window(Some(1_000))
            .with_flight_capacity(8),
    );
    let handle =
        Server::start("127.0.0.1:0", ServeConfig::new(), rec).expect("bind loopback server");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let flight = c.admin(AdminKind::Flight).unwrap();
    assert_ne!(flight, Json::Null, "flight recorder is enabled");
    assert_eq!(
        flight.get("window_cycles").and_then(Json::as_u64),
        Some(1_000)
    );
    assert_eq!(flight.get("capacity").and_then(Json::as_u64), Some(8));
    assert_eq!(flight.get("windows_closed").and_then(Json::as_u64), Some(0));
    assert_eq!(flight.get("phase").and_then(Json::as_u64), Some(0));

    c.shutdown().unwrap();
    handle.join();
}

#[test]
fn live_telemetry_agrees_with_a_thousand_request_loadgen() {
    // The acceptance bar: ≥1000 requests through loadgen with the admin
    // sampler on; the server's own live counters must agree with the
    // client-observed totals, and the windowed quantiles must be present.
    let handle = start(ServeConfig::new().with_workers(4).with_queue_capacity(64));
    let addr = handle.addr().to_string();

    let mut cfg = tlbmap_serve::LoadgenConfig::new().with_sample_period_ms(20);
    cfg.connections = 8;
    cfg.requests = 125;
    cfg.matrix = ring_matrix(8);
    let report = tlbmap_serve::run_loadgen(&addr, &cfg).unwrap();

    assert_eq!(report.sent, 1000);
    assert_eq!(report.ok, 1000);
    assert_eq!(report.total_errors(), 0, "errors: {:?}", report.errors);

    // Client-side timeline accounts for every request.
    let timeline_sent: u64 = report.timeline.iter().map(|s| s.sent).sum();
    assert_eq!(timeline_sent, 1000);

    // Server-side delta agrees with the client's count.
    assert_eq!(report.map_requests_delta(), Some(1000));
    let after = report.server_after.as_ref().expect("after scrape");
    assert_eq!(after.get("map_requests").and_then(Json::as_u64), Some(1000));
    let hits = after.get("cache_hits").and_then(Json::as_u64).unwrap();
    let misses = after.get("cache_misses").and_then(Json::as_u64).unwrap();
    assert_eq!(hits + misses, 1000, "every map is a hit or a miss");

    // The rolling window saw the traffic: non-empty quantiles, and the
    // recorder's counters line up with the admin view.
    assert!(after.get("window_count").and_then(Json::as_u64).unwrap() > 0);
    assert!(after.get("window_p50_us").and_then(Json::as_u64).is_some());
    assert!(after.get("window_p99_us").and_then(Json::as_u64).is_some());
    assert_eq!(handle.recorder().counter(CounterId::ServeMapRequests), 1000);

    Client::connect(&addr).unwrap().shutdown().unwrap();
    handle.join();
}

#[test]
fn loadgen_completes_cleanly_below_the_queue_bound() {
    let handle = start(ServeConfig::new().with_workers(4).with_queue_capacity(64));
    let addr = handle.addr().to_string();

    let mut cfg = tlbmap_serve::LoadgenConfig::new();
    cfg.connections = 4;
    cfg.requests = 25;
    cfg.matrix = ring_matrix(8);
    let report = tlbmap_serve::run_loadgen(&addr, &cfg).unwrap();

    assert_eq!(report.sent, 100);
    assert_eq!(report.ok, 100);
    assert_eq!(report.total_errors(), 0, "errors: {:?}", report.errors);
    assert!(report.cached >= 90, "identical requests should mostly hit");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    assert!(report.throughput_rps > 0.0);

    let rec = handle.recorder();
    assert!(rec.counter(CounterId::ServeCacheHits) > 0);
    assert_eq!(rec.counter(CounterId::ServeRequests), 100);

    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("requests").and_then(tlbmap_obs::Json::as_u64),
        Some(101),
        "stats counts the stats request itself"
    );
    c.shutdown().unwrap();
    handle.join();
}

/// A communication pattern whose hierarchy optimum is unique at every
/// level: dominant pairs (0,1)/(2,3)/(4,5)/(6,7) carry the given weights,
/// and the 500-weight cross ties (0,2) and (4,6) break the upper-level
/// ties. Permuting `a..d` changes the matrix *direction* (so cosine drift
/// fires) without moving the optimal pairing structure.
fn pattern(a: u64, b: u64, c: u64, d: u64) -> CommMatrix {
    let mut m = CommMatrix::new(8);
    m.add(0, 1, a);
    m.add(2, 3, b);
    m.add(4, 5, c);
    m.add(6, 7, d);
    m.add(0, 2, 500);
    m.add(4, 6, 500);
    m
}

fn remap_events(handle: &ServerHandle) -> Vec<Event> {
    handle
        .recorder()
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::Remap { .. }))
        .collect()
}

#[test]
fn streaming_session_tracks_a_phase_shift_end_to_end() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let topo = Topology::harpertown();
    let mut client = Client::connect(&addr).unwrap();

    // Decay shift 1, threshold 1.0 (remap on any measurable drift), no
    // cooldown: the control loop's decisions depend only on direction.
    let (session, initial) = client
        .open_session(&topo, Some(1), Some(1_000_000), Some(0))
        .unwrap();
    assert_eq!(initial.len(), 8, "the empty window still yields a mapping");

    // Mirror the server's decayed window client-side to check the final
    // mapping against a one-shot `map` on the same window.
    let mut mirror = DecayedMatrix::new(8, 1);
    let phase_a = pattern(4000, 3000, 2000, 1000);
    let phase_b = pattern(1000, 2000, 3000, 4000);

    // Four stationary deltas: the first installs the first real mapping,
    // the repeats leave the window exactly proportional to the reference
    // (all weights are even, so the decay is exact) and must be stable.
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        mirror.ingest(&phase_a);
        outcomes.push(client.delta(session, &phase_a).unwrap());
    }
    // The phase shift: same pair structure, permuted magnitudes.
    mirror.ingest(&phase_b);
    outcomes.push(client.delta(session, &phase_b).unwrap());

    let decisions: Vec<DeltaDecision> = outcomes.iter().map(|o| o.decision).collect();
    assert_eq!(
        decisions,
        vec![
            DeltaDecision::Remap,
            DeltaDecision::Stable,
            DeltaDecision::Stable,
            DeltaDecision::Stable,
            DeltaDecision::Remap,
        ],
        "outcomes: {outcomes:?}"
    );
    assert_eq!(outcomes[1].similarity_ppm, 1_000_000, "exactly parallel");
    assert!(outcomes[4].similarity_ppm < 1_000_000, "the shift drifted");

    // The decayed window tracked the new phase, and the session's final
    // mapping is exactly what a one-shot `map` on that window returns.
    let final_mapping = outcomes[4].mapping.clone().expect("remap carries mapping");
    let one_shot = client.map(mirror.window(), &topo, None, 0).unwrap();
    assert_eq!(final_mapping, one_shot.mapping);

    // Exactly one remap event beyond the first-delta install, and the
    // warm start served at least one of them.
    let remaps = remap_events(&handle);
    assert_eq!(remaps.len(), 2, "install + one phase-shift remap");
    match remaps[1] {
        Event::Remap {
            session: s,
            seq,
            warm,
            ..
        } => {
            assert_eq!(s, session);
            assert_eq!(seq, 5);
            assert!(warm, "the replayed pair structure must certify warm");
        }
        _ => unreachable!(),
    }
    let rec = handle.recorder();
    assert_eq!(rec.counter(CounterId::RemapsTriggered), 2);
    assert_eq!(rec.counter(CounterId::RemapsSuppressed), 3);
    assert!(rec.counter(CounterId::WarmStartHits) >= 1);

    assert_eq!(client.close_session(session).unwrap(), (5, 2));
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn stationary_stream_never_remaps_after_the_install() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Server-default knobs (threshold 0.8, cooldown 2, shift 2): the
    // weights are all divisible by four, so repeats stay exactly parallel.
    let (session, _) = client
        .open_session(&Topology::harpertown(), None, None, None)
        .unwrap();
    let matrix = pattern(4000, 3000, 2000, 1000);
    for i in 0..8 {
        let outcome = client.delta(session, &matrix).unwrap();
        let expected = if i == 0 {
            DeltaDecision::Remap
        } else {
            DeltaDecision::Stable
        };
        assert_eq!(outcome.decision, expected, "delta {i}: {outcome:?}");
    }
    assert_eq!(client.close_session(session).unwrap(), (8, 1));

    assert_eq!(remap_events(&handle).len(), 1, "only the install remaps");
    let rec = handle.recorder();
    assert_eq!(rec.counter(CounterId::RemapsTriggered), 1);
    assert_eq!(rec.counter(CounterId::RemapsSuppressed), 7);
    assert_eq!(rec.counter(CounterId::SessionDeltas), 8);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn session_errors_answer_stable_bad_requests() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let delta = pattern(100, 100, 100, 100);

    // Unknown session, nothing open: the message says so.
    match client.delta(77, &delta) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert_eq!(message, "unknown session `77` (no open sessions)");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // Unknown session with peers open: the open IDs are listed, mirroring
    // the accepted-kinds list of an unknown admin kind.
    let (session, _) = client
        .open_session(&Topology::harpertown(), None, None, None)
        .unwrap();
    match client.delta(77, &delta) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert_eq!(
                message,
                format!("unknown session `77` (open sessions: {session})")
            );
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // Wrong delta size for an open session.
    match client.delta(session, &CommMatrix::new(4)) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("4 threads"), "{message}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // A delta for a just-closed session is an unknown session again.
    client.close_session(session).unwrap();
    match client.delta(session, &delta) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("unknown session"), "{message}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // The connection survives all of it.
    client.health().unwrap();
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn sessions_admin_kind_reports_totals_and_rows() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let (first, _) = client
        .open_session(&Topology::harpertown(), None, None, None)
        .unwrap();
    let (second, _) = client
        .open_session(&Topology::harpertown(), None, None, None)
        .unwrap();
    client
        .delta(first, &pattern(4000, 3000, 2000, 1000))
        .unwrap();

    let doc = client.admin(AdminKind::Sessions).unwrap();
    assert_eq!(doc.get("open_sessions").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("max_sessions").and_then(Json::as_u64), Some(32));
    assert_eq!(doc.get("sessions_opened").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("session_deltas").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("remaps_triggered").and_then(Json::as_u64), Some(1));
    let rows = doc
        .get("sessions")
        .and_then(Json::as_array)
        .expect("sessions rows");
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get("id").and_then(Json::as_u64), Some(first));
    assert_eq!(rows[0].get("deltas").and_then(Json::as_u64), Some(1));
    assert_eq!(rows[0].get("remaps").and_then(Json::as_u64), Some(1));
    assert_eq!(rows[1].get("id").and_then(Json::as_u64), Some(second));
    assert_eq!(rows[1].get("deltas").and_then(Json::as_u64), Some(0));

    // The session counters also surface in the flat stats document (which
    // is what `tlbmap top` and the text exposition scrape).
    let stats = client.admin(AdminKind::Stats).unwrap();
    assert_eq!(stats.get("open_sessions").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("sessions_opened").and_then(Json::as_u64), Some(2));

    client.close_session(first).unwrap();
    client.close_session(second).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn draining_server_refuses_session_work_but_honours_close() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let topo = Topology::harpertown();

    let (session, _) = client.open_session(&topo, None, None, None).unwrap();
    client.shutdown().unwrap();

    // New streaming work is refused during the drain...
    match client.open_session(&topo, None, None, None) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    match client.delta(session, &pattern(100, 100, 100, 100)) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }

    // ...but closing an open session is part of draining cleanly.
    assert_eq!(client.close_session(session).unwrap(), (0, 0));
    handle.join();
}

/// Current thread count of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

#[test]
fn a_thousand_idle_connections_cost_no_threads_and_no_latency() {
    // Both ends of every connection live in this process, so the default
    // 1024-fd soft limit would cap the test well short of 1000 conns.
    tlbmap_serve::sys::raise_nofile_limit(8192).expect("raise RLIMIT_NOFILE");
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();

    // Thread-count baseline once the server (event loop + workers) is up.
    let baseline_threads = thread_count();

    // Park 1000 idle keep-alive connections on the server. Under the old
    // thread-per-connection server this was 1000 OS threads; the event
    // loop must absorb them with zero new threads.
    let idle: Vec<std::net::TcpStream> = (0..1000)
        .map(|i| {
            std::net::TcpStream::connect(&addr)
                .unwrap_or_else(|e| panic!("idle connection {i}: {e}"))
        })
        .collect();
    // Other loopback tests run concurrently in this process and start or
    // join their own servers, so the global count jitters by a few — the
    // assertion is that 1000 connections did not add ~1000 threads.
    let after_connect = thread_count();
    assert!(
        after_connect <= baseline_threads + 32,
        "idle connections must not spawn threads ({baseline_threads} -> {after_connect})"
    );

    // The server sees them: the loop gauge counts all 1000.
    let mut admin = Client::connect(&addr).unwrap();
    let stats = admin.admin(AdminKind::Stats).unwrap();
    let conns_open = stats
        .get("loop")
        .and_then(|l| l.get("conns_open"))
        .and_then(Json::as_u64)
        .expect("loop.conns_open in admin stats");
    assert!(conns_open >= 1001, "gauge saw {conns_open} connections");

    // A full loadgen campaign completes with sane latency while the 1000
    // idle connections stay parked.
    let report =
        tlbmap_serve::run_loadgen(&addr, &tlbmap_serve::LoadgenConfig::new()).expect("loadgen");
    assert_eq!(report.total_errors(), 0, "errors: {:?}", report.errors);
    assert_eq!(report.ok, 100);
    assert!(
        report.p99_us < 200_000.0,
        "p99 {} us under 1000 idle connections",
        report.p99_us
    );
    // Loadgen's scoped threads have joined: still flat (same jitter
    // allowance for concurrent tests).
    let after_campaign = thread_count();
    assert!(
        after_campaign <= baseline_threads + 32,
        "thread count must stay flat after the campaign ({baseline_threads} -> {after_campaign})"
    );

    drop(idle);
    admin.shutdown().unwrap();
    handle.join();
}

#[test]
fn open_loop_curve_sweeps_points_against_a_live_server() {
    let handle = start(ServeConfig::new());
    let addr = handle.addr().to_string();

    let mut cfg = tlbmap_serve::CurveConfig::new();
    cfg.rps_points = vec![200, 800, 2000];
    cfg.duration_ms = 250;
    let report = tlbmap_serve::run_curve(&addr, &cfg).expect("curve");

    assert_eq!(report.points.len(), 3);
    for point in &report.points {
        assert!(point.sent > 0, "point {} sent nothing", point.offered_rps);
        assert_eq!(
            point.errors.values().sum::<usize>(),
            0,
            "point {} errors: {:?}",
            point.offered_rps,
            point.errors
        );
        assert_eq!(point.ok, point.sent);
        assert!(point.achieved_rps > 0.0);
        assert!(point.p99_us > 0.0);
    }
    // The schedule sizes each point: rps × duration.
    assert_eq!(report.points[0].sent, 50);
    assert_eq!(report.points[2].sent, 500);
    // The JSON document round-trips with the curve kind.
    let json = report.to_json();
    assert_eq!(
        json.get("kind").and_then(Json::as_str),
        Some("loadgen_curve")
    );
    assert_eq!(
        json.get("points").and_then(Json::as_array).map(|p| p.len()),
        Some(3)
    );

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join();
}
