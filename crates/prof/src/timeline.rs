//! Detection-accuracy timelines.
//!
//! The paper validates SM/HM detection by comparing final matrices to the
//! known application structure (Section VI-A). The timeline makes that
//! comparison *temporal*: every `--snapshot-every` window of a run yields
//! one entry scoring the detector's matrix against ground truth — both the
//! cumulative matrix (does detection converge?) and the windowed delta
//! matrix (what was detected *recently*, which shifts at phase changes).
//! Phase boundaries are flagged where consecutive windowed patterns
//! diverge (cosine similarity below a threshold), the same criterion
//! `tlbmap_core::detect_phase_changes` applies to windowed detectors.

use tlbmap_core::metrics::{cosine_similarity, normalized_mse, pearson_correlation};
use tlbmap_core::{detect_phase_changes, CommMatrix};
use tlbmap_obs::{Json, MatrixSnapshot};

/// Default windowed-similarity threshold below which a phase boundary is
/// flagged (matches the dynamic-remapping default in `tlbmap-core`).
pub const DEFAULT_PHASE_THRESHOLD: f64 = 0.75;

/// Accuracy scores of one matrix against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// Pearson correlation of the upper triangles.
    pub pearson: f64,
    /// Cosine similarity of the upper triangles.
    pub cosine: f64,
    /// Mean squared error between peak-normalized matrices.
    pub nmse: f64,
}

impl Scores {
    /// Score `m` against `truth`.
    pub fn of(m: &CommMatrix, truth: &CommMatrix) -> Scores {
        Scores {
            pearson: pearson_correlation(m, truth),
            cosine: cosine_similarity(m, truth),
            nmse: normalized_mse(m, truth),
        }
    }

    /// JSON export.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pearson", Json::F64(self.pearson)),
            ("cosine", Json::F64(self.cosine)),
            ("nmse", Json::F64(self.nmse)),
        ])
    }

    /// Rebuild from JSON.
    pub fn from_json(json: &Json) -> Result<Scores, String> {
        let field = |k: &str| {
            json.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scores: missing numeric `{k}`"))
        };
        Ok(Scores {
            pearson: field("pearson")?,
            cosine: field("cosine")?,
            nmse: field("nmse")?,
        })
    }
}

/// One snapshot window's accuracy scores.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Snapshot index (zero-based).
    pub index: u64,
    /// Cycle the snapshot was keyed to.
    pub cycle: u64,
    /// Barriers crossed when it was taken.
    pub barrier: u64,
    /// Scores of the cumulative detected matrix vs ground truth.
    pub cumulative: Scores,
    /// Scores of this window's delta matrix vs ground truth.
    pub windowed: Scores,
    /// Whether this window starts a new phase (windowed pattern diverged
    /// from the previous non-empty window).
    pub phase_boundary: bool,
}

/// The full accuracy timeline of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Windowed-similarity threshold used for phase flagging.
    pub phase_threshold: f64,
    /// One entry per snapshot, in cycle order.
    pub entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Indices of entries flagged as phase boundaries.
    pub fn phase_boundaries(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.phase_boundary)
            .map(|(i, _)| i)
            .collect()
    }

    /// JSON export (the metrics document's `timeline` section).
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("index", Json::U64(e.index)),
                    ("cycle", Json::U64(e.cycle)),
                    ("barrier", Json::U64(e.barrier)),
                    ("cumulative", e.cumulative.to_json()),
                    ("windowed", e.windowed.to_json()),
                    ("phase_boundary", Json::Bool(e.phase_boundary)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("phase_threshold", Json::F64(self.phase_threshold)),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Rebuild from a metrics document's `timeline` section.
    pub fn from_json(json: &Json) -> Result<Timeline, String> {
        let phase_threshold = json
            .get("phase_threshold")
            .and_then(Json::as_f64)
            .ok_or("timeline: missing numeric `phase_threshold`")?;
        let entries = json
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("timeline: missing `entries` array")?
            .iter()
            .map(|e| {
                let u = |k: &str| {
                    e.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("timeline entry: missing `{k}`"))
                };
                Ok(TimelineEntry {
                    index: u("index")?,
                    cycle: u("cycle")?,
                    barrier: u("barrier")?,
                    cumulative: Scores::from_json(
                        e.get("cumulative")
                            .ok_or("timeline entry: no `cumulative`")?,
                    )?,
                    windowed: Scores::from_json(
                        e.get("windowed").ok_or("timeline entry: no `windowed`")?,
                    )?,
                    phase_boundary: e
                        .get("phase_boundary")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Timeline {
            phase_threshold,
            entries,
        })
    }
}

/// Rebuild a snapshot's communication matrix.
fn snapshot_matrix(snap: &MatrixSnapshot) -> CommMatrix {
    CommMatrix::from_rows(snap.n, snap.cells.clone())
}

/// Compute the accuracy timeline of a run from its matrix snapshots and
/// the ground-truth matrix. Returns an empty timeline when there are no
/// snapshots or the matrix sizes disagree (e.g. truth from a different
/// machine configuration).
pub fn compute_timeline(
    snaps: &[MatrixSnapshot],
    truth: &CommMatrix,
    phase_threshold: f64,
) -> Timeline {
    let usable = snaps
        .iter()
        .all(|s| s.n == truth.num_threads() && s.cells.len() == s.n * s.n);
    if snaps.is_empty() || !usable {
        return Timeline {
            phase_threshold,
            entries: Vec::new(),
        };
    }

    // Windowed delta matrices: what was detected in each period alone.
    // Snapshot cells grow monotonically, so consecutive differences are
    // well-defined.
    let mut windows: Vec<CommMatrix> = Vec::with_capacity(snaps.len());
    for (i, snap) in snaps.iter().enumerate() {
        let cells: Vec<u64> = if i == 0 {
            snap.cells.clone()
        } else {
            snap.cells
                .iter()
                .zip(&snaps[i - 1].cells)
                .map(|(&cur, &prev)| cur.saturating_sub(prev))
                .collect()
        };
        windows.push(CommMatrix::from_rows(snap.n, cells));
    }

    let boundaries = detect_phase_changes(&windows, phase_threshold);
    let entries = snaps
        .iter()
        .enumerate()
        .map(|(i, snap)| TimelineEntry {
            index: snap.index,
            cycle: snap.cycle,
            barrier: snap.barrier,
            cumulative: Scores::of(&snapshot_matrix(snap), truth),
            windowed: Scores::of(&windows[i], truth),
            phase_boundary: boundaries.contains(&i),
        })
        .collect();
    Timeline {
        phase_threshold,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_matrix(n: usize, scale: u64) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            m.add(i, (i + 1) % n, 10 * scale);
        }
        m
    }

    fn snap_of(index: u64, cycle: u64, m: &CommMatrix) -> MatrixSnapshot {
        let n = m.num_threads();
        MatrixSnapshot {
            index,
            cycle,
            barrier: index,
            n,
            cells: (0..n * n).map(|k| m.get(k / n, k % n)).collect(),
        }
    }

    #[test]
    fn converging_run_scores_perfectly() {
        let truth = ring_matrix(4, 5);
        let snaps = vec![
            snap_of(0, 1000, &ring_matrix(4, 1)),
            snap_of(1, 2000, &ring_matrix(4, 2)),
            snap_of(2, 3000, &ring_matrix(4, 3)),
        ];
        let tl = compute_timeline(&snaps, &truth, DEFAULT_PHASE_THRESHOLD);
        assert_eq!(tl.entries.len(), 3);
        for e in &tl.entries {
            // Same shape at every scale: perfect cumulative and windowed
            // scores, no phase boundaries.
            assert!((e.cumulative.cosine - 1.0).abs() < 1e-12);
            assert!((e.windowed.cosine - 1.0).abs() < 1e-12);
            assert!(e.cumulative.nmse < 1e-12);
            assert!(!e.phase_boundary);
        }
        assert!(tl.phase_boundaries().is_empty());
    }

    #[test]
    fn phase_change_flags_windowed_divergence() {
        // Phase 1: ring. Phase 2: disjoint pairs — the windowed delta
        // flips pattern at snapshot 2 while the cumulative matrix blurs.
        let ring = ring_matrix(4, 1);
        let mut pairs = CommMatrix::new(4);
        pairs.add(0, 2, 10);
        pairs.add(1, 3, 10);
        let mut cumulative2 = ring.clone();
        cumulative2.merge(&ring);
        let mut cumulative3 = cumulative2.clone();
        cumulative3.merge(&pairs);
        let snaps = vec![
            snap_of(0, 1000, &ring),
            snap_of(1, 2000, &cumulative2),
            snap_of(2, 3000, &cumulative3),
        ];
        let tl = compute_timeline(&snaps, &ring_matrix(4, 3), 0.75);
        assert_eq!(tl.phase_boundaries(), vec![2]);
        assert!(tl.entries[2].phase_boundary);
        // The windowed score of the new phase is far from the ring truth.
        assert!(tl.entries[2].windowed.cosine < 0.5);
        assert!(tl.entries[1].windowed.cosine > 0.99);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let truth = ring_matrix(4, 2);
        let snaps = vec![
            snap_of(0, 500, &ring_matrix(4, 1)),
            snap_of(1, 1000, &ring_matrix(4, 2)),
        ];
        let tl = compute_timeline(&snaps, &truth, 0.6);
        let parsed = Timeline::from_json(&Json::parse(&tl.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, tl);
    }

    #[test]
    fn empty_or_mismatched_snapshots_yield_empty_timeline() {
        let truth = ring_matrix(4, 1);
        assert!(compute_timeline(&[], &truth, 0.75).entries.is_empty());
        let bad = snap_of(0, 1000, &ring_matrix(8, 1));
        assert!(compute_timeline(&[bad], &truth, 0.75).entries.is_empty());
    }

    #[test]
    fn empty_windows_do_not_flag_phases() {
        // Identical consecutive snapshots produce an all-zero delta; the
        // phase detector must skip it rather than flag a spurious change.
        let ring = ring_matrix(4, 1);
        let snaps = vec![
            snap_of(0, 1000, &ring),
            snap_of(1, 2000, &ring),
            snap_of(2, 3000, &ring),
        ];
        let tl = compute_timeline(&snaps, &ring_matrix(4, 2), 0.75);
        assert!(tl.phase_boundaries().is_empty());
        assert_eq!(tl.entries[1].windowed.cosine, 0.0, "empty delta window");
    }
}
