//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! `tlbmap bench` runs a seeded workload under full observation, times it
//! on the host clock, and writes one of these records. Committed records
//! form the benchmark trajectory: `tlbmap diff --fail-above <pct>
//! BENCH_old.json BENCH_new.json` gates a change on throughput.
//!
//! The schema separates deterministic fields (`workload`, `counters`,
//! `cycle_shares` — identical for identical seeds, safe to gate at 0%)
//! from wall-clock fields (`stats.*_per_sec`, `stats.wall_nanos` — noisy,
//! gate with slack).

use tlbmap_obs::Json;

/// One benchmark trajectory point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record name (conventionally the `BENCH_<name>.json` stem).
    pub name: String,
    /// Workload/application identifier.
    pub app: String,
    /// Problem scale the workload was generated at.
    pub scale: String,
    /// Workload seed.
    pub seed: u64,
    /// Trace events executed.
    pub events: u64,
    /// Memory accesses executed.
    pub accesses: u64,
    /// TLB misses observed.
    pub tlb_misses: u64,
    /// Simulated cycles of the run.
    pub total_cycles: u64,
    /// Host wall-clock time of the simulation, in nanoseconds.
    pub wall_nanos: u64,
    /// Trace events simulated per host second.
    pub events_per_sec: f64,
    /// TLB misses simulated per host second.
    pub misses_per_sec: f64,
    /// Per-component shares of charged simulated cycles, as
    /// `(collapsed-stack path, fraction in [0,1])`, in profile tree order.
    pub cycle_shares: Vec<(String, f64)>,
}

impl BenchRecord {
    /// JSON export. Field order is fixed — records diff cleanly.
    pub fn to_json(&self) -> Json {
        let shares = Json::Obj(
            self.cycle_shares
                .iter()
                .map(|(k, v)| (k.clone(), Json::F64(*v)))
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::U64(1)),
            ("kind", Json::Str("bench".into())),
            ("name", Json::Str(self.name.clone())),
            (
                "workload",
                Json::obj(vec![
                    ("app", Json::Str(self.app.clone())),
                    ("scale", Json::Str(self.scale.clone())),
                    ("seed", Json::U64(self.seed)),
                ]),
            ),
            (
                "counters",
                Json::obj(vec![
                    ("events", Json::U64(self.events)),
                    ("accesses", Json::U64(self.accesses)),
                    ("tlb_misses", Json::U64(self.tlb_misses)),
                    ("total_cycles", Json::U64(self.total_cycles)),
                ]),
            ),
            (
                "stats",
                Json::obj(vec![
                    ("wall_nanos", Json::U64(self.wall_nanos)),
                    ("events_per_sec", Json::F64(self.events_per_sec)),
                    ("misses_per_sec", Json::F64(self.misses_per_sec)),
                ]),
            ),
            ("cycle_shares", shares),
        ])
    }

    /// Rebuild from JSON (accepts only `kind: "bench"` documents).
    pub fn from_json(json: &Json) -> Result<BenchRecord, String> {
        if json.get("kind").and_then(Json::as_str) != Some("bench") {
            return Err("not a bench record (missing `kind\":\"bench\"`)".into());
        }
        let str_field = |obj: &Json, k: &str| -> Result<String, String> {
            obj.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench record: missing string `{k}`"))
        };
        let u64_field = |obj: &Json, k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bench record: missing integer `{k}`"))
        };
        let f64_field = |obj: &Json, k: &str| -> Result<f64, String> {
            obj.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("bench record: missing number `{k}`"))
        };
        let workload = json.get("workload").ok_or("bench record: no `workload`")?;
        let counters = json.get("counters").ok_or("bench record: no `counters`")?;
        let stats = json.get("stats").ok_or("bench record: no `stats`")?;
        let cycle_shares = match json.get("cycle_shares") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or_else(|| format!("bench record: non-numeric share `{k}`"))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("bench record: no `cycle_shares` object".into()),
        };
        Ok(BenchRecord {
            name: str_field(json, "name")?,
            app: str_field(workload, "app")?,
            scale: str_field(workload, "scale")?,
            seed: u64_field(workload, "seed")?,
            events: u64_field(counters, "events")?,
            accesses: u64_field(counters, "accesses")?,
            tlb_misses: u64_field(counters, "tlb_misses")?,
            total_cycles: u64_field(counters, "total_cycles")?,
            wall_nanos: u64_field(stats, "wall_nanos")?,
            events_per_sec: f64_field(stats, "events_per_sec")?,
            misses_per_sec: f64_field(stats, "misses_per_sec")?,
            cycle_shares,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            name: "ring".into(),
            app: "ring".into(),
            scale: "test".into(),
            seed: 1819,
            events: 1000,
            accesses: 800,
            tlb_misses: 32,
            total_cycles: 123_456,
            wall_nanos: 2_000_000,
            events_per_sec: 500_000.0,
            misses_per_sec: 16_000.0,
            cycle_shares: vec![
                ("engine;compute".into(), 0.25),
                ("engine;access;tlb".into(), 0.5),
                ("engine;access;cache".into(), 0.25),
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record();
        let parsed = BenchRecord::from_json(&Json::parse(&r.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn rejects_non_bench_documents() {
        let metrics = Json::parse(r#"{"schema":2,"counters":{}}"#).unwrap();
        assert!(BenchRecord::from_json(&metrics).is_err());
    }

    #[test]
    fn diffing_bench_records_gates_throughput() {
        use crate::diff::diff_docs;
        let a = record();
        let mut b = record();
        b.events_per_sec = 400_000.0; // 20% slower
        let r = diff_docs(&a.to_json(), &b.to_json(), Some(5.0));
        assert!(!r.passed());
        assert!(r
            .regressions()
            .iter()
            .any(|e| e.key == "stats.events_per_sec"));
        // Same record: passes even a 0% gate (wall fields identical here).
        assert!(diff_docs(&a.to_json(), &a.to_json(), Some(0.0)).passed());
    }
}
