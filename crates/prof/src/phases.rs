//! Consuming the flight recorder's `flight` metrics section.
//!
//! The in-engine flight recorder (`tlbmap_obs::flight`) exports a bounded
//! ring of windowed communication-matrix deltas, an online phase timeline,
//! and exact per-phase aggregates inside the metrics document. This module
//! parses that section back into a typed [`FlightReport`] so `tlbmap
//! inspect` (and tests) can render phase timelines, per-phase heatmaps and
//! per-phase cycle attribution without re-deriving anything.

use tlbmap_core::CommMatrix;
use tlbmap_obs::Json;

/// One retained flight window (a communication-matrix *delta* plus
/// per-core activity over one window of simulated cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseWindow {
    /// Zero-based window index over the whole run (the ring may have
    /// dropped earlier indices).
    pub index: u64,
    /// First cycle covered by the window.
    pub start_cycle: u64,
    /// Cycle the window closed at (exclusive).
    pub end_cycle: u64,
    /// Phase the window belongs to.
    pub phase: u64,
    /// Cosine similarity to the phase reference in parts-per-million;
    /// `None` when the window was not judged (empty, or the first
    /// non-empty window of the run).
    pub similarity_ppm: Option<u64>,
    /// TLB misses per core inside the window.
    pub core_activity: Vec<u64>,
    /// Row-major `n × n` communication delta cells.
    pub cells: Vec<u64>,
}

impl PhaseWindow {
    /// The window's delta as a communication matrix.
    pub fn matrix(&self, n: usize) -> CommMatrix {
        CommMatrix::from_rows(n, self.cells.clone())
    }
}

/// One component row of a phase's cycle attribution (a delta of the
/// self-profiler between two phase boundaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseComponent {
    /// The profiler node's path (e.g. `engine/tlb`).
    pub component: String,
    /// Scope entries attributed to this phase.
    pub calls: u64,
    /// Exclusive simulated cycles attributed to this phase.
    pub exclusive_cycles: u64,
}

/// Exact aggregate of one phase (never dropped, even when the window
/// ring wrapped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Phase id (0 = the first phase).
    pub phase: u64,
    /// First cycle of the phase.
    pub start_cycle: u64,
    /// Last cycle of the phase (exclusive; end of its last closed window).
    pub end_cycle: u64,
    /// Closed windows attributed to the phase.
    pub windows: u64,
    /// Total communication volume (sum of all delta cells).
    pub volume: u64,
    /// TLB misses per core inside the phase.
    pub core_activity: Vec<u64>,
    /// Per-component cycle attribution (zero rows omitted).
    pub profile: Vec<PhaseComponent>,
    /// Row-major `n × n` aggregated communication cells.
    pub cells: Vec<u64>,
}

impl PhaseSummary {
    /// The phase's aggregated communication matrix.
    pub fn matrix(&self, n: usize) -> CommMatrix {
        CommMatrix::from_rows(n, self.cells.clone())
    }

    /// Exclusive cycles of one component by path (0 when absent).
    pub fn cycles_of(&self, component: &str) -> u64 {
        self.profile
            .iter()
            .find(|c| c.component == component)
            .map_or(0, |c| c.exclusive_cycles)
    }
}

/// The parsed `flight` section of a metrics document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightReport {
    /// Window length in simulated cycles.
    pub window_cycles: u64,
    /// Ring capacity (retained windows).
    pub capacity: u64,
    /// Thread count of the matrices.
    pub n: usize,
    /// Windows closed over the whole run.
    pub windows_closed: u64,
    /// Windows evicted from the ring (aggregates still include them).
    pub windows_dropped: u64,
    /// Final phase id (so the run saw `phase + 1` phases).
    pub phase: u64,
    /// Retained windows, oldest first.
    pub windows: Vec<PhaseWindow>,
    /// Exact per-phase aggregates, phase order.
    pub phases: Vec<PhaseSummary>,
}

fn u(json: &Json, k: &str) -> Result<u64, String> {
    json.get(k)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("flight: missing numeric `{k}`"))
}

fn u64s(json: &Json, k: &str) -> Result<Vec<u64>, String> {
    json.get(k)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("flight: missing array `{k}`"))?
        .iter()
        .map(|v| v.as_u64())
        .collect::<Option<Vec<u64>>>()
        .ok_or_else(|| format!("flight: non-integer entry in `{k}`"))
}

fn flat_rows(json: &Json, n: usize) -> Result<Vec<u64>, String> {
    let rows = json
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("flight: missing `rows`")?;
    if rows.len() != n {
        return Err(format!("flight: expected {n} rows, got {}", rows.len()));
    }
    let mut cells = Vec::with_capacity(n * n);
    for row in rows {
        let row = row
            .as_array()
            .ok_or("flight: row is not an array")?
            .iter()
            .map(|v| v.as_u64())
            .collect::<Option<Vec<u64>>>()
            .ok_or("flight: non-integer cell")?;
        if row.len() != n {
            return Err(format!("flight: expected {n} columns, got {}", row.len()));
        }
        cells.extend(row);
    }
    Ok(cells)
}

impl FlightReport {
    /// Parse the flight section of a whole metrics document. `Ok(None)`
    /// when the recorder was disabled (`"flight": null` or absent — e.g.
    /// a pre-schema-3 document).
    pub fn from_metrics(doc: &Json) -> Result<Option<FlightReport>, String> {
        match doc.get("flight") {
            None | Some(Json::Null) => Ok(None),
            Some(section) => FlightReport::from_json(section).map(Some),
        }
    }

    /// Parse a flight section object.
    pub fn from_json(json: &Json) -> Result<FlightReport, String> {
        let n = u(json, "n")? as usize;
        let windows = json
            .get("windows")
            .and_then(Json::as_array)
            .ok_or("flight: missing `windows` array")?
            .iter()
            .map(|w| {
                Ok(PhaseWindow {
                    index: u(w, "index")?,
                    start_cycle: u(w, "start_cycle")?,
                    end_cycle: u(w, "end_cycle")?,
                    phase: u(w, "phase")?,
                    similarity_ppm: w.get("similarity_ppm").and_then(Json::as_u64),
                    core_activity: u64s(w, "core_activity")?,
                    cells: flat_rows(w, n)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let phases = json
            .get("phases")
            .and_then(Json::as_array)
            .ok_or("flight: missing `phases` array")?
            .iter()
            .map(|p| {
                let profile = p
                    .get("profile")
                    .and_then(Json::as_array)
                    .ok_or("flight: phase missing `profile`")?
                    .iter()
                    .map(|c| {
                        Ok(PhaseComponent {
                            component: c
                                .get("component")
                                .and_then(Json::as_str)
                                .ok_or("flight: profile row missing `component`")?
                                .to_string(),
                            calls: u(c, "calls")?,
                            exclusive_cycles: u(c, "exclusive_cycles")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(PhaseSummary {
                    phase: u(p, "phase")?,
                    start_cycle: u(p, "start_cycle")?,
                    end_cycle: u(p, "end_cycle")?,
                    windows: u(p, "windows")?,
                    volume: u(p, "volume")?,
                    core_activity: u64s(p, "core_activity")?,
                    profile,
                    cells: flat_rows(p, n)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FlightReport {
            window_cycles: u(json, "window_cycles")?,
            capacity: u(json, "capacity")?,
            n,
            windows_closed: u(json, "windows_closed")?,
            windows_dropped: u(json, "windows_dropped")?,
            phase: u(json, "phase")?,
            windows,
            phases,
        })
    }

    /// Number of phases the run saw (at least 1 once any window closed).
    pub fn phase_count(&self) -> u64 {
        self.phases.len() as u64
    }

    /// Cycles at which new phases began (empty for a single-phase run):
    /// the `start_cycle` of every phase after the first.
    pub fn boundary_cycles(&self) -> Vec<u64> {
        self.phases.iter().skip(1).map(|p| p.start_cycle).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbmap_obs::{ObsConfig, Recorder};

    /// Drive a real recorder through two synthetic phases and parse the
    /// exported document back — the full producer→consumer loop.
    fn two_phase_report() -> FlightReport {
        let rec = Recorder::new(
            ObsConfig::new(4)
                .with_flight_window(Some(100))
                .with_flight_capacity(16),
        );
        // Phase A: neighbor pairs, three windows.
        for w in 0..3u64 {
            rec.record_matrix_inc(0, 1, 10);
            rec.record_matrix_inc(2, 3, 10);
            rec.record_tlb_miss(0, 0, 0x10, true);
            rec.advance((w + 1) * 100);
        }
        // Phase B: opposite pairs, three windows.
        for w in 3..6u64 {
            rec.record_matrix_inc(0, 2, 10);
            rec.record_matrix_inc(1, 3, 10);
            rec.record_tlb_miss(2, 2, 0x20, true);
            rec.advance((w + 1) * 100);
        }
        rec.finish(600);
        let doc = Json::parse(&rec.metrics_json().render()).unwrap();
        FlightReport::from_metrics(&doc).unwrap().expect("enabled")
    }

    #[test]
    fn round_trips_a_real_two_phase_run() {
        let r = two_phase_report();
        assert_eq!(r.window_cycles, 100);
        assert_eq!(r.n, 4);
        assert_eq!(r.windows_closed, 6);
        assert_eq!(r.windows_dropped, 0);
        assert_eq!(r.phase, 1, "one phase change");
        assert_eq!(r.phase_count(), 2);
        assert_eq!(r.windows.len(), 6);
        // The divergent window (index 3) opens the new phase.
        assert_eq!(r.boundary_cycles(), vec![300]);
        assert_eq!(r.windows[3].phase, 1);
        assert!(r.windows[3].similarity_ppm.unwrap() < 750_000);

        // Exact per-phase aggregates: volumes and matrices.
        assert_eq!(r.phases[0].volume, 120, "3 windows × 2 pairs × 10 × sym");
        assert_eq!(r.phases[1].volume, 120);
        assert_eq!(r.phases[0].matrix(r.n).get(0, 1), 30);
        assert_eq!(r.phases[1].matrix(r.n).get(0, 2), 30);
        assert_eq!(r.phases[0].matrix(r.n).get(0, 2), 0);

        // Per-core activity split: core 0 active in phase A, core 2 in B.
        assert_eq!(r.phases[0].core_activity[0], 3);
        assert_eq!(r.phases[1].core_activity[2], 3);
    }

    #[test]
    fn disabled_flight_parses_as_none() {
        let rec = Recorder::new(ObsConfig::new(4));
        rec.finish(100);
        let doc = Json::parse(&rec.metrics_json().render()).unwrap();
        assert_eq!(FlightReport::from_metrics(&doc).unwrap(), None);
        // Pre-flight documents (no key at all) are also "disabled".
        assert_eq!(
            FlightReport::from_metrics(&Json::obj(vec![])).unwrap(),
            None
        );
    }

    #[test]
    fn malformed_sections_are_display_errors() {
        let bad = Json::parse(r#"{"flight":{"n":"four"}}"#).unwrap();
        let err = FlightReport::from_metrics(&bad).unwrap_err();
        assert!(err.contains('n'), "{err}");
        let truncated = Json::parse(r#"{"flight":{"n":2,"windows":[{"index":0}]}}"#).unwrap();
        assert!(FlightReport::from_metrics(&truncated).is_err());
    }
}
