//! # tlbmap-prof — answering questions with run artifacts
//!
//! PR 1's observability layer (`tlbmap-obs`) *emits* artifacts: event
//! traces, a metrics registry and periodic communication-matrix snapshots.
//! This crate *consumes* them:
//!
//! * [`timeline`] — how detection accuracy evolves over a run: at every
//!   snapshot window, SM/HM-vs-ground-truth similarity scores, both
//!   cumulative and windowed (delta matrices), with phase boundaries
//!   flagged where the windowed pattern shifts. This quantifies the
//!   paper's core claim that the detected matrices converge to the true
//!   communication pattern, per application phase.
//! * [`phases`] — the flight recorder's phase timeline and per-phase
//!   aggregates, parsed back from a metrics document's `flight` section
//!   for `tlbmap inspect` and phase-level analysis.
//! * [`diff`] — compare two runs' metrics documents stat by stat, with a
//!   configurable regression gate (`--fail-above`) suitable for CI.
//! * [`benchrec`] — a stable machine-readable performance record
//!   (events/sec, misses/sec, per-component cycle shares) seeding the
//!   benchmark trajectory in `BENCH_*.json` files.
//!
//! Everything here is deterministic given deterministic inputs: two
//! identical seeded runs produce byte-identical timelines and an empty
//! diff. Only the wall-clock fields of a [`benchrec::BenchRecord`] vary.

#![warn(missing_docs)]

pub mod benchrec;
pub mod diff;
pub mod phases;
pub mod timeline;

pub use benchrec::BenchRecord;
pub use diff::{diff_docs, DiffEntry, DiffReport, Direction};
pub use phases::{FlightReport, PhaseComponent, PhaseSummary, PhaseWindow};
pub use timeline::{compute_timeline, Scores, Timeline, TimelineEntry, DEFAULT_PHASE_THRESHOLD};
