//! Run diffing and regression gating.
//!
//! Compares the numeric stats of two run documents — metrics JSON from
//! `--metrics-out` or benchmark records from `tlbmap bench` — and decides
//! whether the second run regressed. Stats are flattened to dotted keys
//! (`counters.tlb_misses`, `histograms.detection_search_cycles.sum`,
//! `stats.events_per_sec`, …); arrays (snapshots, events, buckets,
//! timeline entries) are summarized by the scalars around them rather
//! than diffed cell by cell.
//!
//! The gate is direction-aware: throughput-style keys (`*_per_sec`)
//! regress when they *drop*, cost-style keys (misses, overhead, cycles,
//! drops) regress when they *grow*, and everything else — counters that
//! should be bit-identical between two runs of the same seeded
//! configuration — breaches on *any* relative change beyond the
//! threshold. A key present in only one document is schema drift and
//! always breaches.

use tlbmap_obs::Json;

/// Which direction of change counts as a regression for a stat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput): regression when the value drops.
    HigherIsBetter,
    /// Smaller is better (cost): regression when the value grows.
    LowerIsBetter,
    /// Deterministic stat: any drift beyond the threshold is a regression.
    Exact,
}

impl Direction {
    /// Classify a flattened key by naming convention.
    pub fn of_key(key: &str) -> Direction {
        let leaf = key.rsplit('.').next().unwrap_or(key);
        if leaf.ends_with("_per_sec") {
            Direction::HigherIsBetter
        } else if leaf.contains("miss")
            || leaf.contains("overhead")
            || leaf.contains("cycles")
            || leaf.contains("dropped")
            || leaf.contains("wall_nanos")
        {
            Direction::LowerIsBetter
        } else {
            Direction::Exact
        }
    }
}

/// One compared stat.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Flattened dotted key.
    pub key: String,
    /// Value in the baseline document (`None` = key missing there).
    pub a: Option<f64>,
    /// Value in the candidate document (`None` = key missing there).
    pub b: Option<f64>,
    /// Relative change in percent, baseline-relative. `None` when either
    /// side is missing or the baseline is zero with a nonzero candidate.
    pub delta_pct: Option<f64>,
    /// Gate direction applied to this key.
    pub direction: Direction,
    /// Whether this stat breached the gate.
    pub regression: bool,
}

/// The full comparison of two documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Every compared stat, in the baseline document's key order (keys
    /// only in the candidate follow, in its order).
    pub entries: Vec<DiffEntry>,
    /// Gate threshold in percent, if one was requested.
    pub fail_above_pct: Option<f64>,
}

impl DiffReport {
    /// Stats that breached the gate.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regression).collect()
    }

    /// Whether the candidate passes the gate.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(|e| !e.regression)
    }

    /// Stats that changed at all (including missing keys).
    pub fn changed(&self) -> Vec<&DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.a != e.b || e.a.is_none() || e.b.is_none())
            .collect()
    }
}

/// Flatten a document's numeric leaves to `(dotted_key, value)` pairs,
/// skipping arrays (snapshots, traces, buckets, timeline entries) and
/// non-numeric leaves. Key order follows the document.
pub fn flatten_stats(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into(doc, String::new(), &mut out);
    out
}

fn flatten_into(json: &Json, prefix: String, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(v, key, out);
            }
        }
        Json::U64(_) | Json::I64(_) | Json::F64(_) => {
            if let Some(v) = json.as_f64() {
                out.push((prefix, v));
            }
        }
        // Arrays, strings, bools, nulls: not gated stats.
        _ => {}
    }
}

/// Compare two documents. `fail_above_pct` arms the regression gate: any
/// stat whose adverse change exceeds it (or whose key exists on only one
/// side) is marked a regression.
pub fn diff_docs(a: &Json, b: &Json, fail_above_pct: Option<f64>) -> DiffReport {
    let av = flatten_stats(a);
    let bv = flatten_stats(b);
    let b_lookup: Vec<(&str, f64)> = bv.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let find = |pairs: &[(&str, f64)], key: &str| -> Option<f64> {
        pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    };

    let mut entries = Vec::new();
    for (key, va) in &av {
        let vb = find(&b_lookup, key);
        entries.push(entry(key, Some(*va), vb, fail_above_pct));
    }
    for (key, vb) in &bv {
        if !av.iter().any(|(k, _)| k == key) {
            entries.push(entry(key, None, Some(*vb), fail_above_pct));
        }
    }
    DiffReport {
        entries,
        fail_above_pct,
    }
}

fn entry(key: &str, a: Option<f64>, b: Option<f64>, gate: Option<f64>) -> DiffEntry {
    let direction = Direction::of_key(key);
    let delta_pct = match (a, b) {
        (Some(va), Some(vb)) => {
            if va == vb {
                Some(0.0)
            } else if va == 0.0 {
                None // new signal out of nothing: no finite percentage
            } else {
                Some(100.0 * (vb - va) / va)
            }
        }
        _ => None,
    };
    let regression = match gate {
        None => false,
        Some(threshold) => match (a, b, delta_pct) {
            // Schema drift: a stat appeared or vanished.
            (None, _, _) | (_, None, _) => true,
            // Baseline zero, candidate nonzero: infinite relative growth.
            (Some(_), Some(vb), None) => {
                vb != 0.0 && matches!(direction, Direction::LowerIsBetter | Direction::Exact)
            }
            (Some(_), Some(_), Some(pct)) => match direction {
                Direction::HigherIsBetter => pct < -threshold,
                Direction::LowerIsBetter => pct > threshold,
                Direction::Exact => pct.abs() > threshold,
            },
        },
    };
    DiffEntry {
        key: key.to_string(),
        a,
        b,
        delta_pct,
        direction,
        regression,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn identical_docs_pass_any_gate() {
        let a = doc(r#"{"counters":{"accesses":100,"tlb_misses":7},"rate":0.5}"#);
        let r = diff_docs(&a, &a, Some(0.0));
        assert!(r.passed());
        assert!(r.changed().is_empty());
        assert_eq!(r.entries.len(), 3);
        assert!(r.entries.iter().all(|e| e.delta_pct == Some(0.0)));
    }

    #[test]
    fn directionality_of_the_gate() {
        let a = doc(r#"{"stats":{"events_per_sec":1000,"tlb_misses":100,"accesses":50}}"#);
        // Throughput up, misses down, accesses unchanged: all fine.
        let better = doc(r#"{"stats":{"events_per_sec":1200,"tlb_misses":80,"accesses":50}}"#);
        assert!(diff_docs(&a, &better, Some(5.0)).passed());
        // Throughput down 10%: breach.
        let slower = doc(r#"{"stats":{"events_per_sec":900,"tlb_misses":100,"accesses":50}}"#);
        let r = diff_docs(&a, &slower, Some(5.0));
        assert!(!r.passed());
        assert_eq!(r.regressions()[0].key, "stats.events_per_sec");
        // Misses up 10%: breach.
        let missier = doc(r#"{"stats":{"events_per_sec":1000,"tlb_misses":110,"accesses":50}}"#);
        assert!(!diff_docs(&a, &missier, Some(5.0)).passed());
        // Exact stat drifting either way: breach.
        let drifted = doc(r#"{"stats":{"events_per_sec":1000,"tlb_misses":100,"accesses":40}}"#);
        assert!(!diff_docs(&a, &drifted, Some(5.0)).passed());
    }

    #[test]
    fn within_threshold_changes_pass() {
        let a = doc(r#"{"stats":{"events_per_sec":1000,"tlb_misses":100}}"#);
        let b = doc(r#"{"stats":{"events_per_sec":970,"tlb_misses":103}}"#);
        assert!(diff_docs(&a, &b, Some(5.0)).passed());
        assert!(!diff_docs(&a, &b, Some(2.0)).passed());
        // No gate: nothing regresses, but changes are still reported.
        let r = diff_docs(&a, &b, None);
        assert!(r.passed());
        assert_eq!(r.changed().len(), 2);
    }

    #[test]
    fn schema_drift_always_breaches() {
        let a = doc(r#"{"counters":{"accesses":100}}"#);
        let b = doc(r#"{"counters":{"accesses":100,"new_counter":1}}"#);
        let r = diff_docs(&a, &b, Some(50.0));
        assert!(!r.passed());
        assert_eq!(r.regressions()[0].key, "counters.new_counter");
        let r = diff_docs(&b, &a, Some(50.0));
        assert!(!r.passed(), "vanished key is drift too");
    }

    #[test]
    fn zero_baseline_growth_breaches_cost_stats() {
        let a = doc(r#"{"counters":{"events_dropped":0,"barriers":0}}"#);
        let b = doc(r#"{"counters":{"events_dropped":5,"barriers":0}}"#);
        let r = diff_docs(&a, &b, Some(5.0));
        assert!(!r.passed());
        assert_eq!(r.regressions()[0].key, "counters.events_dropped");
        assert_eq!(r.regressions()[0].delta_pct, None);
    }

    #[test]
    fn arrays_are_not_diffed() {
        let a = doc(r#"{"snapshots":[{"cycle":1}],"n":2}"#);
        let b = doc(r#"{"snapshots":[{"cycle":1},{"cycle":2}],"n":2}"#);
        assert!(diff_docs(&a, &b, Some(0.0)).passed());
    }

    #[test]
    fn direction_classification() {
        assert_eq!(
            Direction::of_key("stats.events_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            Direction::of_key("counters.tlb_misses"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            Direction::of_key("counters.detection_overhead_cycles"),
            Direction::LowerIsBetter
        );
        assert_eq!(Direction::of_key("counters.accesses"), Direction::Exact);
        assert_eq!(Direction::of_key("schema"), Direction::Exact);
    }
}
