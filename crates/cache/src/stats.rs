//! Event counters — the quantities the paper reports in Figures 7–9 and
//! Table IV.

/// Classification of an L2 miss, following the taxonomy of Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// First access to the line by this cache ever (compulsory).
    Cold,
    /// Line was previously resident but evicted by replacement.
    Capacity,
    /// Line was previously resident but invalidated by coherence — the
    /// "invalidation misses" the paper's mapping primarily attacks.
    Coherence,
}

/// Aggregate hierarchy counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Data-L1 hits.
    pub l1d_hits: u64,
    /// Data-L1 misses.
    pub l1d_misses: u64,
    /// Instruction-L1 hits.
    pub l1i_hits: u64,
    /// Instruction-L1 misses.
    pub l1i_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Total L2 misses (== cold + capacity + coherence).
    pub l2_misses: u64,
    /// Compulsory L2 misses.
    pub l2_cold_misses: u64,
    /// Replacement-induced L2 misses.
    pub l2_capacity_misses: u64,
    /// Coherence-invalidation-induced L2 misses.
    pub l2_coherence_misses: u64,
    /// Remote cache-line copies invalidated by stores (Figure 7).
    pub invalidations: u64,
    /// Misses serviced cache-to-cache instead of from memory (Figure 8).
    pub snoop_transactions: u64,
    /// Snoop transactions whose two L2s sit on the same chip.
    pub snoops_intra_chip: u64,
    /// Snoop transactions crossing the inter-chip interconnect.
    pub snoops_inter_chip: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Lines fetched from main memory.
    pub memory_fetches: u64,
    /// Memory fetches whose home NUMA node was the local chip.
    pub mem_fetches_local: u64,
    /// Memory fetches that crossed to a remote NUMA node.
    pub mem_fetches_remote: u64,
}

impl CacheStats {
    /// Record one L2 miss of the given kind.
    pub fn record_l2_miss(&mut self, kind: MissKind) {
        self.l2_misses += 1;
        match kind {
            MissKind::Cold => self.l2_cold_misses += 1,
            MissKind::Capacity => self.l2_capacity_misses += 1,
            MissKind::Coherence => self.l2_coherence_misses += 1,
        }
    }

    /// L2 miss rate over L2 accesses; 0 when idle.
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }

    /// Element-wise sum — used when aggregating repeated runs.
    pub fn merge(&mut self, other: &CacheStats) {
        self.l1d_hits += other.l1d_hits;
        self.l1d_misses += other.l1d_misses;
        self.l1i_hits += other.l1i_hits;
        self.l1i_misses += other.l1i_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l2_cold_misses += other.l2_cold_misses;
        self.l2_capacity_misses += other.l2_capacity_misses;
        self.l2_coherence_misses += other.l2_coherence_misses;
        self.invalidations += other.invalidations;
        self.snoop_transactions += other.snoop_transactions;
        self.snoops_intra_chip += other.snoops_intra_chip;
        self.snoops_inter_chip += other.snoops_inter_chip;
        self.writebacks += other.writebacks;
        self.memory_fetches += other.memory_fetches;
        self.mem_fetches_local += other.mem_fetches_local;
        self.mem_fetches_remote += other.mem_fetches_remote;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_taxonomy_sums_to_total() {
        let mut s = CacheStats::default();
        s.record_l2_miss(MissKind::Cold);
        s.record_l2_miss(MissKind::Cold);
        s.record_l2_miss(MissKind::Capacity);
        s.record_l2_miss(MissKind::Coherence);
        assert_eq!(s.l2_misses, 4);
        assert_eq!(
            s.l2_cold_misses + s.l2_capacity_misses + s.l2_coherence_misses,
            s.l2_misses
        );
    }

    #[test]
    fn miss_rate() {
        let mut s = CacheStats::default();
        assert_eq!(s.l2_miss_rate(), 0.0);
        s.l2_hits = 3;
        s.record_l2_miss(MissKind::Cold);
        assert!((s.l2_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            l1d_hits: 1,
            snoop_transactions: 2,
            ..Default::default()
        };
        let b = CacheStats {
            l1d_hits: 10,
            invalidations: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1d_hits, 11);
        assert_eq!(a.invalidations, 5);
        assert_eq!(a.snoop_transactions, 2);
    }
}
