//! The MESI coherence states and their legal transitions.
//!
//! The protocol logic itself lives in [`crate::hierarchy`]; this module keeps
//! the state machine small and independently testable.

/// MESI state of one cache line copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Only copy, dirty.
    Modified,
    /// Only copy, clean.
    Exclusive,
    /// One of possibly several clean copies.
    Shared,
    /// Not present (only used transiently; invalid lines are removed).
    Invalid,
}

impl MesiState {
    /// Does holding the line in this state permit a local read without a bus
    /// transaction?
    pub fn can_read(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Does holding the line in this state permit a local write without a
    /// bus transaction?
    pub fn can_write_silently(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Must the line be written back to memory when dropped?
    pub fn dirty(self) -> bool {
        self == MesiState::Modified
    }

    /// State after the local core writes the line (assuming any required
    /// invalidations have been issued).
    pub fn after_local_write(self) -> MesiState {
        MesiState::Modified
    }

    /// State after a remote read is observed (snooped `BusRd`).
    pub fn after_remote_read(self) -> MesiState {
        match self {
            MesiState::Invalid => MesiState::Invalid,
            _ => MesiState::Shared,
        }
    }

    /// State after a remote write is observed (snooped `BusRdX`).
    pub fn after_remote_write(self) -> MesiState {
        MesiState::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MesiState::*;

    #[test]
    fn read_permissions() {
        assert!(Modified.can_read());
        assert!(Exclusive.can_read());
        assert!(Shared.can_read());
        assert!(!Invalid.can_read());
    }

    #[test]
    fn silent_write_permissions() {
        assert!(Modified.can_write_silently());
        assert!(Exclusive.can_write_silently());
        assert!(!Shared.can_write_silently());
        assert!(!Invalid.can_write_silently());
    }

    #[test]
    fn only_modified_is_dirty() {
        assert!(Modified.dirty());
        assert!(!Exclusive.dirty());
        assert!(!Shared.dirty());
    }

    #[test]
    fn remote_read_demotes_to_shared() {
        assert_eq!(Modified.after_remote_read(), Shared);
        assert_eq!(Exclusive.after_remote_read(), Shared);
        assert_eq!(Shared.after_remote_read(), Shared);
        assert_eq!(Invalid.after_remote_read(), Invalid);
    }

    #[test]
    fn remote_write_invalidates() {
        for s in [Modified, Exclusive, Shared, Invalid] {
            assert_eq!(s.after_remote_write(), Invalid);
        }
    }

    #[test]
    fn local_write_always_yields_modified() {
        for s in [Modified, Exclusive, Shared] {
            assert_eq!(s.after_local_write(), Modified);
        }
    }
}
