//! A small open-addressing hash set of line addresses.
//!
//! The coherence bookkeeping (`ever_resident`, `coherence_lost`) sits on
//! the L2 miss path, where `std::collections::HashSet`'s SipHash is pure
//! overhead: line addresses are already well-distributed integers and the
//! sets are private to one hierarchy, so a multiplicative hash with linear
//! probing is both safe and several times faster.

const EMPTY: u64 = u64::MAX;
const TOMBSTONE: u64 = u64::MAX - 1;

/// Fibonacci-style multiplicative hash spreading low-entropy integer keys
/// across the high bits (the probe start uses the top `log2(capacity)`).
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// An open-addressing set of `u64` keys (line addresses).
///
/// Keys `u64::MAX` and `u64::MAX - 1` are reserved as slot markers; line
/// addresses are physical addresses shifted right by the line size, so
/// they can never reach them.
#[derive(Debug, Clone, Default)]
pub(crate) struct LineSet {
    /// Power-of-two slot array, `EMPTY`/`TOMBSTONE` or a stored key.
    slots: Vec<u64>,
    /// Live keys.
    len: usize,
    /// Tombstones left by removals (cleared on rehash).
    tombs: usize,
}

impl LineSet {
    /// An empty set. Allocates nothing until the first insert.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// Number of keys in the set.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = (spread(key) >> (64 - self.slots.len().trailing_zeros())) as usize;
        loop {
            let s = self.slots[i & mask];
            if s == key {
                return true;
            }
            if s == EMPTY {
                return false;
            }
            i += 1;
        }
    }

    /// Insert `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: u64) -> bool {
        debug_assert!(key < TOMBSTONE, "key collides with slot markers");
        if (self.len + self.tombs + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (spread(key) >> (64 - self.slots.len().trailing_zeros())) as usize;
        let mut free: Option<usize> = None;
        loop {
            let slot = i & mask;
            let s = self.slots[slot];
            if s == key {
                return false;
            }
            if s == TOMBSTONE {
                free.get_or_insert(slot);
            } else if s == EMPTY {
                let target = free.unwrap_or(slot);
                if self.slots[target] == TOMBSTONE {
                    self.tombs -= 1;
                }
                self.slots[target] = key;
                self.len += 1;
                return true;
            }
            i += 1;
        }
    }

    /// Remove `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = (spread(key) >> (64 - self.slots.len().trailing_zeros())) as usize;
        loop {
            let slot = i & mask;
            let s = self.slots[slot];
            if s == key {
                self.slots[slot] = TOMBSTONE;
                self.len -= 1;
                self.tombs += 1;
                return true;
            }
            if s == EMPTY {
                return false;
            }
            i += 1;
        }
    }

    /// Double the capacity (quadruple while small) and rehash, dropping
    /// tombstones.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        self.tombs = 0;
        let mask = new_cap - 1;
        let shift = 64 - new_cap.trailing_zeros();
        for key in old {
            if key < TOMBSTONE {
                let mut i = (spread(key) >> shift) as usize;
                while self.slots[i & mask] != EMPTY {
                    i += 1;
                }
                self.slots[i & mask] = key;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn empty_set_answers_without_allocating() {
        let s = LineSet::new();
        assert!(!s.contains(0));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = LineSet::new();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(42));
        assert!(!s.contains(43));
        assert!(s.remove(42));
        assert!(!s.remove(42));
        assert!(!s.contains(42));
    }

    #[test]
    fn zero_is_a_valid_key() {
        let mut s = LineSet::new();
        assert!(s.insert(0));
        assert!(s.contains(0));
        assert!(s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut s = LineSet::new();
        // Fill enough to force probe chains, then delete alternating keys.
        for k in 0..64u64 {
            s.insert(k);
        }
        for k in (0..64u64).step_by(2) {
            assert!(s.remove(k));
        }
        for k in 0..64u64 {
            assert_eq!(s.contains(k), k % 2 == 1, "key {k}");
        }
        // Reinserting removed keys reuses tombstones.
        for k in (0..64u64).step_by(2) {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn matches_std_hashset_on_random_traffic() {
        let mut rng = SmallRng::seed_from_u64(0x11E5);
        for _ in 0..20 {
            let mut ours = LineSet::new();
            let mut std_set: HashSet<u64> = HashSet::new();
            for _ in 0..2000 {
                let key = rng.gen_range(0u64..300);
                match rng.gen_range(0u32..3) {
                    0 => assert_eq!(ours.insert(key), std_set.insert(key)),
                    1 => assert_eq!(ours.remove(key), std_set.remove(&key)),
                    _ => assert_eq!(ours.contains(key), std_set.contains(&key)),
                }
            }
            assert_eq!(ours.len(), std_set.len());
            for key in 0..300 {
                assert_eq!(ours.contains(key), std_set.contains(&key));
            }
        }
    }
}
