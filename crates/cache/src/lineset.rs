//! A small open-addressing hash map from line addresses to bitmaps.
//!
//! Both the coherence miss-taxonomy bookkeeping and the sparse MESI owner
//! directory sit on the L2 miss path, where `std::collections::HashMap`'s
//! SipHash is pure overhead: line addresses are already well-distributed
//! integers and the tables are private to one hierarchy, so a
//! multiplicative hash with linear probing is both safe and several times
//! faster. (This structure generalizes the `LineSet` hash *set* the miss
//! path used before the owner directory: a set is the degenerate map whose
//! values carry one bit.)

const EMPTY: u64 = u64::MAX;
const TOMBSTONE: u64 = u64::MAX - 1;

/// Fibonacci-style multiplicative hash spreading low-entropy integer keys
/// across the high bits (the probe start uses the top `log2(capacity)`).
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// An open-addressing map from `u64` keys (line addresses) to `u64`
/// bitmaps (holder masks over L2 indices).
///
/// Backs the sparse MESI owner directory (one entry per line resident in
/// *any* L2, so holder lookup, invalidation and state audits iterate the
/// popcount of actual sharers instead of scanning every L2) and the per-L2
/// miss-taxonomy history (flag bits per line). Keys `u64::MAX` and
/// `u64::MAX - 1` are reserved as slot markers; line addresses are
/// physical addresses shifted right by the line size, so they can never
/// reach them. An entry whose mask drains to zero is removed, keeping the
/// table proportional to the lines actually tracked.
#[derive(Debug, Clone, Default)]
pub(crate) struct LineMap {
    /// Power-of-two key array, `EMPTY`/`TOMBSTONE` or a stored key.
    keys: Vec<u64>,
    /// Holder mask for the key in the matching `keys` slot.
    vals: Vec<u64>,
    /// Live entries.
    len: usize,
    /// Tombstones left by removals (cleared on rehash).
    tombs: usize,
}

impl LineMap {
    /// An empty map. Allocates nothing until the first insert.
    pub fn new() -> Self {
        LineMap::default()
    }

    /// Number of keys with a non-empty mask.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The mask stored for `key`, or `0` if absent.
    #[inline]
    pub fn get(&self, key: u64) -> u64 {
        if self.keys.is_empty() {
            return 0;
        }
        let mask = self.keys.len() - 1;
        let mut i = (spread(key) >> (64 - self.keys.len().trailing_zeros())) as usize;
        loop {
            let slot = i & mask;
            let s = self.keys[slot];
            if s == key {
                return self.vals[slot];
            }
            if s == EMPTY {
                return 0;
            }
            i += 1;
        }
    }

    /// Set bit `bit` in the mask for `key`, inserting the entry if absent.
    pub fn set_bit(&mut self, key: u64, bit: u32) {
        debug_assert!(key < TOMBSTONE, "key collides with slot markers");
        debug_assert!(bit < 64, "holder index exceeds mask width");
        if (self.len + self.tombs + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = (spread(key) >> (64 - self.keys.len().trailing_zeros())) as usize;
        let mut free: Option<usize> = None;
        loop {
            let slot = i & mask;
            let s = self.keys[slot];
            if s == key {
                self.vals[slot] |= 1 << bit;
                return;
            }
            if s == TOMBSTONE {
                free.get_or_insert(slot);
            } else if s == EMPTY {
                let target = free.unwrap_or(slot);
                if self.keys[target] == TOMBSTONE {
                    self.tombs -= 1;
                }
                self.keys[target] = key;
                self.vals[target] = 1 << bit;
                self.len += 1;
                return;
            }
            i += 1;
        }
    }

    /// Clear bit `bit` in the mask for `key`; the entry is removed when its
    /// mask drains to zero. No-op if the key (or bit) is absent.
    pub fn clear_bit(&mut self, key: u64, bit: u32) {
        if self.keys.is_empty() {
            return;
        }
        let mask = self.keys.len() - 1;
        let mut i = (spread(key) >> (64 - self.keys.len().trailing_zeros())) as usize;
        loop {
            let slot = i & mask;
            let s = self.keys[slot];
            if s == key {
                self.vals[slot] &= !(1u64 << bit);
                if self.vals[slot] == 0 {
                    self.keys[slot] = TOMBSTONE;
                    self.len -= 1;
                    self.tombs += 1;
                }
                return;
            }
            if s == EMPTY {
                return;
            }
            i += 1;
        }
    }

    /// Double the capacity (quadruple while small) and rehash, dropping
    /// tombstones.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.tombs = 0;
        let mask = new_cap - 1;
        let shift = 64 - new_cap.trailing_zeros();
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key < TOMBSTONE {
                let mut i = (spread(key) >> shift) as usize;
                while self.keys[i & mask] != EMPTY {
                    i += 1;
                }
                self.keys[i & mask] = key;
                self.vals[i & mask] = val;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn zero_is_a_valid_key() {
        let mut m = LineMap::new();
        m.set_bit(0, 7);
        assert_eq!(m.get(0), 1 << 7);
        m.clear_bit(0, 7);
        assert_eq!(m.get(0), 0);
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut m = LineMap::new();
        // Fill enough to force probe chains, then drain alternating keys.
        for k in 0..64u64 {
            m.set_bit(k, 1);
        }
        for k in (0..64u64).step_by(2) {
            m.clear_bit(k, 1);
        }
        for k in 0..64u64 {
            let expect = if k % 2 == 1 { 1u64 << 1 } else { 0 };
            assert_eq!(m.get(k), expect, "key {k}");
        }
        // Re-adding drained keys reuses tombstones.
        for k in (0..64u64).step_by(2) {
            m.set_bit(k, 1);
        }
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn empty_map_answers_without_allocating() {
        let m = LineMap::new();
        assert_eq!(m.get(0), 0);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut m = LineMap::new();
        m.set_bit(42, 3);
        assert_eq!(m.get(42), 1 << 3);
        m.set_bit(42, 0);
        assert_eq!(m.get(42), (1 << 3) | 1);
        m.clear_bit(42, 3);
        assert_eq!(m.get(42), 1);
        m.clear_bit(42, 0);
        assert_eq!(m.get(42), 0);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn clearing_absent_key_or_bit_is_a_noop() {
        let mut m = LineMap::new();
        m.clear_bit(7, 2); // empty map
        m.set_bit(7, 1);
        m.clear_bit(7, 2); // bit not set
        assert_eq!(m.get(7), 1 << 1);
        m.clear_bit(8, 1); // key not present
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drained_entries_leave_reusable_tombstones() {
        let mut m = LineMap::new();
        for k in 0..64u64 {
            m.set_bit(k, (k % 64) as u32);
        }
        for k in (0..64u64).step_by(2) {
            m.clear_bit(k, (k % 64) as u32);
        }
        for k in 0..64u64 {
            let expect = if k % 2 == 1 { 1u64 << (k % 64) } else { 0 };
            assert_eq!(m.get(k), expect, "key {k}");
        }
        for k in (0..64u64).step_by(2) {
            m.set_bit(k, 5);
        }
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn matches_std_hashmap_on_random_traffic() {
        let mut rng = SmallRng::seed_from_u64(0xD1_8EC7);
        for _ in 0..20 {
            let mut ours = LineMap::new();
            let mut std_map: HashMap<u64, u64> = HashMap::new();
            for _ in 0..3000 {
                let key = rng.gen_range(0u64..300);
                let bit = rng.gen_range(0u32..64);
                if rng.gen_bool(0.5) {
                    ours.set_bit(key, bit);
                    *std_map.entry(key).or_insert(0) |= 1 << bit;
                } else {
                    ours.clear_bit(key, bit);
                    if let Some(v) = std_map.get_mut(&key) {
                        *v &= !(1u64 << bit);
                        if *v == 0 {
                            std_map.remove(&key);
                        }
                    }
                }
            }
            assert_eq!(ours.len(), std_map.len());
            for key in 0..300 {
                assert_eq!(ours.get(key), std_map.get(&key).copied().unwrap_or(0));
            }
        }
    }
}
