//! Cache and hierarchy configuration, defaulting to the paper's Table II.

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Table II L1: 32 KiB, 64 B lines, 4-way, 2 cycles, write-through.
    pub const fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_size: 64,
            ways: 4,
            latency: 2,
        }
    }

    /// Table II L2: 6 MiB, 64 B lines, 8-way, 8 cycles, write-back MESI.
    pub const fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 6 * 1024 * 1024,
            line_size: 64,
            ways: 8,
            latency: 8,
        }
    }

    /// Number of lines this cache holds.
    pub fn lines(&self) -> usize {
        (self.size_bytes / self.line_size) as usize
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.ways
    }

    /// log2 of the line size.
    pub fn line_shift(&self) -> u32 {
        self.line_size.trailing_zeros()
    }

    /// Validate the geometry.
    ///
    /// # Panics
    /// Panics on a zero or non-power-of-two line size, zero ways, or a
    /// capacity that is not a whole number of lines per way. The set count
    /// need not be a power of two (the paper's Table II L2 — 6 MiB, 8-way,
    /// 64 B lines — has 12288 sets); indexing uses modulo.
    pub fn validate(&self) {
        assert!(
            self.line_size.is_power_of_two() && self.line_size >= 8,
            "line size {} must be a power of two >= 8",
            self.line_size
        );
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            self.size_bytes
                .is_multiple_of(self.line_size * self.ways as u64),
            "capacity {} not divisible into {} ways of {}-byte lines",
            self.size_bytes,
            self.ways,
            self.line_size
        );
        assert!(self.sets() > 0, "cache must have at least one set");
    }
}

/// One shared L2 cache: which cores sit behind it and which chip it is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Group {
    /// Core ids that share this L2.
    pub cores: Vec<usize>,
    /// Chip (package) this L2 belongs to; snoops crossing chips are slower.
    pub chip: usize,
}

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Per-core instruction L1.
    pub l1i: CacheConfig,
    /// Per-core data L1 (write-through per Table II).
    pub l1d: CacheConfig,
    /// Shared L2 (write-back, MESI per Table II).
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Cache-to-cache transfer latency when both L2s are on the same chip.
    pub c2c_intra_chip: u64,
    /// Cache-to-cache transfer latency across chips (FSB on Harpertown).
    pub c2c_inter_chip: u64,
    /// Extra cycles a store pays when it must invalidate remote copies.
    pub write_invalidate_penalty: u64,
    /// Extra cycles a memory fetch pays when the line's home NUMA node is
    /// a different chip than the requesting L2's (0 models a UMA machine,
    /// the paper's Harpertown; the paper's conclusion predicts larger
    /// mapping gains when this is nonzero).
    pub numa_remote_penalty: u64,
    /// The shared-L2 groups. `groups[g].cores` lists core ids; every core
    /// must appear in exactly one group.
    pub groups: Vec<L2Group>,
}

impl HierarchyConfig {
    /// The paper's machine (Figure 3): 8 cores, L2 shared by core pairs,
    /// two chips. Latencies follow Table II with CACTI-style memory and
    /// interconnect estimates.
    pub fn paper_harpertown() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::paper_l1(),
            l1d: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            mem_latency: 200,
            c2c_intra_chip: 40,
            c2c_inter_chip: 120,
            write_invalidate_penalty: 20,
            numa_remote_penalty: 0,
            groups: vec![
                L2Group {
                    cores: vec![0, 1],
                    chip: 0,
                },
                L2Group {
                    cores: vec![2, 3],
                    chip: 0,
                },
                L2Group {
                    cores: vec![4, 5],
                    chip: 1,
                },
                L2Group {
                    cores: vec![6, 7],
                    chip: 1,
                },
            ],
        }
    }

    /// Total number of cores across all groups.
    pub fn num_cores(&self) -> usize {
        self.groups.iter().map(|g| g.cores.len()).sum()
    }

    /// Number of shared L2 caches.
    pub fn num_l2(&self) -> usize {
        self.groups.len()
    }

    /// Validate the whole configuration.
    ///
    /// # Panics
    /// Panics if any cache geometry is invalid, line sizes differ between
    /// levels, a core id is missing or duplicated, or a group is empty.
    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        assert_eq!(
            self.l1d.line_size, self.l2.line_size,
            "L1 and L2 line sizes must agree for the inclusive model"
        );
        assert!(!self.groups.is_empty(), "need at least one L2 group");
        let n = self.num_cores();
        let mut seen = vec![false; n];
        for g in &self.groups {
            assert!(!g.cores.is_empty(), "empty L2 group");
            for &c in &g.cores {
                assert!(c < n, "core id {c} out of range (num_cores = {n})");
                assert!(!seen[c], "core id {c} appears in two L2 groups");
                seen[c] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_matches_table2() {
        let c = CacheConfig::paper_l1();
        assert_eq!(c.size_bytes, 32 * 1024);
        assert_eq!(c.line_size, 64);
        assert_eq!(c.ways, 4);
        assert_eq!(c.latency, 2);
        assert_eq!(c.sets(), 128);
        c.validate();
    }

    #[test]
    fn paper_l2_matches_table2() {
        let c = CacheConfig::paper_l2();
        assert_eq!(c.size_bytes, 6 * 1024 * 1024);
        assert_eq!(c.ways, 8);
        assert_eq!(c.latency, 8);
        assert_eq!(c.lines(), 98304);
        c.validate();
    }

    #[test]
    fn harpertown_has_8_cores_4_l2s_2_chips() {
        let h = HierarchyConfig::paper_harpertown();
        h.validate();
        assert_eq!(h.num_cores(), 8);
        assert_eq!(h.num_l2(), 4);
        let chips: std::collections::HashSet<_> = h.groups.iter().map(|g| g.chip).collect();
        assert_eq!(chips.len(), 2);
    }

    #[test]
    #[should_panic(expected = "appears in two L2 groups")]
    fn duplicate_core_rejected() {
        let mut h = HierarchyConfig::paper_harpertown();
        h.groups[1].cores = vec![0, 3];
        h.validate();
    }

    #[test]
    fn non_power_of_two_set_count_allowed() {
        // 3 sets — legal with modulo indexing (Table II's L2 has 12288).
        CacheConfig {
            size_bytes: 3 * 64 * 4,
            line_size: 64,
            ways: 4,
            latency: 1,
        }
        .validate();
    }

    #[test]
    fn line_shift() {
        assert_eq!(CacheConfig::paper_l2().line_shift(), 6);
    }
}
