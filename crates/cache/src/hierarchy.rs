//! The full memory hierarchy: private write-through L1s, shared write-back
//! L2s kept coherent with MESI over a snooping bus.
//!
//! Event accounting follows the paper's definitions:
//!
//! * an **invalidation** is one remote L2 copy destroyed because some core
//!   wrote the line (`BusRdX`/upgrade). Sibling-L1 invalidations under the
//!   *same* L2 are tracked separately — they never cross the interconnect
//!   and the paper's mapping does not target them.
//! * a **snoop transaction** is a miss whose data was supplied by another
//!   cache rather than memory ("a core requests data that is not present in
//!   its cache and has to retrieve the data from another cache", §VI-B).
//! * **L2 misses** are classified cold / capacity / coherence so that the
//!   invalidation-miss reduction of Section III-A is directly observable.

use crate::cache::{Cache, LineAddr};
use crate::config::{CacheConfig, HierarchyConfig};
use crate::lineset::LineMap;
use crate::mesi::MesiState;
use crate::stats::{CacheStats, MissKind};
use std::collections::HashSet;

/// [`MemoryHierarchy::history`] flag bit: the line was resident in this L2
/// at some point (distinguishes capacity from cold misses). Shared with
/// the per-domain hierarchy ([`crate::domain`]), which keeps the same
/// per-L2 miss taxonomy.
pub(crate) const HIST_EVER: u32 = 0;
/// [`MemoryHierarchy::history`] flag bit: the line's copy in this L2 was
/// destroyed by a coherence invalidation and has not re-missed yet.
pub(crate) const HIST_LOST: u32 = 1;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Instruction fetch vs data access — routed to different L1s. The paper
/// notes data accesses dominate mapping-relevant communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data access (L1D).
    Data,
    /// Instruction fetch (L1I).
    Instr,
}

/// Timing and routing result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycles the access took.
    pub cycles: u64,
    /// Whether the L1 hit.
    pub l1_hit: bool,
    /// Whether the L2 hit (meaningless when `l1_hit`).
    pub l2_hit: bool,
    /// Whether the access was serviced cache-to-cache.
    pub snooped: bool,
}

/// The coherent hierarchy for one machine.
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    /// `core_to_l2[core]` = index into `l2` / `cfg.groups`.
    core_to_l2: Vec<usize>,
    stats: CacheStats,
    /// Sibling-L1 copies invalidated under the same L2 (not an interconnect
    /// event; kept out of `CacheStats::invalidations`).
    l1_sibling_invalidations: u64,
    /// Per-L2 miss-taxonomy history, one [`LineMap`] entry per line with
    /// [`HIST_EVER`] (ever resident: cold vs capacity) and [`HIST_LOST`]
    /// (lost to coherence invalidation) flag bits — one probe classifies a
    /// miss where two separate sets took two.
    history: Vec<LineMap>,
    /// Sparse owner directory: line → bitmap of L2s currently holding it.
    /// Maintained by the only two places L2 residency changes
    /// ([`Self::install_l2`] and [`Self::invalidate_remote_copies`]), so
    /// holder search, sharer invalidation and MESI audits iterate the
    /// popcount of actual sharers instead of scanning every L2. The
    /// directory changes *where* the protocol looks, never *what* it
    /// charges: all modeled latencies and counters are identical to the
    /// full-snoop scan it replaced.
    directory: LineMap,
}

impl MemoryHierarchy {
    /// Build an empty hierarchy with per-run (lazily grown) set storage —
    /// the right layout for a hierarchy built fresh for one simulated run.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::with_cache_ctor(cfg, Cache::new)
    }

    /// Build an empty hierarchy with resident (preallocated SoA) set
    /// storage — the right layout for a hierarchy that lives for a whole
    /// process and is probed millions of times, e.g. the serve path's
    /// shared state. Semantics are identical to [`MemoryHierarchy::new`];
    /// only the memory layout of the set storage differs (see
    /// [`Cache::new_resident`]).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new_resident(cfg: HierarchyConfig) -> Self {
        Self::with_cache_ctor(cfg, Cache::new_resident)
    }

    fn with_cache_ctor(cfg: HierarchyConfig, ctor: fn(CacheConfig) -> Cache) -> Self {
        cfg.validate();
        let n_cores = cfg.num_cores();
        let n_l2 = cfg.num_l2();
        assert!(
            n_l2 <= 64,
            "owner directory packs holders into a u64 bitmap; got {n_l2} L2 groups"
        );
        let mut core_to_l2 = vec![usize::MAX; n_cores];
        for (g, group) in cfg.groups.iter().enumerate() {
            for &c in &group.cores {
                core_to_l2[c] = g;
            }
        }
        MemoryHierarchy {
            l1i: (0..n_cores).map(|_| ctor(cfg.l1i)).collect(),
            l1d: (0..n_cores).map(|_| ctor(cfg.l1d)).collect(),
            l2: (0..n_l2).map(|_| ctor(cfg.l2)).collect(),
            core_to_l2,
            stats: CacheStats::default(),
            l1_sibling_invalidations: 0,
            history: vec![LineMap::new(); n_l2],
            directory: LineMap::new(),
            cfg,
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Sibling-L1 invalidations (same-L2; not part of [`CacheStats`]).
    pub fn l1_sibling_invalidations(&self) -> u64 {
        self.l1_sibling_invalidations
    }

    /// Which L2 a core sits behind.
    pub fn l2_of(&self, core: usize) -> usize {
        self.core_to_l2[core]
    }

    /// MESI state of `line` in L2 `g` (test/diagnostic hook).
    pub fn l2_state(&self, g: usize, line: LineAddr) -> Option<MesiState> {
        self.l2[g].peek(line)
    }

    /// Perform one memory access by `core` to physical address `paddr`
    /// on a UMA machine (no NUMA home-node accounting).
    #[inline]
    pub fn access(
        &mut self,
        core: usize,
        paddr: u64,
        op: MemOp,
        kind: AccessKind,
    ) -> AccessOutcome {
        self.access_numa(core, paddr, op, kind, None)
    }

    /// Perform one memory access with an optional NUMA home chip for the
    /// touched page: memory fetches from a different chip's node pay
    /// `numa_remote_penalty` extra cycles and are counted separately.
    #[inline]
    pub fn access_numa(
        &mut self,
        core: usize,
        paddr: u64,
        op: MemOp,
        kind: AccessKind,
        home_chip: Option<usize>,
    ) -> AccessOutcome {
        let line = LineAddr::of(paddr, self.cfg.l2.line_shift());
        match op {
            MemOp::Read => self.read(core, line, kind, home_chip),
            MemOp::Write => self.write(core, line, kind, home_chip),
        }
    }

    /// Record a memory fetch by L2 `g`, returning the fetch latency with
    /// any NUMA penalty applied.
    fn memory_fetch(&mut self, g: usize, home_chip: Option<usize>) -> u64 {
        self.stats.memory_fetches += 1;
        match home_chip {
            Some(chip) if chip != self.cfg.groups[g].chip => {
                self.stats.mem_fetches_remote += 1;
                self.cfg.mem_latency + self.cfg.numa_remote_penalty
            }
            Some(_) => {
                self.stats.mem_fetches_local += 1;
                self.cfg.mem_latency
            }
            None => self.cfg.mem_latency,
        }
    }

    fn l1_mut(&mut self, core: usize, kind: AccessKind) -> &mut Cache {
        match kind {
            AccessKind::Data => &mut self.l1d[core],
            AccessKind::Instr => &mut self.l1i[core],
        }
    }

    fn note_l1(&mut self, kind: AccessKind, hit: bool) {
        match (kind, hit) {
            (AccessKind::Data, true) => self.stats.l1d_hits += 1,
            (AccessKind::Data, false) => self.stats.l1d_misses += 1,
            (AccessKind::Instr, true) => self.stats.l1i_hits += 1,
            (AccessKind::Instr, false) => self.stats.l1i_misses += 1,
        }
    }

    fn read(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: AccessKind,
        home_chip: Option<usize>,
    ) -> AccessOutcome {
        let l1_latency = self.cfg.l1d.latency;
        if self.l1_mut(core, kind).touch(line).is_some() {
            self.note_l1(kind, true);
            return AccessOutcome {
                cycles: l1_latency,
                l1_hit: true,
                l2_hit: false,
                snooped: false,
            };
        }
        self.note_l1(kind, false);

        let g = self.core_to_l2[core];
        let mut cycles = l1_latency + self.cfg.l2.latency;
        let mut l2_hit = true;
        let mut snooped = false;

        if self.l2[g].touch(line).is_none() {
            // L2 read miss: classify, snoop, fetch, install.
            l2_hit = false;
            self.classify_miss(g, line);
            let (extra, was_snooped) = self.service_read_miss(g, line, home_chip);
            cycles += extra;
            snooped = was_snooped;
        } else {
            self.stats.l2_hits += 1;
        }

        self.fill_l1(core, kind, line);
        AccessOutcome {
            cycles,
            l1_hit: false,
            l2_hit,
            snooped,
        }
    }

    fn write(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: AccessKind,
        home_chip: Option<usize>,
    ) -> AccessOutcome {
        let g = self.core_to_l2[core];
        let mut cycles = self.cfg.l1d.latency;
        let mut l2_hit = true;
        let mut snooped = false;

        match self.l2[g].touch(line) {
            Some(MesiState::Modified) => {}
            Some(MesiState::Exclusive) => {
                // Silent E→M upgrade.
                self.l2[g].set_state(line, MesiState::Modified);
            }
            Some(MesiState::Shared) => {
                // Upgrade: invalidate every remote copy.
                let invalidated = self.invalidate_remote_copies(g, line);
                if invalidated > 0 {
                    cycles += self.cfg.write_invalidate_penalty;
                }
                self.l2[g].set_state(line, MesiState::Modified);
            }
            Some(MesiState::Invalid) | None => {
                // Write miss: read-for-ownership (BusRdX).
                l2_hit = false;
                self.classify_miss(g, line);
                let (extra, was_snooped) = self.service_write_miss(g, line, home_chip);
                cycles += self.cfg.l2.latency + extra;
                snooped = was_snooped;
            }
        }
        if !l2_hit {
            // nothing extra: miss path already accounted
        } else {
            self.stats.l2_hits += 1;
        }

        // Keep sibling L1 copies (cores under the same L2) coherent: they
        // would otherwise read a stale line through their write-through L1.
        self.invalidate_sibling_l1s(core, g, line);

        // Write-allocate into the local L1 (write-through to L2 is implied).
        let (hit, _) = self
            .l1_mut(core, kind)
            .touch_or_insert(line, MesiState::Shared);
        self.note_l1(kind, hit);
        AccessOutcome {
            cycles,
            l1_hit: false,
            l2_hit,
            snooped,
        }
    }

    /// Snoop all remote L2s for `line` on a read miss; transfer cache-to-
    /// cache if anyone has it, otherwise fetch from memory. Installs the
    /// line in `g` and handles the eviction. Returns `(extra_cycles,
    /// snooped)`.
    fn service_read_miss(
        &mut self,
        g: usize,
        line: LineAddr,
        home_chip: Option<usize>,
    ) -> (u64, bool) {
        #[cfg(debug_assertions)]
        let expected = self.find_holder_scan(g, line);
        // One pass over the owner directory's holder mask: every holder is
        // demoted to Shared (BusRd seen) while its old state picks the
        // supplier by the same rule, in the same ascending order, as the
        // snoop scan this replaces — first Modified (it must supply and
        // write back), else the first holder, preferring intra-chip.
        let my_chip = self.cfg.groups[g].chip;
        let mut holders = self.directory.get(line.0) & !(1u64 << g);
        let mut supplier: Option<usize> = None;
        let mut supplier_modified = false;
        while holders != 0 {
            let other = holders.trailing_zeros() as usize;
            holders &= holders - 1;
            let old = self.l2[other].replace_state(line, MesiState::Shared);
            debug_assert!(old.is_some(), "directory bit set for non-resident line");
            let Some(old) = old else { continue };
            if supplier_modified {
                continue;
            }
            if old == MesiState::Modified {
                supplier = Some(other);
                supplier_modified = true;
            } else {
                let better = match supplier {
                    None => true,
                    Some(b) => {
                        self.cfg.groups[other].chip == my_chip && self.cfg.groups[b].chip != my_chip
                    }
                };
                if better {
                    supplier = Some(other);
                }
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(supplier, expected);
        let (extra, state, snooped) = match supplier {
            Some(h) => {
                if supplier_modified {
                    // Dirty supplier writes back and both end Shared.
                    self.stats.writebacks += 1;
                }
                self.record_snoop(g, h);
                (self.c2c_latency(g, h), MesiState::Shared, true)
            }
            None => {
                let latency = self.memory_fetch(g, home_chip);
                (latency, MesiState::Exclusive, false)
            }
        };
        self.install_l2(g, line, state);
        (extra, snooped)
    }

    /// Snoop on a write miss (`BusRdX`): any remote copy supplies the data
    /// (dirty ownership migrates without a memory writeback) and every
    /// remote copy is invalidated. Returns `(extra_cycles, snooped)`.
    fn service_write_miss(
        &mut self,
        g: usize,
        line: LineAddr,
        home_chip: Option<usize>,
    ) -> (u64, bool) {
        #[cfg(debug_assertions)]
        let expected = self.find_holder_scan(g, line);
        // One pass over the owner directory's holder mask: every remote copy
        // is destroyed (`BusRdX`), and the state each `remove` returns picks
        // the data supplier by the same rule, in the same ascending order,
        // as the snoop scan this replaces. A remote Modified copy hands its
        // data to the requester without a memory writeback.
        let my_chip = self.cfg.groups[g].chip;
        let mut remote = self.directory.get(line.0) & !(1u64 << g);
        let mut supplier: Option<usize> = None;
        let mut supplier_modified = false;
        let mut invalidated = 0u64;
        while remote != 0 {
            let other = remote.trailing_zeros() as usize;
            remote &= remote - 1;
            let state = self.l2[other].remove(line);
            debug_assert!(state.is_some(), "directory bit set for non-resident line");
            let Some(state) = state else { continue };
            if !supplier_modified {
                if state == MesiState::Modified {
                    supplier = Some(other);
                    supplier_modified = true;
                } else {
                    let better = match supplier {
                        None => true,
                        Some(b) => {
                            self.cfg.groups[other].chip == my_chip
                                && self.cfg.groups[b].chip != my_chip
                        }
                    };
                    if better {
                        supplier = Some(other);
                    }
                }
            }
            invalidated += 1;
            self.stats.invalidations += 1;
            self.history[other].set_bit(line.0, HIST_LOST);
            self.directory.clear_bit(line.0, other as u32);
            self.back_invalidate_l1s(other, line);
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(supplier, expected);
        let (extra, snooped) = match supplier {
            Some(h) => {
                self.record_snoop(g, h);
                (self.c2c_latency(g, h), true)
            }
            None => (self.memory_fetch(g, home_chip), false),
        };
        let penalty = if invalidated > 0 {
            self.cfg.write_invalidate_penalty
        } else {
            0
        };
        self.install_l2(g, line, MesiState::Modified);
        (extra + penalty, snooped)
    }

    /// First remote L2 holding `line`, preferring the Modified holder (it
    /// must supply the data), then an intra-chip holder (cheapest transfer).
    ///
    /// Walks the owner directory's holder bitmap in ascending L2 order —
    /// the same visit order as the full-snoop scan it replaced, so the
    /// chosen supplier (and thus every latency and snoop counter downstream)
    /// is identical; only O(popcount) L2s are probed instead of all of them.
    fn find_holder(&self, g: usize, line: LineAddr) -> Option<usize> {
        let my_chip = self.cfg.groups[g].chip;
        let mut best: Option<usize> = None;
        let mut holders = self.directory.get(line.0) & !(1u64 << g);
        while holders != 0 {
            let other = holders.trailing_zeros() as usize;
            holders &= holders - 1;
            match self.l2[other].peek(line) {
                Some(MesiState::Modified) => return Some(other),
                Some(_) => {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            self.cfg.groups[other].chip == my_chip
                                && self.cfg.groups[b].chip != my_chip
                        }
                    };
                    if better {
                        best = Some(other);
                    }
                }
                None => debug_assert!(false, "directory bit set for non-resident line"),
            }
        }
        debug_assert_eq!(best, self.find_holder_scan(g, line));
        best
    }

    /// The pre-directory holder search: peek every other L2 in ascending
    /// order. Kept as the oracle the directory-backed [`Self::find_holder`]
    /// is property-tested (and debug-asserted) against.
    #[doc(hidden)]
    pub fn find_holder_scan(&self, g: usize, line: LineAddr) -> Option<usize> {
        let my_chip = self.cfg.groups[g].chip;
        let mut best: Option<usize> = None;
        for other in 0..self.l2.len() {
            if other == g {
                continue;
            }
            match self.l2[other].peek(line) {
                Some(MesiState::Modified) => return Some(other),
                Some(_) => {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            self.cfg.groups[other].chip == my_chip
                                && self.cfg.groups[b].chip != my_chip
                        }
                    };
                    if better {
                        best = Some(other);
                    }
                }
                None => {}
            }
        }
        best
    }

    /// Directory-backed holder search (test hook; same routine the miss
    /// paths use).
    #[doc(hidden)]
    pub fn find_holder_directory(&self, g: usize, line: LineAddr) -> Option<usize> {
        self.find_holder(g, line)
    }

    /// The owner directory's holder bitmap for `line` (test hook).
    #[doc(hidden)]
    pub fn directory_mask(&self, line: LineAddr) -> u64 {
        self.directory.get(line.0)
    }

    /// Residency bitmap rebuilt by peeking every L2 (test oracle for
    /// [`Self::directory_mask`]).
    #[doc(hidden)]
    pub fn residency_mask_scan(&self, line: LineAddr) -> u64 {
        let mut mask = 0u64;
        for (g, l2) in self.l2.iter().enumerate() {
            if l2.peek(line).is_some() {
                mask |= 1 << g;
            }
        }
        mask
    }

    fn c2c_latency(&self, a: usize, b: usize) -> u64 {
        if self.cfg.groups[a].chip == self.cfg.groups[b].chip {
            self.cfg.c2c_intra_chip
        } else {
            self.cfg.c2c_inter_chip
        }
    }

    fn record_snoop(&mut self, a: usize, b: usize) {
        self.stats.snoop_transactions += 1;
        if self.cfg.groups[a].chip == self.cfg.groups[b].chip {
            self.stats.snoops_intra_chip += 1;
        } else {
            self.stats.snoops_inter_chip += 1;
        }
    }

    /// Invalidate every copy of `line` in L2s other than `g` (and the L1s of
    /// the cores behind them). Returns how many L2 copies were destroyed.
    fn invalidate_remote_copies(&mut self, g: usize, line: LineAddr) -> u64 {
        let mut count = 0;
        let mut remote = self.directory.get(line.0) & !(1u64 << g);
        while remote != 0 {
            let other = remote.trailing_zeros() as usize;
            remote &= remote - 1;
            // The directory says `other` holds the line, so the remove must
            // succeed; a remote Modified copy being invalidated by BusRdX
            // hands its data to the requester; no memory writeback. (A
            // remote M copy can only exist here on the write-miss path.)
            let state = self.l2[other].remove(line);
            debug_assert!(state.is_some(), "directory bit set for non-resident line");
            count += 1;
            self.stats.invalidations += 1;
            self.history[other].set_bit(line.0, HIST_LOST);
            self.directory.clear_bit(line.0, other as u32);
            self.back_invalidate_l1s(other, line);
        }
        count
    }

    /// Drop `line` from the L1s of every core behind L2 `g` (inclusive
    /// back-invalidation).
    fn back_invalidate_l1s(&mut self, g: usize, line: LineAddr) {
        for &c in &self.cfg.groups[g].cores {
            self.l1d[c].remove(line);
            self.l1i[c].remove(line);
        }
    }

    /// Drop `line` from the L1s of `core`'s siblings under the same L2.
    fn invalidate_sibling_l1s(&mut self, core: usize, g: usize, line: LineAddr) {
        for &c in &self.cfg.groups[g].cores {
            if c != core && self.l1d[c].remove(line).is_some() {
                self.l1_sibling_invalidations += 1;
            }
        }
    }

    /// Install `line` into L2 `g`, recording residence and handling the
    /// evicted victim (writeback if dirty, back-invalidate L1s).
    fn install_l2(&mut self, g: usize, line: LineAddr, state: MesiState) {
        self.history[g].set_bit(line.0, HIST_EVER);
        self.directory.set_bit(line.0, g as u32);
        if let Some(ev) = self.l2[g].insert(line, state) {
            self.directory.clear_bit(ev.addr.0, g as u32);
            if ev.state.dirty() {
                self.stats.writebacks += 1;
            }
            self.back_invalidate_l1s(g, ev.addr);
        }
    }

    fn classify_miss(&mut self, g: usize, line: LineAddr) {
        let flags = self.history[g].get(line.0);
        let kind = if flags & (1 << HIST_LOST) != 0 {
            self.history[g].clear_bit(line.0, HIST_LOST);
            MissKind::Coherence
        } else if flags & (1 << HIST_EVER) != 0 {
            MissKind::Capacity
        } else {
            MissKind::Cold
        };
        self.stats.record_l2_miss(kind);
    }

    fn fill_l1(&mut self, core: usize, kind: AccessKind, line: LineAddr) {
        self.l1_mut(core, kind)
            .insert_if_absent(line, MesiState::Shared);
    }

    /// Check the MESI exclusivity invariant for one line: if any L2 holds it
    /// Modified or Exclusive, no other L2 may hold it at all. Used by
    /// property tests. Audits only the L2s the owner directory names, so
    /// the check is O(popcount) rather than O(groups).
    pub fn mesi_invariant_holds(&self, line: LineAddr) -> bool {
        let mut holders = self.directory.get(line.0);
        let n_holders = holders.count_ones() as usize;
        let mut exclusive_holders = 0usize;
        while holders != 0 {
            let g = holders.trailing_zeros() as usize;
            holders &= holders - 1;
            match self.l2[g].peek(line) {
                Some(MesiState::Modified) | Some(MesiState::Exclusive) => exclusive_holders += 1,
                Some(_) => {}
                None => return false, // directory bit for a non-resident line
            }
        }
        exclusive_holders == 0 || n_holders == 1
    }

    /// Check the inclusion invariant: every line resident in a core's L1
    /// must also be resident in that core's L2 (the model back-invalidates
    /// L1s on L2 eviction/invalidation, so this must always hold). Used by
    /// property tests.
    pub fn inclusion_holds(&self) -> bool {
        for core in 0..self.core_to_l2.len() {
            let g = self.core_to_l2[core];
            for l1 in [&self.l1d[core], &self.l1i[core]] {
                for (addr, _) in l1.lines() {
                    if self.l2[g].peek(addr).is_none() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// All distinct lines currently resident in any L2 (diagnostics).
    pub fn resident_lines(&self) -> HashSet<LineAddr> {
        self.l2
            .iter()
            .flat_map(|c| c.lines().map(|(a, _)| a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, L2Group};

    /// Small hierarchy: 4 cores, 2 L2s (one per chip), tiny caches.
    fn small() -> MemoryHierarchy {
        let l1 = CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 64 * 32,
            line_size: 64,
            ways: 4,
            latency: 8,
        };
        MemoryHierarchy::new(HierarchyConfig {
            l1i: l1,
            l1d: l1,
            l2,
            mem_latency: 200,
            c2c_intra_chip: 40,
            c2c_inter_chip: 120,
            write_invalidate_penalty: 20,
            numa_remote_penalty: 0,
            groups: vec![
                L2Group {
                    cores: vec![0, 1],
                    chip: 0,
                },
                L2Group {
                    cores: vec![2, 3],
                    chip: 1,
                },
            ],
        })
    }

    #[test]
    fn cold_read_fetches_from_memory() {
        let mut h = small();
        let out = h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        assert!(!out.l1_hit && !out.l2_hit && !out.snooped);
        assert_eq!(out.cycles, 2 + 8 + 200);
        assert_eq!(h.stats().memory_fetches, 1);
        assert_eq!(h.stats().l2_cold_misses, 1);
    }

    #[test]
    fn second_read_hits_l1() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        let out = h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        assert!(out.l1_hit);
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn sibling_core_hits_shared_l2() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        let out = h.access(1, 0x1000, MemOp::Read, AccessKind::Data);
        assert!(!out.l1_hit && out.l2_hit && !out.snooped);
        assert_eq!(out.cycles, 2 + 8);
        assert_eq!(h.stats().snoop_transactions, 0);
    }

    #[test]
    fn remote_read_is_a_snoop_transaction() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        let out = h.access(2, 0x1000, MemOp::Read, AccessKind::Data);
        assert!(out.snooped);
        assert_eq!(out.cycles, 2 + 8 + 120); // inter-chip transfer
        assert_eq!(h.stats().snoop_transactions, 1);
        assert_eq!(h.stats().snoops_inter_chip, 1);
        // Both copies are now Shared.
        assert_eq!(
            h.l2_state(0, LineAddr::of(0x1000, 6)),
            Some(MesiState::Shared)
        );
        assert_eq!(
            h.l2_state(1, LineAddr::of(0x1000, 6)),
            Some(MesiState::Shared)
        );
    }

    #[test]
    fn write_to_shared_line_invalidates_remote_copy() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        h.access(2, 0x1000, MemOp::Read, AccessKind::Data); // both Shared
        let out = h.access(0, 0x1000, MemOp::Write, AccessKind::Data);
        assert_eq!(h.stats().invalidations, 1);
        assert_eq!(h.l2_state(1, LineAddr::of(0x1000, 6)), None);
        assert_eq!(
            h.l2_state(0, LineAddr::of(0x1000, 6)),
            Some(MesiState::Modified)
        );
        assert!(out.cycles >= 20); // paid the invalidate penalty
    }

    #[test]
    fn invalidated_line_remiss_is_coherence_miss() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        h.access(2, 0x1000, MemOp::Read, AccessKind::Data);
        h.access(0, 0x1000, MemOp::Write, AccessKind::Data); // invalidates L2 1
        h.access(2, 0x1000, MemOp::Read, AccessKind::Data); // must re-fetch
        assert_eq!(h.stats().l2_coherence_misses, 1);
    }

    #[test]
    fn dirty_remote_line_is_written_back_on_read() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Write, AccessKind::Data); // M in L2 0
        h.access(2, 0x1000, MemOp::Read, AccessKind::Data);
        assert_eq!(h.stats().writebacks, 1);
        assert_eq!(
            h.l2_state(0, LineAddr::of(0x1000, 6)),
            Some(MesiState::Shared)
        );
    }

    #[test]
    fn write_miss_steals_dirty_line_without_writeback() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Write, AccessKind::Data); // M in L2 0
        h.access(2, 0x1000, MemOp::Write, AccessKind::Data); // BusRdX
        assert_eq!(h.stats().writebacks, 0);
        assert_eq!(h.stats().invalidations, 1);
        assert_eq!(h.stats().snoop_transactions, 1);
        assert_eq!(h.l2_state(0, LineAddr::of(0x1000, 6)), None);
        assert_eq!(
            h.l2_state(1, LineAddr::of(0x1000, 6)),
            Some(MesiState::Modified)
        );
    }

    #[test]
    fn exclusive_upgrade_is_silent() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data); // E
        let inv_before = h.stats().invalidations;
        h.access(0, 0x1000, MemOp::Write, AccessKind::Data); // E→M, silent
        assert_eq!(h.stats().invalidations, inv_before);
        assert_eq!(
            h.l2_state(0, LineAddr::of(0x1000, 6)),
            Some(MesiState::Modified)
        );
    }

    #[test]
    fn sibling_l1_copy_invalidated_on_write() {
        let mut h = small();
        h.access(1, 0x1000, MemOp::Read, AccessKind::Data); // core 1 L1 has it
        h.access(0, 0x1000, MemOp::Write, AccessKind::Data); // sibling writes
        assert_eq!(h.l1_sibling_invalidations(), 1);
        // Not counted as an interconnect invalidation.
        assert_eq!(h.stats().invalidations, 0);
        // Core 1's next read must come from L2, not a stale L1.
        let out = h.access(1, 0x1000, MemOp::Read, AccessKind::Data);
        assert!(!out.l1_hit && out.l2_hit);
    }

    #[test]
    fn capacity_miss_classified_after_eviction() {
        let mut h = small();
        // L2 is 4-way x 8 sets. Fill one set beyond capacity: lines with the
        // same set index are 8 apart (32 lines / 4 ways = 8 sets).
        for i in 0..5u64 {
            h.access(0, i * 8 * 64, MemOp::Read, AccessKind::Data);
        }
        // Line 0 was evicted; re-reading it is a capacity miss.
        h.access(0, 0, MemOp::Read, AccessKind::Data);
        assert_eq!(h.stats().l2_capacity_misses, 1);
        assert_eq!(h.stats().l2_cold_misses, 5);
    }

    #[test]
    fn intra_chip_snoop_is_cheaper() {
        // Rebuild with both L2s on one chip to compare.
        let l1 = CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 64 * 32,
            line_size: 64,
            ways: 4,
            latency: 8,
        };
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            l1i: l1,
            l1d: l1,
            l2,
            mem_latency: 200,
            c2c_intra_chip: 40,
            c2c_inter_chip: 120,
            write_invalidate_penalty: 20,
            numa_remote_penalty: 0,
            groups: vec![
                L2Group {
                    cores: vec![0, 1],
                    chip: 0,
                },
                L2Group {
                    cores: vec![2, 3],
                    chip: 0,
                },
            ],
        });
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        let out = h.access(2, 0x1000, MemOp::Read, AccessKind::Data);
        assert_eq!(out.cycles, 2 + 8 + 40);
        assert_eq!(h.stats().snoops_intra_chip, 1);
        assert_eq!(h.stats().snoops_inter_chip, 0);
    }

    #[test]
    fn mesi_invariant_after_mixed_traffic() {
        let mut h = small();
        let addrs = [0x0u64, 0x1000, 0x2000, 0x40, 0x1040];
        for (i, &a) in addrs.iter().cycle().take(100).enumerate() {
            let core = i % 4;
            let op = if i % 3 == 0 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            h.access(core, a, op, AccessKind::Data);
            for &chk in &addrs {
                assert!(h.mesi_invariant_holds(LineAddr::of(chk, 6)));
            }
        }
    }

    #[test]
    fn numa_remote_fetch_pays_penalty_and_is_counted() {
        let l1 = CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 64 * 32,
            line_size: 64,
            ways: 4,
            latency: 8,
        };
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            l1i: l1,
            l1d: l1,
            l2,
            mem_latency: 200,
            c2c_intra_chip: 40,
            c2c_inter_chip: 120,
            write_invalidate_penalty: 20,
            numa_remote_penalty: 150,
            groups: vec![
                L2Group {
                    cores: vec![0, 1],
                    chip: 0,
                },
                L2Group {
                    cores: vec![2, 3],
                    chip: 1,
                },
            ],
        });
        // Core 0 (chip 0) fetches a page homed on chip 1: remote.
        let remote = h.access_numa(0, 0x1000, MemOp::Read, AccessKind::Data, Some(1));
        assert_eq!(remote.cycles, 2 + 8 + 200 + 150);
        // Core 0 fetches a page homed on chip 0: local.
        let local = h.access_numa(0, 0x2000, MemOp::Read, AccessKind::Data, Some(0));
        assert_eq!(local.cycles, 2 + 8 + 200);
        assert_eq!(h.stats().mem_fetches_remote, 1);
        assert_eq!(h.stats().mem_fetches_local, 1);
        assert_eq!(h.stats().memory_fetches, 2);
    }

    #[test]
    fn uma_access_counts_no_numa_fetches() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Data);
        assert_eq!(h.stats().memory_fetches, 1);
        assert_eq!(h.stats().mem_fetches_local, 0);
        assert_eq!(h.stats().mem_fetches_remote, 0);
    }

    #[test]
    fn numa_penalty_not_charged_on_cache_to_cache() {
        let l1 = CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 64 * 32,
            line_size: 64,
            ways: 4,
            latency: 8,
        };
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            l1i: l1,
            l1d: l1,
            l2,
            mem_latency: 200,
            c2c_intra_chip: 40,
            c2c_inter_chip: 120,
            write_invalidate_penalty: 20,
            numa_remote_penalty: 150,
            groups: vec![
                L2Group {
                    cores: vec![0, 1],
                    chip: 0,
                },
                L2Group {
                    cores: vec![2, 3],
                    chip: 1,
                },
            ],
        });
        h.access_numa(0, 0x1000, MemOp::Read, AccessKind::Data, Some(1)); // remote fill
                                                                          // Core 2 now reads it cache-to-cache — NUMA is irrelevant.
        let out = h.access_numa(2, 0x1000, MemOp::Read, AccessKind::Data, Some(1));
        assert!(out.snooped);
        assert_eq!(out.cycles, 2 + 8 + 120);
        assert_eq!(h.stats().mem_fetches_remote, 1);
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut h = small();
        h.access(0, 0x1000, MemOp::Read, AccessKind::Instr);
        assert_eq!(h.stats().l1i_misses, 1);
        assert_eq!(h.stats().l1d_misses, 0);
        let out = h.access(0, 0x1000, MemOp::Read, AccessKind::Instr);
        assert!(out.l1_hit);
        assert_eq!(h.stats().l1i_hits, 1);
    }
}
