//! Cache-hierarchy substrate with MESI coherence and the event counters the
//! paper measures.
//!
//! The paper evaluates thread mappings by their effect on three hardware
//! events (Figures 7–9, Table IV):
//!
//! * **cache-line invalidations** — a write to a line another cache holds
//!   forces that copy invalid (MESI `BusRdX`/upgrade),
//! * **snoop transactions** — a miss serviced by *another cache* instead of
//!   memory (cache-to-cache transfer),
//! * **L2 misses** — with a taxonomy (cold / capacity / coherence) matching
//!   the discussion in Section III-A.
//!
//! The modelled hierarchy mirrors the paper's Figure 3 / Table II: private
//! write-through L1s per core and write-back MESI L2s shared by groups of
//! cores, all L2s connected by a snooping bus whose cache-to-cache latency
//! differs between intra- and inter-chip transfers.

pub mod cache;
pub mod config;
pub mod domain;
pub mod hierarchy;
mod lineset;
pub mod mesi;
pub mod stats;

pub use cache::{Cache, EvictedLine, LineAddr};
pub use config::{CacheConfig, HierarchyConfig, L2Group};
pub use domain::{CohMsg, CoherenceImage, DomainHierarchy};
pub use hierarchy::{AccessKind, AccessOutcome, MemOp, MemoryHierarchy};
pub use mesi::MesiState;
pub use stats::{CacheStats, MissKind};
