//! A generic set-associative cache of line metadata with LRU replacement.
//!
//! Only metadata is stored — tags, MESI state, LRU timestamps — because the
//! simulator never needs line *contents* (workloads compute on native Rust
//! data). One structure serves both L1s (which ignore the MESI field beyond
//! valid/invalid) and the coherent L2s.
//!
//! ## Two storage layouts, gated on intended lifetime
//!
//! * **Per-run** ([`Cache::new`]): per-set `Vec<Line>` grown lazily. A
//!   one-shot simulation builds a fresh hierarchy per run and touches a
//!   sparse fraction of the paper L2's 12288 sets, so paying allocation
//!   only for sets actually used wins — preallocating everything would be
//!   pure constructor overhead that the run never amortizes.
//! * **Resident** ([`Cache::new_resident`]): flat structure-of-arrays set
//!   storage — one contiguous `addrs` array and one `metas` array, each
//!   `n_sets × ways`, with per-set occupancy counts. A long-lived
//!   hierarchy probed millions of times (the serve path's shared resident
//!   state) amortizes the up-front footprint immediately, and the 4-wide
//!   tag compare then streams *contiguous* 8-byte tags instead of
//!   striding over 16-byte AoS lines: half the bytes per probed way, and
//!   a layout the compiler can keep in vector registers.
//!
//! Both layouts implement identical semantics — same LRU stamps, same
//! eviction choices (the resident layout's swap-into-victim-slot compaction
//! is exactly `Vec::swap_remove`) — which the parity test drives with a
//! randomized operation trace.

use crate::config::CacheConfig;
use crate::mesi::MesiState;

/// A cache-line-granular physical address (physical address >> line shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Line address of a byte-granular physical address.
    #[inline]
    pub fn of(paddr: u64, line_shift: u32) -> Self {
        LineAddr(paddr >> line_shift)
    }
}

/// A line pushed out of the cache by replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Which line was evicted.
    pub addr: LineAddr,
    /// The state it was in (dirty ⇒ writeback needed).
    pub state: MesiState,
}

/// One resident line, packed to 16 bytes: the MESI state lives in the low
/// two bits of `meta`, the LRU stamp in the high bits. Whole-word `meta`
/// comparison orders lines by recency (stamps are unique — every probe
/// that stamps bumps the cache clock), which keeps the victim scan a bare
/// `u64` minimum.
#[derive(Debug, Clone)]
struct Line {
    addr: u64,
    meta: u64,
}

#[inline]
fn encode_state(state: MesiState) -> u64 {
    match state {
        MesiState::Modified => 0,
        MesiState::Exclusive => 1,
        MesiState::Shared => 2,
        MesiState::Invalid => 3,
    }
}

#[inline]
fn decode_state(meta: u64) -> MesiState {
    match meta & 3 {
        0 => MesiState::Modified,
        1 => MesiState::Exclusive,
        2 => MesiState::Shared,
        _ => MesiState::Invalid,
    }
}

#[inline]
fn pack_meta(state: MesiState, stamp: u64) -> u64 {
    (stamp << 2) | encode_state(state)
}

/// Position of the first index `i < n` with `tag(i) == addr`, scanning
/// four tags per iteration.
///
/// The four compares are evaluated unconditionally and OR-combined before
/// the single branch, u64x4-style: the compiler keeps all four (strided)
/// tag loads in flight instead of chaining a load→compare→branch per way,
/// which measurably beats the scalar scan on the paper's 8-way L2 (see the
/// `tag_compare` benchmark). Tag order inside a set is unrelated to
/// recency (LRU lives in `meta`), so returning the first match preserves
/// behaviour exactly. On the resident SoA layout the tags are contiguous
/// `u64`s, so the four loads sit in one or two cache lines.
#[inline(always)]
fn scan4(n: usize, addr: u64, tag: impl Fn(usize) -> u64) -> Option<usize> {
    let mut i = 0;
    while i + 4 <= n {
        let h0 = tag(i) == addr;
        let h1 = tag(i + 1) == addr;
        let h2 = tag(i + 2) == addr;
        let h3 = tag(i + 3) == addr;
        if h0 | h1 | h2 | h3 {
            let off = if h0 {
                0
            } else if h1 {
                1
            } else if h2 {
                2
            } else {
                3
            };
            return Some(i + off);
        }
        i += 4;
    }
    while i < n {
        if tag(i) == addr {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Way index of `addr` within `set`, if resident (4-wide unrolled scan).
#[inline(always)]
fn find_way(set: &[Line], addr: u64) -> Option<usize> {
    scan4(set.len(), addr, |i| set[i].addr)
}

/// Scalar way scan over `(tag, meta)` pairs — the pre-unroll baseline,
/// exposed only so the `tag_compare` benchmark can A/B it against
/// [`way_scan_unrolled`] on the exact 16-byte line layout the caches use.
#[doc(hidden)]
pub fn way_scan_scalar(set: &[(u64, u64)], addr: u64) -> Option<usize> {
    set.iter().position(|&(tag, _)| tag == addr)
}

/// Unrolled way scan over `(tag, meta)` pairs — the same 4-wide compare
/// the caches run internally, exposed for the `tag_compare` benchmark.
#[doc(hidden)]
pub fn way_scan_unrolled(set: &[(u64, u64)], addr: u64) -> Option<usize> {
    scan4(set.len(), addr, |i| set[i].0)
}

/// Set storage, chosen by the cache's intended lifetime (see the module
/// docs). Every operation is expressed against this narrow interface so
/// the two layouts cannot drift semantically.
#[derive(Debug, Clone)]
enum SetStore {
    /// Lazily-grown per-set AoS vectors (per-run default).
    PerRun { sets: Vec<Vec<Line>> },
    /// Flat SoA arrays preallocated to `n_sets × ways` (resident).
    /// Occupied ways of a set are packed at the front of its lane; a
    /// removal swaps the last occupied way into the hole, mirroring
    /// `Vec::swap_remove` exactly.
    Resident {
        ways: usize,
        /// Occupied ways per set.
        occ: Vec<u32>,
        /// `addrs[set * ways + way]` — contiguous tags per set lane.
        addrs: Vec<u64>,
        /// `metas[set * ways + way]` — stamps + states, same indexing.
        metas: Vec<u64>,
    },
}

impl SetStore {
    fn per_run(n_sets: usize) -> Self {
        SetStore::PerRun {
            sets: vec![Vec::new(); n_sets],
        }
    }

    fn resident(n_sets: usize, ways: usize) -> Self {
        SetStore::Resident {
            ways,
            occ: vec![0; n_sets],
            addrs: vec![u64::MAX; n_sets * ways],
            metas: vec![0; n_sets * ways],
        }
    }

    /// Occupied ways in `set`.
    #[inline]
    fn len(&self, set: usize) -> usize {
        match self {
            SetStore::PerRun { sets } => sets[set].len(),
            SetStore::Resident { occ, .. } => occ[set] as usize,
        }
    }

    /// Way holding `addr` in `set`, if any (4-wide tag compare).
    #[inline]
    fn find(&self, set: usize, addr: u64) -> Option<usize> {
        match self {
            SetStore::PerRun { sets } => find_way(&sets[set], addr),
            SetStore::Resident {
                ways, occ, addrs, ..
            } => {
                let lane = &addrs[set * ways..set * ways + occ[set] as usize];
                scan4(lane.len(), addr, |i| lane[i])
            }
        }
    }

    #[inline]
    fn meta(&self, set: usize, way: usize) -> u64 {
        match self {
            SetStore::PerRun { sets } => sets[set][way].meta,
            SetStore::Resident { ways, metas, .. } => metas[set * ways + way],
        }
    }

    #[inline]
    fn set_meta(&mut self, set: usize, way: usize, meta: u64) {
        match self {
            SetStore::PerRun { sets } => sets[set][way].meta = meta,
            SetStore::Resident { ways, metas, .. } => metas[set * *ways + way] = meta,
        }
    }

    /// Way with the minimal `meta` (the LRU victim) in a non-empty set.
    #[inline]
    fn min_meta_way(&self, set: usize) -> usize {
        match self {
            SetStore::PerRun { sets } => {
                sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.meta)
                    .expect("full set is non-empty")
                    .0
            }
            SetStore::Resident {
                ways, occ, metas, ..
            } => {
                let lane = &metas[set * ways..set * ways + occ[set] as usize];
                lane.iter()
                    .enumerate()
                    .min_by_key(|(_, m)| **m)
                    .expect("full set is non-empty")
                    .0
            }
        }
    }

    /// Remove `way` from `set`, swapping the last occupied way into the
    /// hole. Returns the removed `(addr, meta)`.
    #[inline]
    fn swap_remove(&mut self, set: usize, way: usize) -> (u64, u64) {
        match self {
            SetStore::PerRun { sets } => {
                let line = sets[set].swap_remove(way);
                (line.addr, line.meta)
            }
            SetStore::Resident {
                ways,
                occ,
                addrs,
                metas,
            } => {
                let base = set * *ways;
                let last = occ[set] as usize - 1;
                let removed = (addrs[base + way], metas[base + way]);
                addrs[base + way] = addrs[base + last];
                metas[base + way] = metas[base + last];
                addrs[base + last] = u64::MAX;
                occ[set] = last as u32;
                removed
            }
        }
    }

    /// Append a line to `set`. The caller guarantees a free way.
    #[inline]
    fn push(&mut self, set: usize, addr: u64, meta: u64) {
        match self {
            SetStore::PerRun { sets } => sets[set].push(Line { addr, meta }),
            SetStore::Resident {
                ways,
                occ,
                addrs,
                metas,
            } => {
                let n = occ[set] as usize;
                debug_assert!(n < *ways, "push into a full set");
                let slot = set * *ways + n;
                addrs[slot] = addr;
                metas[slot] = meta;
                occ[set] = (n + 1) as u32;
            }
        }
    }

    fn occupancy(&self) -> usize {
        match self {
            SetStore::PerRun { sets } => sets.iter().map(Vec::len).sum(),
            SetStore::Resident { occ, .. } => occ.iter().map(|&n| n as usize).sum(),
        }
    }
}

/// Set-associative cache of line metadata.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set line storage; layout gated on intended lifetime.
    store: SetStore,
    n_sets: usize,
    /// `n_sets - 1` when the set count is a power of two, else `usize::MAX`.
    /// Lets the per-access index computation use a mask instead of a
    /// hardware divide.
    set_mask: usize,
    /// Lemire fastmod magic, `⌈2^64 / n_sets⌉`, for non-power-of-two set
    /// counts (the paper's 12288-set L2): `addr % n_sets` becomes two
    /// multiplies for any 32-bit line address.
    modmul: u64,
    clock: u64,
    /// Address of the most recently stamped line (`u64::MAX` when unset),
    /// with its current state. Because this line holds the globally
    /// maximal LRU stamp, a repeat probe may return its state without
    /// re-stamping: bumping the maximum again cannot change the relative
    /// stamp order that replacement decisions depend on. Back-to-back
    /// probes of the same line — the common case under spatial locality —
    /// then skip the set scan entirely.
    hot_addr: u64,
    hot_state: MesiState,
}

impl Cache {
    /// Create an empty cache with lazily-grown per-run set storage — the
    /// right layout when the cache lives for one simulated run.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        Cache::with_store(config, SetStore::per_run)
    }

    /// Create an empty cache with preallocated flat SoA set storage — the
    /// right layout when the cache is resident: built once and probed for
    /// the lifetime of a process (the serve path's shared hierarchy). The
    /// full `sets × ways` footprint is paid up front; tag scans then run
    /// over contiguous `u64` arrays. Semantics are identical to
    /// [`Cache::new`].
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new_resident(config: CacheConfig) -> Self {
        Cache::with_store(config, |n_sets| SetStore::resident(n_sets, config.ways))
    }

    fn with_store(config: CacheConfig, store: impl FnOnce(usize) -> SetStore) -> Self {
        config.validate();
        let n_sets = config.sets();
        Cache {
            config,
            store: store(n_sets),
            n_sets,
            set_mask: if n_sets.is_power_of_two() {
                n_sets - 1
            } else {
                usize::MAX
            },
            modmul: (u64::MAX / n_sets as u64).wrapping_add(1),
            clock: 0,
            hot_addr: u64::MAX,
            hot_state: MesiState::Invalid,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Whether this cache uses the resident (SoA, preallocated) layout.
    pub fn is_resident(&self) -> bool {
        matches!(self.store, SetStore::Resident { .. })
    }

    #[inline]
    fn set_index(&self, addr: LineAddr) -> usize {
        if self.set_mask != usize::MAX {
            (addr.0 as usize) & self.set_mask
        } else if addr.0 <= u32::MAX as u64 {
            // Lemire's fastmod: exact `addr % n_sets` for 32-bit operands.
            let low = self.modmul.wrapping_mul(addr.0);
            ((low as u128 * self.n_sets as u128) >> 64) as usize
        } else {
            (addr.0 as usize) % self.n_sets
        }
    }

    /// State of `addr` if resident, touching LRU.
    #[inline]
    pub fn touch(&mut self, addr: LineAddr) -> Option<MesiState> {
        if addr.0 == self.hot_addr {
            return Some(self.hot_state);
        }
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(addr);
        let way = self.store.find(set, addr.0)?;
        let meta = self.store.meta(set, way);
        let state = decode_state(meta);
        self.store.set_meta(set, way, (clock << 2) | (meta & 3));
        self.hot_addr = addr.0;
        self.hot_state = state;
        Some(state)
    }

    /// State of `addr` if resident, without touching LRU (snoop path).
    #[inline]
    pub fn peek(&self, addr: LineAddr) -> Option<MesiState> {
        if addr.0 == self.hot_addr {
            return Some(self.hot_state);
        }
        let set = self.set_index(addr);
        self.store
            .find(set, addr.0)
            .map(|way| decode_state(self.store.meta(set, way)))
    }

    /// Change the state of a resident line. Returns `false` if absent.
    pub fn set_state(&mut self, addr: LineAddr, state: MesiState) -> bool {
        debug_assert_ne!(state, MesiState::Invalid, "use remove() to invalidate");
        let set = self.set_index(addr);
        if let Some(way) = self.store.find(set, addr.0) {
            let meta = self.store.meta(set, way);
            self.store
                .set_meta(set, way, (meta & !3) | encode_state(state));
            if addr.0 == self.hot_addr {
                self.hot_state = state;
            }
            true
        } else {
            false
        }
    }

    /// Change the state of a resident line, returning its previous state
    /// (`None` if absent). One set scan where a `peek` + [`Cache::set_state`]
    /// pair would take two — the coherence miss paths read the old state and
    /// write the new one for every holder the owner directory names.
    #[inline]
    pub fn replace_state(&mut self, addr: LineAddr, state: MesiState) -> Option<MesiState> {
        debug_assert_ne!(state, MesiState::Invalid, "use remove() to invalidate");
        let set = self.set_index(addr);
        let way = self.store.find(set, addr.0)?;
        let meta = self.store.meta(set, way);
        let old = decode_state(meta);
        self.store
            .set_meta(set, way, (meta & !3) | encode_state(state));
        if addr.0 == self.hot_addr {
            self.hot_state = state;
        }
        Some(old)
    }

    /// Evict the LRU way of a full `set`, clearing the hot-line memo if it
    /// was the victim.
    #[inline]
    fn evict_lru(&mut self, set: usize) -> EvictedLine {
        let victim_way = self.store.min_meta_way(set);
        let (vaddr, vmeta) = self.store.swap_remove(set, victim_way);
        if vaddr == self.hot_addr {
            self.hot_addr = u64::MAX;
        }
        EvictedLine {
            addr: LineAddr(vaddr),
            state: decode_state(vmeta),
        }
    }

    /// Install `addr` with `state`, evicting the LRU line of the set if it
    /// is full. Returns the evicted line, if any.
    ///
    /// # Panics
    /// Panics (debug) if `addr` is already resident — callers must use
    /// [`Cache::set_state`] for state changes.
    pub fn insert(&mut self, addr: LineAddr, state: MesiState) -> Option<EvictedLine> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(addr);
        debug_assert!(
            self.store.find(set, addr.0).is_none(),
            "insert of already-resident line {addr:?}"
        );
        let evicted = if self.store.len(set) == self.config.ways {
            Some(self.evict_lru(set))
        } else {
            None
        };
        self.store.push(set, addr.0, pack_meta(state, clock));
        self.hot_addr = addr.0;
        self.hot_state = state;
        evicted
    }

    /// Write-allocate probe: stamp LRU if `addr` is resident, else install
    /// it with `state` (evicting the set's LRU line if full). One set scan
    /// instead of the touch-then-insert pair; the relative order of LRU
    /// stamps — all that replacement decisions depend on — is identical.
    /// Returns whether the line was already resident, plus any eviction.
    #[inline]
    pub fn touch_or_insert(
        &mut self,
        addr: LineAddr,
        state: MesiState,
    ) -> (bool, Option<EvictedLine>) {
        if addr.0 == self.hot_addr {
            return (true, None);
        }
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(addr);
        if let Some(way) = self.store.find(set, addr.0) {
            let meta = self.store.meta(set, way);
            let resident = decode_state(meta);
            self.store.set_meta(set, way, (clock << 2) | (meta & 3));
            self.hot_addr = addr.0;
            self.hot_state = resident;
            return (true, None);
        }
        let evicted = if self.store.len(set) == self.config.ways {
            Some(self.evict_lru(set))
        } else {
            None
        };
        self.store.push(set, addr.0, pack_meta(state, clock));
        self.hot_addr = addr.0;
        self.hot_state = state;
        (false, evicted)
    }

    /// Install `addr` with `state` unless it is already resident; a
    /// resident line is left untouched (no LRU stamp — the peek-then-insert
    /// pair this replaces did not stamp either). Returns any eviction.
    #[inline]
    pub fn insert_if_absent(&mut self, addr: LineAddr, state: MesiState) -> Option<EvictedLine> {
        if addr.0 == self.hot_addr {
            return None;
        }
        let set = self.set_index(addr);
        if self.store.find(set, addr.0).is_some() {
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        let evicted = if self.store.len(set) == self.config.ways {
            Some(self.evict_lru(set))
        } else {
            None
        };
        self.store.push(set, addr.0, pack_meta(state, clock));
        self.hot_addr = addr.0;
        self.hot_state = state;
        evicted
    }

    /// Remove `addr` (coherence invalidation or back-invalidation). Returns
    /// the state it was in, if resident.
    #[inline]
    pub fn remove(&mut self, addr: LineAddr) -> Option<MesiState> {
        if addr.0 == self.hot_addr {
            self.hot_addr = u64::MAX;
        }
        let set = self.set_index(addr);
        let way = self.store.find(set, addr.0)?;
        let (_, meta) = self.store.swap_remove(set, way);
        Some(decode_state(meta))
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.store.occupancy()
    }

    /// Iterate over all resident lines as `(addr, state)`.
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, MesiState)> + '_ {
        let iter: Box<dyn Iterator<Item = (LineAddr, MesiState)> + '_> = match &self.store {
            SetStore::PerRun { sets } => Box::new(
                sets.iter()
                    .flatten()
                    .map(|l| (LineAddr(l.addr), decode_state(l.meta))),
            ),
            SetStore::Resident {
                ways,
                occ,
                addrs,
                metas,
            } => Box::new((0..occ.len()).flat_map(move |set| {
                let base = set * ways;
                (0..occ[set] as usize)
                    .map(move |w| (LineAddr(addrs[base + w]), decode_state(metas[base + w])))
            })),
        };
        iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways of 64-byte lines.
        Cache::new(CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn insert_then_touch() {
        let mut c = tiny();
        assert_eq!(c.touch(LineAddr(1)), None);
        c.insert(LineAddr(1), MesiState::Exclusive);
        assert_eq!(c.touch(LineAddr(1)), Some(MesiState::Exclusive));
    }

    #[test]
    fn peek_does_not_update_lru() {
        let mut c = tiny();
        // Set 0: lines 0, 4 (4 sets → addr & 3).
        c.insert(LineAddr(0), MesiState::Shared);
        c.insert(LineAddr(4), MesiState::Shared);
        // Peek line 0 — should NOT protect it from eviction.
        assert_eq!(c.peek(LineAddr(0)), Some(MesiState::Shared));
        let ev = c.insert(LineAddr(8), MesiState::Shared).unwrap();
        assert_eq!(ev.addr, LineAddr(0));
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), MesiState::Shared);
        c.insert(LineAddr(4), MesiState::Shared);
        c.touch(LineAddr(0));
        let ev = c.insert(LineAddr(8), MesiState::Shared).unwrap();
        assert_eq!(ev.addr, LineAddr(4));
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = tiny();
        c.insert(LineAddr(0), MesiState::Modified);
        c.insert(LineAddr(4), MesiState::Exclusive);
        let ev = c.insert(LineAddr(8), MesiState::Shared).unwrap();
        assert_eq!(ev.state, MesiState::Modified);
        assert!(ev.state.dirty());
    }

    #[test]
    fn remove_returns_state() {
        let mut c = tiny();
        c.insert(LineAddr(5), MesiState::Modified);
        assert_eq!(c.remove(LineAddr(5)), Some(MesiState::Modified));
        assert_eq!(c.remove(LineAddr(5)), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = tiny();
        c.insert(LineAddr(2), MesiState::Exclusive);
        assert!(c.set_state(LineAddr(2), MesiState::Modified));
        assert_eq!(c.peek(LineAddr(2)), Some(MesiState::Modified));
        assert!(!c.set_state(LineAddr(99), MesiState::Shared));
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..100 {
            if c.peek(LineAddr(i)).is_none() {
                c.insert(LineAddr(i), MesiState::Shared);
            }
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn fastmod_matches_modulo_for_non_pow2_sets() {
        // The paper's L2 geometry: 12288 sets (3 · 4096) takes the Lemire
        // fastmod path for 32-bit line addresses and `%` above that.
        let c = Cache::new(CacheConfig {
            size_bytes: 64 * 12288 * 8,
            line_size: 64,
            ways: 8,
            latency: 15,
        });
        assert_eq!(c.n_sets, 12288);
        let samples = [
            0u64,
            1,
            12287,
            12288,
            12289,
            0xDEAD_BEEF,
            u32::MAX as u64 - 1,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = if i % 2 == 0 { x >> 32 } else { x };
            assert_eq!(
                c.set_index(LineAddr(a)),
                (a % 12288) as usize,
                "addr {a:#x}"
            );
        }
        for a in samples {
            assert_eq!(
                c.set_index(LineAddr(a)),
                (a % 12288) as usize,
                "addr {a:#x}"
            );
        }
    }

    #[test]
    fn line_addr_of_strips_offset() {
        assert_eq!(LineAddr::of(0x1040, 6), LineAddr(0x41));
        assert_eq!(LineAddr::of(0x107F, 6), LineAddr(0x41));
        assert_eq!(LineAddr::of(0x1080, 6), LineAddr(0x42));
    }

    #[test]
    fn resident_layout_preallocates_and_reports_itself() {
        let per_run = tiny();
        assert!(!per_run.is_resident());
        let resident = Cache::new_resident(CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 1,
        });
        assert!(resident.is_resident());
        assert_eq!(resident.occupancy(), 0);
    }

    /// Drive both layouts through the same randomized operation trace and
    /// demand bit-identical observable behavior: return values, eviction
    /// choices, occupancy, and the final resident-line sets.
    #[test]
    fn resident_layout_matches_per_run_semantics_exactly() {
        let cfg = CacheConfig {
            // 8 sets × 4 ways — small enough to force constant eviction.
            size_bytes: 64 * 32,
            line_size: 64,
            ways: 4,
            latency: 1,
        };
        let mut aos = Cache::new(cfg);
        let mut soa = Cache::new_resident(cfg);
        let states = [MesiState::Modified, MesiState::Exclusive, MesiState::Shared];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for step in 0..50_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 40 distinct lines over 8 sets keeps sets full and LRU busy.
            let addr = LineAddr((x >> 16) % 40);
            let state = states[(x >> 40) as usize % 3];
            match (x >> 60) % 6 {
                0 => assert_eq!(aos.touch(addr), soa.touch(addr), "touch @{step}"),
                1 => assert_eq!(aos.peek(addr), soa.peek(addr), "peek @{step}"),
                2 => assert_eq!(
                    aos.replace_state(addr, state),
                    soa.replace_state(addr, state),
                    "replace_state @{step}"
                ),
                3 => assert_eq!(
                    aos.touch_or_insert(addr, state),
                    soa.touch_or_insert(addr, state),
                    "touch_or_insert @{step}"
                ),
                4 => assert_eq!(
                    aos.insert_if_absent(addr, state),
                    soa.insert_if_absent(addr, state),
                    "insert_if_absent @{step}"
                ),
                _ => assert_eq!(aos.remove(addr), soa.remove(addr), "remove @{step}"),
            }
            assert_eq!(aos.occupancy(), soa.occupancy(), "occupancy @{step}");
        }
        let mut left: Vec<_> = aos.lines().collect();
        let mut right: Vec<_> = soa.lines().collect();
        left.sort_by_key(|&(a, s)| (a, encode_state(s)));
        right.sort_by_key(|&(a, s)| (a, encode_state(s)));
        assert_eq!(left, right, "final resident lines diverge");
    }
}
