//! A generic set-associative cache of line metadata with LRU replacement.
//!
//! Only metadata is stored — tags, MESI state, LRU timestamps — because the
//! simulator never needs line *contents* (workloads compute on native Rust
//! data). One structure serves both L1s (which ignore the MESI field beyond
//! valid/invalid) and the coherent L2s.

use crate::config::CacheConfig;
use crate::mesi::MesiState;

/// A cache-line-granular physical address (physical address >> line shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Line address of a byte-granular physical address.
    #[inline]
    pub fn of(paddr: u64, line_shift: u32) -> Self {
        LineAddr(paddr >> line_shift)
    }
}

/// A line pushed out of the cache by replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Which line was evicted.
    pub addr: LineAddr,
    /// The state it was in (dirty ⇒ writeback needed).
    pub state: MesiState,
}

#[derive(Debug, Clone)]
struct Line {
    addr: LineAddr,
    state: MesiState,
    last_use: u64,
}

/// Set-associative cache of line metadata.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
}

impl Cache {
    /// Create an empty cache.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Cache {
            config,
            sets: vec![Vec::new(); config.sets()],
            clock: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.0 as usize) % self.sets.len()
    }

    /// State of `addr` if resident, touching LRU.
    pub fn touch(&mut self, addr: LineAddr) -> Option<MesiState> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(addr);
        self.sets[set].iter_mut().find(|l| l.addr == addr).map(|l| {
            l.last_use = clock;
            l.state
        })
    }

    /// State of `addr` if resident, without touching LRU (snoop path).
    pub fn peek(&self, addr: LineAddr) -> Option<MesiState> {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .find(|l| l.addr == addr)
            .map(|l| l.state)
    }

    /// Change the state of a resident line. Returns `false` if absent.
    pub fn set_state(&mut self, addr: LineAddr, state: MesiState) -> bool {
        debug_assert_ne!(state, MesiState::Invalid, "use remove() to invalidate");
        let set = self.set_index(addr);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            l.state = state;
            true
        } else {
            false
        }
    }

    /// Install `addr` with `state`, evicting the LRU line of the set if it
    /// is full. Returns the evicted line, if any.
    ///
    /// # Panics
    /// Panics (debug) if `addr` is already resident — callers must use
    /// [`Cache::set_state`] for state changes.
    pub fn insert(&mut self, addr: LineAddr, state: MesiState) -> Option<EvictedLine> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.config.ways;
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        debug_assert!(
            set.iter().all(|l| l.addr != addr),
            "insert of already-resident line {addr:?}"
        );
        let evicted = if set.len() == ways {
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .expect("full set is non-empty");
            let victim = set.swap_remove(victim_idx);
            Some(EvictedLine {
                addr: victim.addr,
                state: victim.state,
            })
        } else {
            None
        };
        set.push(Line {
            addr,
            state,
            last_use: clock,
        });
        evicted
    }

    /// Remove `addr` (coherence invalidation or back-invalidation). Returns
    /// the state it was in, if resident.
    pub fn remove(&mut self, addr: LineAddr) -> Option<MesiState> {
        let set = self.set_index(addr);
        let lines = &mut self.sets[set];
        lines
            .iter()
            .position(|l| l.addr == addr)
            .map(|i| lines.swap_remove(i).state)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Iterate over all resident lines as `(addr, state)`.
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, MesiState)> + '_ {
        self.sets.iter().flatten().map(|l| (l.addr, l.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways of 64-byte lines.
        Cache::new(CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn insert_then_touch() {
        let mut c = tiny();
        assert_eq!(c.touch(LineAddr(1)), None);
        c.insert(LineAddr(1), MesiState::Exclusive);
        assert_eq!(c.touch(LineAddr(1)), Some(MesiState::Exclusive));
    }

    #[test]
    fn peek_does_not_update_lru() {
        let mut c = tiny();
        // Set 0: lines 0, 4 (4 sets → addr & 3).
        c.insert(LineAddr(0), MesiState::Shared);
        c.insert(LineAddr(4), MesiState::Shared);
        // Peek line 0 — should NOT protect it from eviction.
        assert_eq!(c.peek(LineAddr(0)), Some(MesiState::Shared));
        let ev = c.insert(LineAddr(8), MesiState::Shared).unwrap();
        assert_eq!(ev.addr, LineAddr(0));
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), MesiState::Shared);
        c.insert(LineAddr(4), MesiState::Shared);
        c.touch(LineAddr(0));
        let ev = c.insert(LineAddr(8), MesiState::Shared).unwrap();
        assert_eq!(ev.addr, LineAddr(4));
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = tiny();
        c.insert(LineAddr(0), MesiState::Modified);
        c.insert(LineAddr(4), MesiState::Exclusive);
        let ev = c.insert(LineAddr(8), MesiState::Shared).unwrap();
        assert_eq!(ev.state, MesiState::Modified);
        assert!(ev.state.dirty());
    }

    #[test]
    fn remove_returns_state() {
        let mut c = tiny();
        c.insert(LineAddr(5), MesiState::Modified);
        assert_eq!(c.remove(LineAddr(5)), Some(MesiState::Modified));
        assert_eq!(c.remove(LineAddr(5)), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = tiny();
        c.insert(LineAddr(2), MesiState::Exclusive);
        assert!(c.set_state(LineAddr(2), MesiState::Modified));
        assert_eq!(c.peek(LineAddr(2)), Some(MesiState::Modified));
        assert!(!c.set_state(LineAddr(99), MesiState::Shared));
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..100 {
            if c.peek(LineAddr(i)).is_none() {
                c.insert(LineAddr(i), MesiState::Shared);
            }
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn line_addr_of_strips_offset() {
        assert_eq!(LineAddr::of(0x1040, 6), LineAddr(0x41));
        assert_eq!(LineAddr::of(0x107F, 6), LineAddr(0x41));
        assert_eq!(LineAddr::of(0x1080, 6), LineAddr(0x42));
    }
}
