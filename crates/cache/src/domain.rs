//! Shard-owned slice of the memory hierarchy for the windowed engine.
//!
//! The serial [`crate::MemoryHierarchy`] mutates remote L2s inline: a read
//! miss demotes every other holder the instant it happens. That mutable
//! spine is what forbids running L2 groups on different OS threads. This
//! module splits it: each **domain** (one L2 group — its L2, its cores'
//! L1s, its slice of the miss-taxonomy history) is owned by exactly one
//! shard, and cross-domain coherence rides [`CohMsg`] values delivered at
//! window barriers through the deterministic delayed queue.
//!
//! During a window a domain sees remote residency only through a
//! [`CoherenceImage`] — the owner directory plus a dirty-holder mask,
//! frozen at the last barrier. Within one window two domains can therefore
//! both believe they hold a line exclusively; the image converges again at
//! the barrier (the *bounded-lag relaxation* — see DESIGN.md §16). What a
//! domain *charges* (latencies, snoop/invalidation/writeback counters,
//! miss taxonomy) follows the serial protocol rule-for-rule against the
//! image, so a windowed run is a pure function of (trace, config, lag) —
//! independent of shard count and host scheduling.

use crate::cache::{Cache, LineAddr};
use crate::config::HierarchyConfig;
use crate::hierarchy::{AccessKind, AccessOutcome, MemOp, HIST_EVER, HIST_LOST};
use crate::lineset::LineMap;
use crate::mesi::MesiState;
use crate::stats::{CacheStats, MissKind};

/// One cross-domain coherence event, produced while a domain executes a
/// window and applied at the closing barrier. `g`/`target` are L2-group
/// indices (the directory packs holders into a `u64`, so they fit `u32`).
///
/// The first three variants are **directory deltas** — the sender telling
/// the image about its own residency. The last two are **remote effects**
/// — the sender asking another domain's copy to change state. Barriers
/// apply all deltas first, then all remote effects, so an
/// invalidate/install pair delivered in the same batch cannot leave the
/// image pointing at a copy that was just destroyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohMsg {
    /// Sender `g` installed `line` (`dirty` = installed Modified).
    Install {
        /// The line installed.
        line: LineAddr,
        /// Installing L2 group.
        g: u32,
        /// Whether it was installed in the Modified state.
        dirty: bool,
    },
    /// Sender `g` changed the dirtiness of its resident copy (E→M / S→M
    /// upgrades set it; nothing clears it except demotion/eviction).
    DirtyBit {
        /// The line whose dirty bit changed.
        line: LineAddr,
        /// The L2 group whose copy changed.
        g: u32,
        /// New dirtiness.
        dirty: bool,
    },
    /// Sender `g` evicted its copy of `line` (capacity victim).
    Evict {
        /// The line evicted.
        line: LineAddr,
        /// Evicting L2 group.
        g: u32,
    },
    /// A read miss saw `target` holding `line` in the image: demote the
    /// copy to Shared (BusRd observed). The writeback for a dirty copy is
    /// counted by `target` at delivery, where the real state is known.
    Demote {
        /// The line being demoted.
        line: LineAddr,
        /// The L2 group whose copy must demote.
        target: u32,
    },
    /// A write saw `target` holding `line` in the image: destroy the copy
    /// (BusRdX observed).
    Invalidate {
        /// The line being invalidated.
        line: LineAddr,
        /// The L2 group whose copy must die.
        target: u32,
    },
}

/// The frozen cross-domain view: which L2 groups hold each line
/// (`holders`, the owner directory) and which of those copies are dirty
/// (`dirty`). Owned by the windowed engine's coordinator; domains read it
/// during a window, barriers update it from delivered [`CohMsg`]s.
#[derive(Debug, Clone, Default)]
pub struct CoherenceImage {
    holders: LineMap,
    dirty: LineMap,
}

impl CoherenceImage {
    /// An empty image (all caches cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmap of L2 groups holding `line` as of the last barrier.
    pub fn holders(&self, line: LineAddr) -> u64 {
        self.holders.get(line.0)
    }

    /// Bitmap of L2 groups holding `line` *dirty* as of the last barrier.
    pub fn dirty_mask(&self, line: LineAddr) -> u64 {
        self.dirty.get(line.0)
    }

    /// Barrier pass 1: apply a sender's own directory delta
    /// (`Install`/`DirtyBit`/`Evict`). Remote effects are ignored here.
    pub fn apply_directory(&mut self, msg: &CohMsg) {
        match *msg {
            CohMsg::Install { line, g, dirty } => {
                self.holders.set_bit(line.0, g);
                if dirty {
                    self.dirty.set_bit(line.0, g);
                } else {
                    self.dirty.clear_bit(line.0, g);
                }
            }
            CohMsg::DirtyBit { line, g, dirty } => {
                if dirty {
                    self.dirty.set_bit(line.0, g);
                } else {
                    self.dirty.clear_bit(line.0, g);
                }
            }
            CohMsg::Evict { line, g } => {
                self.holders.clear_bit(line.0, g);
                self.dirty.clear_bit(line.0, g);
            }
            CohMsg::Demote { .. } | CohMsg::Invalidate { .. } => {}
        }
    }

    /// Barrier pass 2: apply the image-side effect of a remote request
    /// (`Demote` clears the target's dirty bit, `Invalidate` removes the
    /// target entirely). Directory deltas are ignored here.
    pub fn apply_remote(&mut self, msg: &CohMsg) {
        match *msg {
            CohMsg::Demote { line, target } => self.dirty.clear_bit(line.0, target),
            CohMsg::Invalidate { line, target } => {
                self.holders.clear_bit(line.0, target);
                self.dirty.clear_bit(line.0, target);
            }
            CohMsg::Install { .. } | CohMsg::DirtyBit { .. } | CohMsg::Evict { .. } => {}
        }
    }
}

/// One L2 group's private slice of the hierarchy, owned by a shard.
///
/// Accesses follow [`crate::MemoryHierarchy`]'s charging rules exactly,
/// except that remote residency comes from the [`CoherenceImage`] and
/// remote mutations leave as [`CohMsg`]s in the caller's buffer instead of
/// touching other domains' caches.
pub struct DomainHierarchy {
    cfg: HierarchyConfig,
    g: usize,
    my_chip: usize,
    /// Global index of the group's first core (groups are contiguous).
    base_core: usize,
    l2: Cache,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    /// Per-line [`HIST_EVER`]/[`HIST_LOST`] flags for this L2's miss
    /// taxonomy (same bits as the serial hierarchy's per-group history).
    history: LineMap,
    stats: CacheStats,
    l1_sibling_invalidations: u64,
}

impl DomainHierarchy {
    /// Build the (empty) domain for L2 group `g` of `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the group's cores are not
    /// a contiguous ascending range (the windowed engine slices per-core
    /// state by range, so it requires this anyway).
    pub fn new(cfg: HierarchyConfig, g: usize) -> Self {
        cfg.validate();
        let cores = &cfg.groups[g].cores;
        assert!(!cores.is_empty(), "L2 group {g} has no cores");
        for (i, &c) in cores.iter().enumerate() {
            assert_eq!(
                c,
                cores[0] + i,
                "L2 group {g} cores must be contiguous ascending"
            );
        }
        let n = cores.len();
        DomainHierarchy {
            g,
            my_chip: cfg.groups[g].chip,
            base_core: cores[0],
            l2: Cache::new(cfg.l2),
            l1i: (0..n).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..n).map(|_| Cache::new(cfg.l1d)).collect(),
            history: LineMap::new(),
            stats: CacheStats::default(),
            l1_sibling_invalidations: 0,
            cfg,
        }
    }

    /// The L2-group index this domain models.
    pub fn group(&self) -> usize {
        self.g
    }

    /// Counters accumulated so far (merged across domains by the engine).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Sibling-L1 invalidations (same-L2; kept out of [`CacheStats`], as
    /// in the serial hierarchy).
    pub fn l1_sibling_invalidations(&self) -> u64 {
        self.l1_sibling_invalidations
    }

    /// MESI state of `line` in this domain's L2 (test/diagnostic hook).
    pub fn l2_state(&self, line: LineAddr) -> Option<MesiState> {
        self.l2.peek(line)
    }

    /// Perform one access by global core `core` (which must belong to this
    /// group). Cross-domain effects are appended to `out`.
    pub fn access(
        &mut self,
        core: usize,
        paddr: u64,
        op: MemOp,
        kind: AccessKind,
        image: &CoherenceImage,
        out: &mut Vec<CohMsg>,
    ) -> AccessOutcome {
        let line = LineAddr::of(paddr, self.cfg.l2.line_shift());
        let local = core - self.base_core;
        debug_assert!(
            local < self.l1d.len(),
            "core {core} not in group {}",
            self.g
        );
        match op {
            MemOp::Read => self.read(local, line, kind, image, out),
            MemOp::Write => self.write(local, line, kind, image, out),
        }
    }

    /// Deliver a [`CohMsg::Demote`] aimed at this domain: the copy (if
    /// still resident) goes Shared, and a Modified copy writes back — the
    /// writeback the serial protocol charges when a dirty supplier is
    /// snooped, counted here where the true state is known.
    pub fn deliver_demote(&mut self, line: LineAddr) {
        if let Some(old) = self.l2.replace_state(line, MesiState::Shared) {
            if old == MesiState::Modified {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Deliver a [`CohMsg::Invalidate`] aimed at this domain. A copy that
    /// already evicted during the window is a stale image hit: nothing to
    /// destroy, nothing counted.
    pub fn deliver_invalidate(&mut self, line: LineAddr) {
        if self.l2.remove(line).is_some() {
            self.stats.invalidations += 1;
            self.history.set_bit(line.0, HIST_LOST);
            self.back_invalidate_l1s(line);
        }
    }

    fn l1_mut(&mut self, local: usize, kind: AccessKind) -> &mut Cache {
        match kind {
            AccessKind::Data => &mut self.l1d[local],
            AccessKind::Instr => &mut self.l1i[local],
        }
    }

    fn note_l1(&mut self, kind: AccessKind, hit: bool) {
        match (kind, hit) {
            (AccessKind::Data, true) => self.stats.l1d_hits += 1,
            (AccessKind::Data, false) => self.stats.l1d_misses += 1,
            (AccessKind::Instr, true) => self.stats.l1i_hits += 1,
            (AccessKind::Instr, false) => self.stats.l1i_misses += 1,
        }
    }

    fn read(
        &mut self,
        local: usize,
        line: LineAddr,
        kind: AccessKind,
        image: &CoherenceImage,
        out: &mut Vec<CohMsg>,
    ) -> AccessOutcome {
        let l1_latency = self.cfg.l1d.latency;
        if self.l1_mut(local, kind).touch(line).is_some() {
            self.note_l1(kind, true);
            return AccessOutcome {
                cycles: l1_latency,
                l1_hit: true,
                l2_hit: false,
                snooped: false,
            };
        }
        self.note_l1(kind, false);

        let mut cycles = l1_latency + self.cfg.l2.latency;
        let mut l2_hit = true;
        let mut snooped = false;

        if self.l2.touch(line).is_none() {
            l2_hit = false;
            self.classify_miss(line);
            let (extra, was_snooped) = self.service_read_miss(line, image, out);
            cycles += extra;
            snooped = was_snooped;
        } else {
            self.stats.l2_hits += 1;
        }

        self.l1_mut(local, kind)
            .insert_if_absent(line, MesiState::Shared);
        AccessOutcome {
            cycles,
            l1_hit: false,
            l2_hit,
            snooped,
        }
    }

    fn write(
        &mut self,
        local: usize,
        line: LineAddr,
        kind: AccessKind,
        image: &CoherenceImage,
        out: &mut Vec<CohMsg>,
    ) -> AccessOutcome {
        let mut cycles = self.cfg.l1d.latency;
        let mut l2_hit = true;
        let mut snooped = false;
        let others = image.holders(line) & !(1u64 << self.g);

        match self.l2.touch(line) {
            Some(MesiState::Modified) => {}
            Some(MesiState::Exclusive) if others == 0 => {
                // Silent E→M upgrade (nobody else in the image).
                self.l2.set_state(line, MesiState::Modified);
                out.push(CohMsg::DirtyBit {
                    line,
                    g: self.g as u32,
                    dirty: true,
                });
            }
            Some(MesiState::Exclusive) | Some(MesiState::Shared) => {
                // Upgrade: invalidate every image holder. (An E copy with
                // image holders is the bounded-lag relaxation — another
                // domain installed the line this window — so it upgrades
                // like Shared rather than silently.)
                if others != 0 {
                    cycles += self.cfg.write_invalidate_penalty;
                    self.request_invalidate_all(line, others, out);
                }
                self.l2.set_state(line, MesiState::Modified);
                out.push(CohMsg::DirtyBit {
                    line,
                    g: self.g as u32,
                    dirty: true,
                });
            }
            Some(MesiState::Invalid) | None => {
                // Write miss: read-for-ownership (BusRdX).
                l2_hit = false;
                self.classify_miss(line);
                let (extra, was_snooped) = self.service_write_miss(line, others, image, out);
                cycles += self.cfg.l2.latency + extra;
                snooped = was_snooped;
            }
        }
        if l2_hit {
            self.stats.l2_hits += 1;
        }

        self.invalidate_sibling_l1s(local, line);
        let (hit, _) = self
            .l1_mut(local, kind)
            .touch_or_insert(line, MesiState::Shared);
        self.note_l1(kind, hit);
        AccessOutcome {
            cycles,
            l1_hit: false,
            l2_hit,
            snooped,
        }
    }

    /// Supplier choice against the image, mirroring the serial ascending
    /// snoop scan: the lowest *dirty* holder must supply (it is the
    /// Modified copy the scan would have stopped at), otherwise the first
    /// holder with intra-chip holders preferred over remote chips.
    fn pick_supplier(&self, holders: u64, dirty: u64) -> Option<usize> {
        if dirty != 0 {
            return Some(dirty.trailing_zeros() as usize);
        }
        let mut best: Option<usize> = None;
        let mut rest = holders;
        while rest != 0 {
            let other = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let better = match best {
                None => true,
                Some(b) => {
                    self.cfg.groups[other].chip == self.my_chip
                        && self.cfg.groups[b].chip != self.my_chip
                }
            };
            if better {
                best = Some(other);
            }
        }
        best
    }

    fn service_read_miss(
        &mut self,
        line: LineAddr,
        image: &CoherenceImage,
        out: &mut Vec<CohMsg>,
    ) -> (u64, bool) {
        let holders = image.holders(line) & !(1u64 << self.g);
        let dirty = image.dirty_mask(line) & holders;
        let supplier = self.pick_supplier(holders, dirty);
        // Every image holder observes the BusRd and demotes to Shared at
        // delivery (the dirty one also writes back — counted over there).
        let mut rest = holders;
        while rest != 0 {
            let other = rest.trailing_zeros();
            rest &= rest - 1;
            out.push(CohMsg::Demote {
                line,
                target: other,
            });
        }
        let (extra, state, snooped) = match supplier {
            Some(h) => {
                self.record_snoop(h);
                (self.c2c_latency(h), MesiState::Shared, true)
            }
            None => (self.memory_fetch(), MesiState::Exclusive, false),
        };
        self.install_l2(line, state, out);
        (extra, snooped)
    }

    fn service_write_miss(
        &mut self,
        line: LineAddr,
        others: u64,
        image: &CoherenceImage,
        out: &mut Vec<CohMsg>,
    ) -> (u64, bool) {
        let dirty = image.dirty_mask(line) & others;
        let supplier = self.pick_supplier(others, dirty);
        self.request_invalidate_all(line, others, out);
        let (extra, snooped) = match supplier {
            Some(h) => {
                // A dirty copy hands its data over without a memory
                // writeback (ownership migrates), exactly as in serial.
                self.record_snoop(h);
                (self.c2c_latency(h), true)
            }
            None => (self.memory_fetch(), false),
        };
        let penalty = if others != 0 {
            self.cfg.write_invalidate_penalty
        } else {
            0
        };
        self.install_l2(line, MesiState::Modified, out);
        (extra + penalty, snooped)
    }

    fn request_invalidate_all(&mut self, line: LineAddr, holders: u64, out: &mut Vec<CohMsg>) {
        let mut rest = holders;
        while rest != 0 {
            let other = rest.trailing_zeros();
            rest &= rest - 1;
            out.push(CohMsg::Invalidate {
                line,
                target: other,
            });
        }
    }

    fn c2c_latency(&self, other: usize) -> u64 {
        if self.cfg.groups[other].chip == self.my_chip {
            self.cfg.c2c_intra_chip
        } else {
            self.cfg.c2c_inter_chip
        }
    }

    fn record_snoop(&mut self, other: usize) {
        self.stats.snoop_transactions += 1;
        if self.cfg.groups[other].chip == self.my_chip {
            self.stats.snoops_intra_chip += 1;
        } else {
            self.stats.snoops_inter_chip += 1;
        }
    }

    fn memory_fetch(&mut self) -> u64 {
        // The windowed engine rejects NUMA configs, so fetches are UMA.
        self.stats.memory_fetches += 1;
        self.cfg.mem_latency
    }

    fn install_l2(&mut self, line: LineAddr, state: MesiState, out: &mut Vec<CohMsg>) {
        self.history.set_bit(line.0, HIST_EVER);
        out.push(CohMsg::Install {
            line,
            g: self.g as u32,
            dirty: state == MesiState::Modified,
        });
        if let Some(ev) = self.l2.insert(line, state) {
            out.push(CohMsg::Evict {
                line: ev.addr,
                g: self.g as u32,
            });
            if ev.state.dirty() {
                self.stats.writebacks += 1;
            }
            self.back_invalidate_l1s(ev.addr);
        }
    }

    fn classify_miss(&mut self, line: LineAddr) {
        let flags = self.history.get(line.0);
        let kind = if flags & (1 << HIST_LOST) != 0 {
            self.history.clear_bit(line.0, HIST_LOST);
            MissKind::Coherence
        } else if flags & (1 << HIST_EVER) != 0 {
            MissKind::Capacity
        } else {
            MissKind::Cold
        };
        self.stats.record_l2_miss(kind);
    }

    fn back_invalidate_l1s(&mut self, line: LineAddr) {
        for l1 in self.l1d.iter_mut().chain(self.l1i.iter_mut()) {
            l1.remove(line);
        }
    }

    fn invalidate_sibling_l1s(&mut self, local: usize, line: LineAddr) {
        for (i, l1) in self.l1d.iter_mut().enumerate() {
            if i != local && l1.remove(line).is_some() {
                self.l1_sibling_invalidations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, L2Group};
    use crate::MemoryHierarchy;

    fn two_group_cfg() -> HierarchyConfig {
        let l1 = CacheConfig {
            size_bytes: 64 * 8,
            line_size: 64,
            ways: 2,
            latency: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 64 * 32,
            line_size: 64,
            ways: 4,
            latency: 8,
        };
        HierarchyConfig {
            l1i: l1,
            l1d: l1,
            l2,
            mem_latency: 200,
            c2c_intra_chip: 40,
            c2c_inter_chip: 120,
            write_invalidate_penalty: 20,
            numa_remote_penalty: 0,
            groups: vec![
                L2Group {
                    cores: vec![0, 1],
                    chip: 0,
                },
                L2Group {
                    cores: vec![2, 3],
                    chip: 1,
                },
            ],
        }
    }

    fn one_group_cfg() -> HierarchyConfig {
        let mut cfg = two_group_cfg();
        cfg.groups.truncate(1);
        cfg
    }

    /// Apply a window's messages to the image and deliver remote effects —
    /// what the engine's barrier does, minus the delayed queue.
    fn barrier(image: &mut CoherenceImage, domains: &mut [DomainHierarchy], msgs: &[CohMsg]) {
        for m in msgs {
            image.apply_directory(m);
        }
        for m in msgs {
            image.apply_remote(m);
            match *m {
                CohMsg::Demote { line, target } => domains[target as usize].deliver_demote(line),
                CohMsg::Invalidate { line, target } => {
                    domains[target as usize].deliver_invalidate(line)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn single_group_domain_matches_serial_hierarchy() {
        // With one L2 group there is no cross-domain traffic, so the
        // domain must charge exactly what the serial hierarchy charges.
        let cfg = one_group_cfg();
        let mut serial = MemoryHierarchy::new(cfg.clone());
        let mut dom = DomainHierarchy::new(cfg, 0);
        let image = CoherenceImage::new();
        let mut msgs = Vec::new();
        let pattern: &[(usize, u64, MemOp, AccessKind)] = &[
            (0, 0x1000, MemOp::Read, AccessKind::Data),
            (1, 0x1000, MemOp::Write, AccessKind::Data),
            (0, 0x1000, MemOp::Read, AccessKind::Data),
            (0, 0x2000, MemOp::Write, AccessKind::Data),
            (1, 0x2040, MemOp::Read, AccessKind::Instr),
            // Overflow one L2 set (4 ways, 8 sets): force an eviction.
            (0, 0x0000, MemOp::Read, AccessKind::Data),
            (0, 0x2000, MemOp::Read, AccessKind::Data),
            (0, 0x4000, MemOp::Read, AccessKind::Data),
            (0, 0x6000, MemOp::Read, AccessKind::Data),
            (0, 0x8000, MemOp::Read, AccessKind::Data),
            (0, 0x0000, MemOp::Write, AccessKind::Data),
        ];
        for &(core, addr, op, kind) in pattern {
            let a = serial.access(core, addr, op, kind);
            let b = dom.access(core, addr, op, kind, &image, &mut msgs);
            assert_eq!(a, b, "outcome diverged at core {core} addr {addr:#x}");
        }
        assert_eq!(serial.stats(), dom.stats());
        assert_eq!(
            serial.l1_sibling_invalidations(),
            dom.l1_sibling_invalidations()
        );
        // Only directory deltas can appear — nobody to demote/invalidate.
        assert!(msgs
            .iter()
            .all(|m| !matches!(m, CohMsg::Demote { .. } | CohMsg::Invalidate { .. })));
    }

    #[test]
    fn read_of_remote_dirty_line_snoops_demotes_and_writes_back() {
        let cfg = two_group_cfg();
        let mut domains = vec![
            DomainHierarchy::new(cfg.clone(), 0),
            DomainHierarchy::new(cfg, 1),
        ];
        let mut image = CoherenceImage::new();
        let mut msgs = Vec::new();

        // Window 1: core 0 writes — domain 0 installs Modified.
        domains[0].access(0, 0x1000, MemOp::Write, AccessKind::Data, &image, &mut msgs);
        let w1 = std::mem::take(&mut msgs);
        barrier(&mut image, &mut domains, &w1);
        let line = LineAddr::of(0x1000, 6);
        assert_eq!(image.holders(line), 0b01);
        assert_eq!(image.dirty_mask(line), 0b01);

        // Window 2: core 2 reads — snooped inter-chip, demote requested.
        let out = domains[1].access(2, 0x1000, MemOp::Read, AccessKind::Data, &image, &mut msgs);
        assert!(out.snooped && !out.l2_hit);
        assert_eq!(out.cycles, 2 + 8 + 120);
        assert_eq!(domains[1].stats().snoops_inter_chip, 1);
        let w2 = std::mem::take(&mut msgs);
        assert!(w2.contains(&CohMsg::Demote { line, target: 0 }));
        barrier(&mut image, &mut domains, &w2);

        // The demote landed: domain 0's copy is Shared and wrote back.
        assert_eq!(domains[0].l2_state(line), Some(MesiState::Shared));
        assert_eq!(domains[0].stats().writebacks, 1);
        assert_eq!(image.holders(line), 0b11);
        assert_eq!(image.dirty_mask(line), 0);
    }

    #[test]
    fn write_invalidates_image_holders_and_reclassifies_their_miss() {
        let cfg = two_group_cfg();
        let mut domains = vec![
            DomainHierarchy::new(cfg.clone(), 0),
            DomainHierarchy::new(cfg, 1),
        ];
        let mut image = CoherenceImage::new();
        let mut msgs = Vec::new();
        let line = LineAddr::of(0x1000, 6);

        // Window 1: domain 0 reads (installs Exclusive).
        domains[0].access(0, 0x1000, MemOp::Read, AccessKind::Data, &image, &mut msgs);
        let w1 = std::mem::take(&mut msgs);
        barrier(&mut image, &mut domains, &w1);

        // Window 2: core 2 write-misses — image holder supplies and dies.
        let out = domains[1].access(2, 0x1000, MemOp::Write, AccessKind::Data, &image, &mut msgs);
        assert!(out.snooped);
        // l1 + l2 + inter-chip c2c + invalidate penalty.
        assert_eq!(out.cycles, 2 + 8 + 120 + 20);
        let w2 = std::mem::take(&mut msgs);
        assert!(w2.contains(&CohMsg::Invalidate { line, target: 0 }));
        barrier(&mut image, &mut domains, &w2);

        assert_eq!(domains[0].stats().invalidations, 1);
        assert_eq!(domains[0].l2_state(line), None);
        assert_eq!(image.holders(line), 0b10);
        assert_eq!(image.dirty_mask(line), 0b10);

        // Domain 0's re-read is a coherence miss (HIST_LOST set).
        domains[0].access(0, 0x1000, MemOp::Read, AccessKind::Data, &image, &mut msgs);
        assert_eq!(domains[0].stats().l2_coherence_misses, 1);
    }

    #[test]
    fn stale_image_holder_is_a_harmless_no_op() {
        let cfg = two_group_cfg();
        let mut d0 = DomainHierarchy::new(cfg, 0);
        // The image claimed d0 held a line it has since evicted: delivery
        // finds nothing and counts nothing.
        let line = LineAddr::of(0x9000, 6);
        d0.deliver_invalidate(line);
        d0.deliver_demote(line);
        assert_eq!(d0.stats().invalidations, 0);
        assert_eq!(d0.stats().writebacks, 0);
    }

    #[test]
    fn silent_upgrade_with_image_holders_invalidates_like_shared() {
        // Bounded-lag relaxation: both domains installed the line E in the
        // same window. The later writer must not upgrade silently.
        let cfg = two_group_cfg();
        let mut domains = vec![
            DomainHierarchy::new(cfg.clone(), 0),
            DomainHierarchy::new(cfg, 1),
        ];
        let mut image = CoherenceImage::new();
        let mut msgs = Vec::new();
        let line = LineAddr::of(0x1000, 6);

        // Same window: both read-miss to Exclusive against the cold image.
        domains[0].access(0, 0x1000, MemOp::Read, AccessKind::Data, &image, &mut msgs);
        domains[1].access(2, 0x1000, MemOp::Read, AccessKind::Data, &image, &mut msgs);
        let w1 = std::mem::take(&mut msgs);
        barrier(&mut image, &mut domains, &w1);
        assert_eq!(image.holders(line), 0b11);

        // Next window: domain 0 writes its Exclusive copy — the image says
        // domain 1 also holds it, so the upgrade pays and invalidates.
        let out = domains[0].access(0, 0x1000, MemOp::Write, AccessKind::Data, &image, &mut msgs);
        assert_eq!(out.cycles, 2 + 20);
        let w2 = std::mem::take(&mut msgs);
        assert!(w2.contains(&CohMsg::Invalidate { line, target: 1 }));
        barrier(&mut image, &mut domains, &w2);
        assert_eq!(domains[1].stats().invalidations, 1);
        assert_eq!(image.holders(line), 0b01);
    }
}
