//! Property-based tests of the coherent cache hierarchy.

use proptest::prelude::*;
use tlbmap_cache::{
    AccessKind, CacheConfig, HierarchyConfig, L2Group, LineAddr, MemOp, MemoryHierarchy,
};

fn small_hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new(small_config())
}

fn small_config() -> HierarchyConfig {
    let l1 = CacheConfig {
        size_bytes: 64 * 8,
        line_size: 64,
        ways: 2,
        latency: 2,
    };
    let l2 = CacheConfig {
        size_bytes: 64 * 32,
        line_size: 64,
        ways: 4,
        latency: 8,
    };
    HierarchyConfig {
        l1i: l1,
        l1d: l1,
        l2,
        mem_latency: 200,
        c2c_intra_chip: 40,
        c2c_inter_chip: 120,
        write_invalidate_penalty: 20,
        numa_remote_penalty: 0,
        groups: vec![
            L2Group {
                cores: vec![0, 1],
                chip: 0,
            },
            L2Group {
                cores: vec![2, 3],
                chip: 1,
            },
        ],
    }
}

#[derive(Debug, Clone)]
struct Step {
    core: usize,
    addr: u64,
    write: bool,
    instr: bool,
}

fn step() -> impl Strategy<Value = Step> {
    (
        0usize..4,
        0u64..40,
        any::<bool>(),
        prop::bool::weighted(0.1),
    )
        .prop_map(|(core, line, write, instr)| Step {
            core,
            addr: line * 64 + (line % 8), // within-line offsets too
            write: write && !instr,       // no instruction writes
            instr,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any access sequence: MESI exclusivity holds for every line,
    /// L1⊆L2 inclusion holds, and the miss taxonomy adds up.
    #[test]
    fn coherence_invariants(steps in prop::collection::vec(step(), 1..300)) {
        let mut h = small_hierarchy();
        let mut lines = std::collections::HashSet::new();
        for s in &steps {
            let op = if s.write { MemOp::Write } else { MemOp::Read };
            let kind = if s.instr { AccessKind::Instr } else { AccessKind::Data };
            h.access(s.core, s.addr, op, kind);
            lines.insert(LineAddr::of(s.addr, 6));
        }
        for &l in &lines {
            prop_assert!(h.mesi_invariant_holds(l), "MESI violated for {:?}", l);
        }
        prop_assert!(h.inclusion_holds(), "L1 line without L2 backing");
        let st = h.stats();
        prop_assert_eq!(
            st.l2_misses,
            st.l2_cold_misses + st.l2_capacity_misses + st.l2_coherence_misses
        );
        prop_assert_eq!(
            st.snoop_transactions,
            st.snoops_intra_chip + st.snoops_inter_chip
        );
        prop_assert_eq!(st.l1d_hits + st.l1d_misses + st.l1i_hits + st.l1i_misses,
            steps.len() as u64);
    }

    /// Reads never invalidate anything, and a single-core workload never
    /// produces coherence traffic.
    #[test]
    fn single_core_has_no_coherence_traffic(addrs in prop::collection::vec(0u64..100, 1..200)) {
        let mut h = small_hierarchy();
        for (i, &a) in addrs.iter().enumerate() {
            let op = if i % 3 == 0 { MemOp::Write } else { MemOp::Read };
            h.access(0, a * 64, op, AccessKind::Data);
        }
        prop_assert_eq!(h.stats().invalidations, 0);
        prop_assert_eq!(h.stats().snoop_transactions, 0);
        prop_assert_eq!(h.stats().l2_coherence_misses, 0);
    }

    /// Access cost is exactly one of the legal latency combinations.
    #[test]
    fn cycles_come_from_the_latency_model(steps in prop::collection::vec(step(), 1..100)) {
        let mut h = small_hierarchy();
        for s in &steps {
            let op = if s.write { MemOp::Write } else { MemOp::Read };
            let out = h.access(s.core, s.addr, op, AccessKind::Data);
            // Enumerate legal cost structures:
            //   reads: 2 | 2+8 | 2+8+{40,120,200}
            //   writes: 2 (+20 upgrade) | 2+8+{40,120,200} (+20)
            let legal = [
                2, 2 + 8, 2 + 8 + 40, 2 + 8 + 120, 2 + 8 + 200,
                2 + 20, 2 + 8 + 40 + 20, 2 + 8 + 120 + 20, 2 + 8 + 200 + 20,
            ];
            prop_assert!(
                legal.contains(&out.cycles),
                "unexpected access cost {} for {:?}",
                out.cycles,
                s
            );
        }
    }

    /// The resident (preallocated SoA) cache layout must be observably
    /// identical to the per-run layout through the full MESI protocol:
    /// same per-access outcomes, same counters, same miss taxonomy.
    #[test]
    fn resident_layout_is_protocol_identical(steps in prop::collection::vec(step(), 1..300)) {
        let mut per_run = MemoryHierarchy::new(small_config());
        let mut resident = MemoryHierarchy::new_resident(small_config());
        for s in &steps {
            let op = if s.write { MemOp::Write } else { MemOp::Read };
            let kind = if s.instr { AccessKind::Instr } else { AccessKind::Data };
            let a = per_run.access(s.core, s.addr, op, kind);
            let b = resident.access(s.core, s.addr, op, kind);
            prop_assert_eq!(a, b, "outcome diverged at {:?}", s);
        }
        prop_assert_eq!(per_run.stats(), resident.stats());
        prop_assert_eq!(
            per_run.l1_sibling_invalidations(),
            resident.l1_sibling_invalidations()
        );
    }

    /// Writing threads placed behind the same L2 never cause interconnect
    /// invalidations; the same accesses split across chips can.
    #[test]
    fn co_location_eliminates_invalidations(lines in prop::collection::vec(0u64..16, 10..60)) {
        // Same-L2 pair: cores 0 and 1.
        let mut near = small_hierarchy();
        for (i, &l) in lines.iter().enumerate() {
            let core = i % 2; // cores 0,1
            let op = if i % 2 == 0 { MemOp::Write } else { MemOp::Read };
            near.access(core, l * 64, op, AccessKind::Data);
        }
        prop_assert_eq!(near.stats().invalidations, 0);
        // Cross-chip pair: cores 0 and 2, same access pattern.
        let mut far = small_hierarchy();
        let mut far_inv = 0;
        for (i, &l) in lines.iter().enumerate() {
            let core = if i % 2 == 0 { 0 } else { 2 };
            let op = if i % 2 == 0 { MemOp::Write } else { MemOp::Read };
            far.access(core, l * 64, op, AccessKind::Data);
            far_inv = far.stats().invalidations;
        }
        // Far placement is allowed to invalidate; near must not.
        prop_assert!(far_inv >= near.stats().invalidations);
    }
}

/// A hierarchy with `groups` L2 groups of two cores each, split across
/// `chips` chips. Tiny caches force evictions so the directory sees the
/// full install/evict/invalidate lifecycle, not just installs.
fn mixed_hierarchy(groups: usize, chips: usize) -> MemoryHierarchy {
    let l1 = CacheConfig {
        size_bytes: 64 * 8,
        line_size: 64,
        ways: 2,
        latency: 2,
    };
    let l2 = CacheConfig {
        size_bytes: 64 * 16,
        line_size: 64,
        ways: 4,
        latency: 8,
    };
    MemoryHierarchy::new(HierarchyConfig {
        l1i: l1,
        l1d: l1,
        l2,
        mem_latency: 200,
        c2c_intra_chip: 40,
        c2c_inter_chip: 120,
        write_invalidate_penalty: 20,
        numa_remote_penalty: 0,
        groups: (0..groups)
            .map(|g| L2Group {
                cores: vec![2 * g, 2 * g + 1],
                chip: g * chips / groups,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sparse owner directory must agree with a full snoop scan —
    /// both on who holds a line and on which supplier the miss path would
    /// pick — after every step of a random access sequence, across
    /// topologies from a single chip to eight L2 groups on four chips.
    #[test]
    fn directory_matches_full_snoop_scan(
        shape in prop::sample::select(vec![(2usize, 1usize), (2, 2), (4, 2), (8, 4)]),
        accesses in prop::collection::vec((0usize..16, 0u64..24, any::<bool>()), 1..250),
    ) {
        let (groups, chips) = shape;
        let cores = groups * 2;
        let mut h = mixed_hierarchy(groups, chips);
        let mut lines = std::collections::HashSet::new();
        for &(core, line, write) in &accesses {
            let op = if write { MemOp::Write } else { MemOp::Read };
            h.access(core % cores, line * 64, op, AccessKind::Data);
            lines.insert(LineAddr::of(line * 64, 6));
            for &l in &lines {
                prop_assert_eq!(
                    h.directory_mask(l),
                    h.residency_mask_scan(l),
                    "directory out of sync for {:?} after touching line {}",
                    l,
                    line
                );
                for g in 0..groups {
                    prop_assert_eq!(
                        h.find_holder_directory(g, l),
                        h.find_holder_scan(g, l),
                        "supplier choice diverged for {:?} from group {}",
                        l,
                        g
                    );
                }
            }
        }
    }
}
