//! The communication matrix (Section III-C).
//!
//! Cell `(i, j)` accumulates the amount of communication detected between
//! threads `i` and `j`. The matrix is symmetric with a zero diagonal —
//! communication is evaluated between *pairs* of threads to keep complexity
//! Θ(N²).

use tlbmap_obs::{Json, JsonError};

/// A symmetric, zero-diagonal matrix of per-thread-pair communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    n: usize,
    /// Row-major n×n storage; kept symmetric by construction.
    data: Vec<u64>,
}

impl CommMatrix {
    /// An all-zero matrix for `n` threads.
    pub fn new(n: usize) -> Self {
        CommMatrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// Build from explicit row-major data (tests, tools).
    ///
    /// # Panics
    /// Panics if `data` is not n×n, not symmetric, or has a nonzero
    /// diagonal.
    pub fn from_rows(n: usize, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), n * n, "expected {}x{} entries", n, n);
        let m = CommMatrix { n, data };
        for i in 0..n {
            assert_eq!(m.get(i, i), 0, "diagonal must be zero at ({i},{i})");
            for j in 0..i {
                assert_eq!(
                    m.get(i, j),
                    m.get(j, i),
                    "matrix must be symmetric at ({i},{j})"
                );
            }
        }
        m
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Communication between threads `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.n + j]
    }

    /// Add `amount` to the pair `(i, j)`. Ignores the diagonal (a thread
    /// does not communicate with itself).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, amount: u64) {
        if i == j {
            return;
        }
        self.data[i * self.n + j] += amount;
        self.data[j * self.n + i] += amount;
    }

    /// Record one detected match between the threads on two cores.
    #[inline]
    pub fn record(&mut self, i: usize, j: usize) {
        self.add(i, j, 1);
    }

    /// Sum of the upper triangle — total communication units detected.
    pub fn total(&self) -> u64 {
        // Each row's above-diagonal cells form one contiguous slice.
        (0..self.n)
            .map(|i| {
                self.data[i * self.n + i + 1..(i + 1) * self.n]
                    .iter()
                    .sum::<u64>()
            })
            .sum()
    }

    /// Largest cell value.
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Element-wise accumulate.
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn merge(&mut self, other: &CommMatrix) {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Upper-triangle cells as `(i, j, value)`, `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        (0..self.n).flat_map(move |i| ((i + 1)..self.n).map(move |j| (i, j, self.get(i, j))))
    }

    /// Normalized copy: every cell divided by the maximum (all in `[0, 1]`).
    /// An all-zero matrix normalizes to all zeros.
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.max();
        if max == 0 {
            return vec![0.0; self.data.len()];
        }
        self.data.iter().map(|&v| v as f64 / max as f64).collect()
    }

    /// Render the matrix as an ASCII heatmap like the paper's Figures 4–5:
    /// darker glyphs = more communication.
    pub fn heatmap(&self) -> String {
        const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let norm = self.normalized();
        let mut out = String::new();
        out.push_str("    ");
        for j in 0..self.n {
            out.push_str(&format!("{j:>2} "));
        }
        out.push('\n');
        for i in 0..self.n {
            out.push_str(&format!("{i:>2} |"));
            for j in 0..self.n {
                let v = norm[i * self.n + j];
                let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                let c = SHADES[idx];
                out.push(' ');
                out.push(c);
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (header row `t0,t1,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &(0..self.n)
                .map(|j| format!("t{j}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for i in 0..self.n {
            out.push_str(
                &(0..self.n)
                    .map(|j| self.get(i, j).to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// JSON rendering: `{"n":N,"rows":[[...],...]}`, row-major.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = (0..self.n)
            .map(|i| Json::Arr((0..self.n).map(|j| Json::U64(self.get(i, j))).collect()))
            .collect();
        Json::obj(vec![
            ("n", Json::U64(self.n as u64)),
            ("rows", Json::Arr(rows)),
        ])
    }

    /// Rebuild from [`CommMatrix::to_json`] output. Unlike [`from_rows`]
    /// this returns an error (rather than panicking) on malformed input —
    /// JSON arrives from outside the process.
    ///
    /// [`from_rows`]: CommMatrix::from_rows
    ///
    /// # Errors
    /// Fails on missing/mistyped fields, ragged rows, an asymmetric matrix,
    /// or a nonzero diagonal.
    pub fn from_json(json: &Json) -> Result<CommMatrix, JsonError> {
        let err = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let n = json
            .get("n")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing or mistyped field: n"))? as usize;
        let rows = json
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| err("missing or mistyped field: rows"))?;
        if rows.len() != n {
            return Err(err("row count does not match n"));
        }
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            let cells = row.as_array().ok_or_else(|| err("row is not an array"))?;
            if cells.len() != n {
                return Err(err("ragged row"));
            }
            for cell in cells {
                data.push(cell.as_u64().ok_or_else(|| err("non-integer cell"))?);
            }
        }
        let m = CommMatrix { n, data };
        for i in 0..n {
            if m.get(i, i) != 0 {
                return Err(err("nonzero diagonal"));
            }
            for j in 0..i {
                if m.get(i, j) != m.get(j, i) {
                    return Err(err("matrix not symmetric"));
                }
            }
        }
        Ok(m)
    }

    /// A stable 64-bit fingerprint of the communication *pattern*.
    ///
    /// Two properties make it a usable cache key for mapping decisions:
    ///
    /// * **Order-independent** — the fingerprint depends only on the final
    ///   cell values, never on the order in which communication was
    ///   accumulated (`add`/`record`/`merge` in any interleaving).
    /// * **Normalization-stable** — uniformly scaling every cell leaves the
    ///   fingerprint unchanged: cells are divided by their collective GCD
    ///   before hashing, so `M` and `3·M` fingerprint identically. Mapping
    ///   algorithms only consume *relative* weights, so such matrices
    ///   yield the same placement.
    ///
    /// The hash is FNV-1a over the thread count and the reduced
    /// upper-triangle cells in row-major order, giving a deterministic
    /// value across runs and platforms (useful for run diffing too).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        fn gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        }
        let mut g = 0u64;
        for (_, _, v) in self.pairs() {
            g = gcd(g, v);
            if g == 1 {
                break;
            }
        }
        let g = g.max(1);
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.n as u64);
        for (_, _, v) in self.pairs() {
            mix(v / g);
        }
        hash
    }

    /// Render the matrix as a binary PPM (P6) image like the paper's
    /// Figures 4–5: one `cell` × `cell` pixel block per matrix entry,
    /// darker = more communication, 1-pixel grid lines.
    pub fn to_ppm(&self, cell: usize) -> Vec<u8> {
        let n = self.n;
        let cell = cell.max(1);
        let side = n * cell + (n + 1); // grid lines between cells
        let norm = self.normalized();
        let mut img = vec![200u8; side * side * 3]; // grid gray
        for i in 0..n {
            for j in 0..n {
                // 0 → white (255), max → near-black (16).
                let v = norm[i * n + j];
                let shade = (255.0 - v * 239.0).round() as u8;
                let y0 = 1 + i * (cell + 1);
                let x0 = 1 + j * (cell + 1);
                for dy in 0..cell {
                    for dx in 0..cell {
                        let px = ((y0 + dy) * side + (x0 + dx)) * 3;
                        img[px] = shade;
                        img[px + 1] = shade;
                        img[px + 2] = shade;
                    }
                }
            }
        }
        let mut out = format!("P6\n{side} {side}\n255\n").into_bytes();
        out.extend_from_slice(&img);
        out
    }

    /// Check the structural invariants (symmetry, zero diagonal). Property
    /// tests call this after arbitrary operation sequences.
    pub fn invariants_hold(&self) -> bool {
        for i in 0..self.n {
            if self.get(i, i) != 0 {
                return false;
            }
            for j in 0..i {
                if self.get(i, j) != self.get(j, i) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zero() {
        let m = CommMatrix::new(4);
        assert_eq!(m.total(), 0);
        assert_eq!(m.max(), 0);
        assert!(m.invariants_hold());
    }

    #[test]
    fn add_is_symmetric() {
        let mut m = CommMatrix::new(4);
        m.add(1, 3, 5);
        assert_eq!(m.get(1, 3), 5);
        assert_eq!(m.get(3, 1), 5);
        assert_eq!(m.total(), 5);
        assert!(m.invariants_hold());
    }

    #[test]
    fn diagonal_adds_ignored() {
        let mut m = CommMatrix::new(3);
        m.add(2, 2, 100);
        assert_eq!(m.total(), 0);
        assert!(m.invariants_hold());
    }

    #[test]
    fn record_increments_by_one() {
        let mut m = CommMatrix::new(2);
        m.record(0, 1);
        m.record(1, 0);
        assert_eq!(m.get(0, 1), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommMatrix::new(3);
        let mut b = CommMatrix::new(3);
        a.add(0, 1, 2);
        b.add(0, 1, 3);
        b.add(1, 2, 7);
        a.merge(&b);
        assert_eq!(a.get(0, 1), 5);
        assert_eq!(a.get(1, 2), 7);
        assert!(a.invariants_hold());
    }

    #[test]
    fn pairs_iterates_upper_triangle() {
        let mut m = CommMatrix::new(3);
        m.add(0, 1, 1);
        m.add(0, 2, 2);
        m.add(1, 2, 3);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(0, 1, 1), (0, 2, 2), (1, 2, 3)]);
    }

    #[test]
    fn normalized_peaks_at_one() {
        let mut m = CommMatrix::new(2);
        m.add(0, 1, 8);
        let n = m.normalized();
        assert_eq!(n[1], 1.0);
        assert_eq!(n[0], 0.0);
    }

    #[test]
    fn normalized_zero_matrix() {
        let m = CommMatrix::new(2);
        assert!(m.normalized().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn heatmap_shape() {
        let mut m = CommMatrix::new(3);
        m.add(0, 2, 10);
        let h = m.heatmap();
        assert_eq!(h.lines().count(), 4); // header + 3 rows
        assert!(h.contains('@')); // the max cell renders darkest
    }

    #[test]
    fn csv_roundtrip_values() {
        let mut m = CommMatrix::new(2);
        m.add(0, 1, 9);
        let csv = m.to_csv();
        assert!(csv.starts_with("t0,t1\n"));
        assert!(csv.contains("0,9"));
        assert!(csv.contains("9,0"));
    }

    #[test]
    fn ppm_has_correct_header_and_size() {
        let mut m = CommMatrix::new(3);
        m.add(0, 1, 10);
        let ppm = m.to_ppm(4);
        // side = 3*4 + 4 = 16
        assert!(ppm.starts_with(b"P6\n16 16\n255\n"));
        let header_len = b"P6\n16 16\n255\n".len();
        assert_eq!(ppm.len(), header_len + 16 * 16 * 3);
        // The max cell (0,1) must be darker than an empty cell (0,2).
        // Cell (0,1) top-left pixel: y=1, x=1+5=6; cell (0,2): x=11.
        let px = |y: usize, x: usize| ppm[header_len + (y * 16 + x) * 3];
        assert!(px(1, 6) < px(1, 11), "hot cell must be darker");
        assert_eq!(px(1, 11), 255, "empty cell is white");
    }

    #[test]
    fn json_round_trip() {
        let mut m = CommMatrix::new(3);
        m.add(0, 1, 9);
        m.add(1, 2, 4);
        let text = m.to_json().render();
        assert_eq!(text, "{\"n\":3,\"rows\":[[0,9,0],[9,0,4],[0,4,0]]}");
        let back = CommMatrix::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_json_rejects_malformed() {
        let cases = [
            "{}",
            "{\"n\":2}",
            "{\"n\":2,\"rows\":[[0,1]]}",
            "{\"n\":2,\"rows\":[[0,1],[1]]}",
            "{\"n\":2,\"rows\":[[0,1],[2,0]]}",
            "{\"n\":2,\"rows\":[[5,1],[1,0]]}",
            "{\"n\":2,\"rows\":[[0,\"x\"],[1,0]]}",
        ];
        for text in cases {
            let json = Json::parse(text).unwrap();
            assert!(CommMatrix::from_json(&json).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn fingerprint_is_accumulation_order_independent() {
        let mut a = CommMatrix::new(4);
        a.add(0, 1, 5);
        a.add(2, 3, 9);
        a.record(1, 2);
        let mut b = CommMatrix::new(4);
        b.record(2, 1);
        b.add(3, 2, 4);
        b.add(1, 0, 5);
        b.add(2, 3, 5);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_is_scale_invariant() {
        let mut a = CommMatrix::new(4);
        a.add(0, 1, 2);
        a.add(1, 3, 6);
        let mut b = CommMatrix::new(4);
        b.add(0, 1, 14);
        b.add(1, 3, 42);
        assert_eq!(a.fingerprint(), b.fingerprint(), "7·M fingerprints as M");
        // But a genuinely different relative pattern differs.
        let mut c = CommMatrix::new(4);
        c.add(0, 1, 2);
        c.add(1, 3, 7);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_sizes_and_patterns() {
        assert_ne!(
            CommMatrix::new(2).fingerprint(),
            CommMatrix::new(3).fingerprint(),
            "thread count is part of the pattern"
        );
        assert_eq!(
            CommMatrix::new(4).fingerprint(),
            CommMatrix::new(4).fingerprint()
        );
        let mut a = CommMatrix::new(4);
        a.add(0, 1, 1);
        let mut b = CommMatrix::new(4);
        b.add(0, 2, 1);
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "same weight, different pair"
        );
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_rows_rejects_asymmetry() {
        CommMatrix::from_rows(2, vec![0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn from_rows_rejects_diagonal() {
        CommMatrix::from_rows(2, vec![1, 0, 0, 0]);
    }
}
