//! Detection-cost model (Section VI-C).
//!
//! The paper measures its SM routine at **231 cycles** and its HM routine at
//! **84,297 cycles** on the evaluated configuration (P = 8 cores, 64-entry
//! 4-way TLBs). We model both routines as a fixed dispatch cost plus a
//! per-comparison cost, with constants calibrated so the paper's
//! configuration reproduces the paper's numbers *exactly*, while other
//! configurations scale by the complexity formulas of Table I:
//!
//! * SM, set-associative: Θ(P) — `(P-1) · ways` entry comparisons,
//! * HM, set-associative: Θ(P²·S) — `P(P-1)/2 · sets · ways²` comparisons.

/// Fixed cycles of one SM search (trap bookkeeping, mirror lookup setup).
pub const SM_FIXED_CYCLES: u64 = 7;
/// Cycles per remote-TLB entry compared in an SM search.
pub const SM_PER_ENTRY_CYCLES: u64 = 8;
/// Fixed cycles of one HM search (interrupt entry, TLB dump setup).
pub const HM_FIXED_CYCLES: u64 = 5_449;
/// Cycles per entry-pair comparison in an HM search.
pub const HM_PER_COMPARISON_CYCLES: u64 = 11;

/// Cost of an SM search that compared `entries` remote-TLB entries.
pub fn sm_search_cycles(entries: u64) -> u64 {
    SM_FIXED_CYCLES + entries * SM_PER_ENTRY_CYCLES
}

/// Cost of an HM search that performed `comparisons` entry-pair
/// comparisons.
pub fn hm_search_cycles(comparisons: u64) -> u64 {
    HM_FIXED_CYCLES + comparisons * HM_PER_COMPARISON_CYCLES
}

/// Predicted SM routine cost for `p` cores and a `ways`-associative TLB
/// with full sets (worst case): `(p-1) · ways` comparisons.
pub fn sm_routine_cycles(p: usize, ways: usize) -> u64 {
    sm_search_cycles((p.saturating_sub(1) * ways) as u64)
}

/// Predicted HM routine cost for `p` busy cores, a TLB of `sets` sets and
/// `ways` ways, all full: `p(p-1)/2 · sets · ways²` comparisons.
pub fn hm_routine_cycles(p: usize, sets: usize, ways: usize) -> u64 {
    let pairs = (p * p.saturating_sub(1) / 2) as u64;
    hm_search_cycles(pairs * sets as u64 * (ways * ways) as u64)
}

/// Predicted total SM overhead as a fraction of execution time, given the
/// application's TLB miss rate, the sampling fraction, the routine cost and
/// the application's average cycles per memory access. This reproduces the
/// structure of Table III: overhead ∝ miss rate.
pub fn sm_overhead_fraction(
    tlb_miss_rate: f64,
    sampled_fraction: f64,
    routine_cycles: u64,
    avg_cycles_per_access: f64,
) -> f64 {
    if avg_cycles_per_access <= 0.0 {
        return 0.0;
    }
    tlb_miss_rate * sampled_fraction * routine_cycles as f64 / avg_cycles_per_access
}

/// Predicted HM overhead fraction: one routine per `period` cycles.
pub fn hm_overhead_fraction(routine_cycles: u64, period_cycles: u64) -> f64 {
    if period_cycles == 0 {
        return 0.0;
    }
    routine_cycles as f64 / period_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_paper_calibration() {
        // 8 cores, 4-way TLB → 7 × 4 = 28 comparisons → 231 cycles (§VI-C).
        assert_eq!(sm_routine_cycles(8, 4), 231);
    }

    #[test]
    fn hm_paper_calibration() {
        // 8 cores, 64-entry 4-way TLB (16 sets): 28 pairs × 16 sets × 16
        // comparisons = 7168 → 84,297 cycles (§VI-C).
        assert_eq!(hm_routine_cycles(8, 16, 4), 84_297);
    }

    #[test]
    fn sm_scales_linearly_in_p() {
        let base = sm_routine_cycles(8, 4) - SM_FIXED_CYCLES;
        let double = sm_routine_cycles(15, 4) - SM_FIXED_CYCLES;
        assert_eq!(double, base * 2);
    }

    #[test]
    fn hm_scales_quadratically_in_p() {
        let c4 = hm_routine_cycles(4, 16, 4) - HM_FIXED_CYCLES;
        let c8 = hm_routine_cycles(8, 16, 4) - HM_FIXED_CYCLES;
        // pairs: 6 vs 28.
        assert_eq!(c8 * 6, c4 * 28);
    }

    #[test]
    fn hm_scales_linearly_in_sets() {
        let c16 = hm_routine_cycles(8, 16, 4) - HM_FIXED_CYCLES;
        let c32 = hm_routine_cycles(8, 32, 4) - HM_FIXED_CYCLES;
        assert_eq!(c32, c16 * 2);
    }

    #[test]
    fn hm_paper_overhead_below_threshold() {
        // §VI-C: "the overhead of HM is less than 0.85%".
        let f = hm_overhead_fraction(hm_routine_cycles(8, 16, 4), 10_000_000);
        assert!(f < 0.0085, "HM overhead {f} not below 0.85%");
        assert!(f > 0.008, "HM overhead {f} unexpectedly small");
    }

    #[test]
    fn sm_overhead_proportional_to_miss_rate() {
        let a = sm_overhead_fraction(0.001, 0.01, 231, 5.0);
        let b = sm_overhead_fraction(0.002, 0.01, 231, 5.0);
        assert!((b - 2.0 * a).abs() < 1e-15);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(sm_overhead_fraction(0.1, 1.0, 231, 0.0), 0.0);
        assert_eq!(hm_overhead_fraction(100, 0), 0.0);
        assert_eq!(sm_routine_cycles(1, 4), SM_FIXED_CYCLES);
        assert_eq!(hm_routine_cycles(1, 16, 4), HM_FIXED_CYCLES);
    }
}
