//! The paper's contribution: detecting the communication pattern of a
//! shared-memory parallel application from TLB contents.
//!
//! Two mechanisms are implemented, exactly following Section IV:
//!
//! * [`SmDetector`] — **software-managed TLBs** (Figure 1a): every TLB miss
//!   traps to the OS; a sampling counter decides whether to search the other
//!   cores' TLB mirrors for the missing page. One match = one unit of
//!   communication between the two threads. Θ(P) per sampled miss with a
//!   set-associative TLB.
//! * [`HmDetector`] — **hardware-managed TLBs** (Figure 1b): a periodic
//!   interrupt dumps all TLBs (via the paper's proposed TLB-read
//!   instruction) and cross-compares every pair, set by set. Θ(P²·S).
//!
//! Both accumulate a [`CommMatrix`]. For validation, [`GroundTruthDetector`]
//! implements the expensive full-trace detection of the prior work the paper
//! compares against (\[10\], \[11\] — every memory access recorded), and
//! [`metrics`] quantifies how close a detected matrix is to that truth.
//!
//! [`overhead`] reproduces the cost model of Section VI-C (231-cycle SM
//! routine, 84,297-cycle HM routine for the paper's configuration), and
//! [`dynamic`] implements the future-work extension: windowed matrices and
//! phase-change detection for dynamic remapping.

pub mod counters;
pub mod decayed;
pub mod dynamic;
pub mod ground_truth;
pub mod hm;
pub mod matrix;
pub mod metrics;
pub mod overhead;
pub mod sm;

pub use counters::{CounterConfig, CounterEstimator};
pub use decayed::DecayedMatrix;
pub use dynamic::{detect_phase_changes, OnlineRemapper, PhaseConfig, WindowedDetector};
pub use ground_truth::{GroundTruthConfig, GroundTruthDetector};
pub use hm::{HmConfig, HmDetector};
pub use matrix::CommMatrix;
pub use sm::{SmConfig, SmDetector};
