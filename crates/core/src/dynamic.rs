//! Dynamic-behaviour support — the paper's future-work direction.
//!
//! Section III-B property 4 demands detecting *changes* in the
//! communication pattern; the conclusion names dynamic migration as future
//! work, citing \[18\] for pattern-change detection. This module provides the
//! detection half: a [`WindowedDetector`] splits any detector's
//! accumulation into fixed-size windows, and [`detect_phase_changes`] flags
//! windows whose pattern diverges from their predecessor — the trigger a
//! dynamic remapper would act on (see `examples/dynamic_phases.rs`).

use crate::matrix::CommMatrix;
use crate::metrics::cosine_similarity;
use tlbmap_mem::{VirtAddr, Vpn};
use tlbmap_obs::Recorder;
use tlbmap_sim::{AccessKind, Mapping, MemOp, SimHooks, TlbView};

/// A detector whose accumulated matrix can be harvested.
pub trait MatrixSource {
    /// The matrix accumulated since the last harvest.
    fn matrix(&self) -> &CommMatrix;
    /// Take the matrix out, resetting the accumulation.
    fn take_matrix(&mut self) -> CommMatrix;
}

impl MatrixSource for crate::sm::SmDetector {
    fn matrix(&self) -> &CommMatrix {
        crate::sm::SmDetector::matrix(self)
    }
    fn take_matrix(&mut self) -> CommMatrix {
        crate::sm::SmDetector::take_matrix(self)
    }
}

impl MatrixSource for crate::hm::HmDetector {
    fn matrix(&self) -> &CommMatrix {
        crate::hm::HmDetector::matrix(self)
    }
    fn take_matrix(&mut self) -> CommMatrix {
        crate::hm::HmDetector::take_matrix(self)
    }
}

/// Windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseConfig {
    /// Close a window every this many observed memory accesses.
    pub window_accesses: u64,
    /// Two consecutive windows with cosine similarity below this are a
    /// phase change.
    pub similarity_threshold: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            window_accesses: 100_000,
            similarity_threshold: 0.7,
        }
    }
}

/// Wraps a detector, harvesting its matrix every `window_accesses` accesses.
#[derive(Debug)]
pub struct WindowedDetector<D> {
    inner: D,
    config: PhaseConfig,
    accesses: u64,
    windows: Vec<CommMatrix>,
}

impl<D: MatrixSource + SimHooks> WindowedDetector<D> {
    /// Wrap `inner` with the given windowing.
    ///
    /// # Panics
    /// Panics if `window_accesses` is zero.
    pub fn new(inner: D, config: PhaseConfig) -> Self {
        assert!(config.window_accesses > 0, "window must be positive");
        WindowedDetector {
            inner,
            config,
            accesses: 0,
            windows: Vec::new(),
        }
    }

    /// Access to the wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Completed windows so far.
    pub fn windows(&self) -> &[CommMatrix] {
        &self.windows
    }

    /// Close the current (possibly partial) window and return all windows.
    pub fn finish(mut self) -> Vec<CommMatrix> {
        let tail = self.inner.take_matrix();
        if tail.total() > 0 || !self.accesses.is_multiple_of(self.config.window_accesses) {
            self.windows.push(tail);
        }
        self.windows
    }

    /// Sum of all windows plus the in-progress accumulation.
    pub fn cumulative_matrix(&self) -> CommMatrix {
        let mut sum = self.inner.matrix().clone();
        for w in &self.windows {
            sum.merge(w);
        }
        sum
    }
}

impl<D: MatrixSource + SimHooks> SimHooks for WindowedDetector<D> {
    fn needs_inline_access(&self) -> bool {
        // Windows are closed by *access count*, so every access must be
        // seen inline regardless of what the wrapped detector needs.
        true
    }

    fn on_access(&mut self, core: usize, thread: usize, vaddr: VirtAddr, op: MemOp) {
        self.inner.on_access(core, thread, vaddr, op);
        self.accesses += 1;
        if self.accesses.is_multiple_of(self.config.window_accesses) {
            let w = self.inner.take_matrix();
            self.windows.push(w);
        }
    }

    fn on_tlb_miss(
        &mut self,
        core: usize,
        thread: usize,
        vpn: Vpn,
        kind: AccessKind,
        view: &TlbView<'_>,
    ) -> u64 {
        self.inner.on_tlb_miss(core, thread, vpn, kind, view)
    }

    fn on_tick(&mut self, now: u64, view: &TlbView<'_>) -> u64 {
        self.inner.on_tick(now, view)
    }
}

/// An online dynamic remapper — the full future-work loop of Section VII,
/// runnable inside the engine.
///
/// Wraps any matrix-producing detector. Every `interval_barriers` barriers
/// it closes a detection window; if the window's pattern diverges from the
/// previous one (cosine similarity below the threshold) — or on the very
/// first window — it asks its `mapper` callback for a fresh placement and
/// returns it from [`SimHooks::on_barrier`], which migrates the threads.
pub struct OnlineRemapper<D> {
    detector: D,
    mapper: Box<dyn FnMut(&CommMatrix) -> Mapping + Send>,
    interval_barriers: u64,
    similarity_threshold: f64,
    prev_window: Option<CommMatrix>,
    last_mapping: Option<Mapping>,
    remaps: u64,
    windows_closed: u64,
    recorder: Recorder,
}

impl<D: MatrixSource + SimHooks> OnlineRemapper<D> {
    /// Wrap `detector`; `mapper` turns a window matrix into a placement.
    ///
    /// # Panics
    /// Panics if `interval_barriers` is zero.
    pub fn new(
        detector: D,
        interval_barriers: u64,
        similarity_threshold: f64,
        mapper: Box<dyn FnMut(&CommMatrix) -> Mapping + Send>,
    ) -> Self {
        assert!(interval_barriers > 0, "interval must be positive");
        OnlineRemapper {
            detector,
            mapper,
            interval_barriers,
            similarity_threshold,
            prev_window: None,
            last_mapping: None,
            remaps: 0,
            windows_closed: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Report phase changes to `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Swap the observability sink in place.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// How many times a new mapping was issued.
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    /// Detection windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Access to the wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }
}

impl<D: MatrixSource + SimHooks> SimHooks for OnlineRemapper<D> {
    fn needs_inline_access(&self) -> bool {
        self.detector.needs_inline_access()
    }

    fn on_access(&mut self, core: usize, thread: usize, vaddr: VirtAddr, op: MemOp) {
        self.detector.on_access(core, thread, vaddr, op);
    }

    fn on_tlb_miss(
        &mut self,
        core: usize,
        thread: usize,
        vpn: Vpn,
        kind: AccessKind,
        view: &TlbView<'_>,
    ) -> u64 {
        self.detector.on_tlb_miss(core, thread, vpn, kind, view)
    }

    fn on_tick(&mut self, now: u64, view: &TlbView<'_>) -> u64 {
        self.detector.on_tick(now, view)
    }

    fn on_barrier(&mut self, barrier_idx: u64, _view: &TlbView<'_>) -> Option<Mapping> {
        if !(barrier_idx + 1).is_multiple_of(self.interval_barriers) {
            return None;
        }
        let window = self.detector.take_matrix();
        self.windows_closed += 1;
        if window.total() == 0 {
            // Sampling detectors legitimately produce empty windows; keep
            // the previous pattern and placement.
            return None;
        }
        let similarity = match &self.prev_window {
            None => 0.0,
            Some(prev) => cosine_similarity(prev, &window),
        };
        let changed = self.prev_window.is_none() || similarity < self.similarity_threshold;
        self.prev_window = Some(window);
        if !changed {
            return None;
        }
        self.recorder
            .record_phase_change(self.windows_closed - 1, similarity);
        let new_mapping = (self.mapper)(self.prev_window.as_ref().expect("just set"));
        if self.last_mapping.as_ref() == Some(&new_mapping) {
            return None;
        }
        self.last_mapping = Some(new_mapping.clone());
        self.remaps += 1;
        Some(new_mapping)
    }
}

/// Indices `w` such that window `w` diverges from window `w-1` (cosine
/// similarity below the threshold). Windows in which nothing was detected
/// are skipped — sampling detectors legitimately produce empty windows.
pub fn detect_phase_changes(windows: &[CommMatrix], threshold: f64) -> Vec<usize> {
    let mut changes = Vec::new();
    let mut prev: Option<usize> = None;
    for (w, m) in windows.iter().enumerate() {
        if m.total() == 0 {
            continue;
        }
        if let Some(p) = prev {
            if cosine_similarity(&windows[p], m) < threshold {
                changes.push(w);
            }
        }
        prev = Some(w);
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::{SmConfig, SmDetector};

    fn neighbor_matrix(n: usize, offset: usize) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for i in 0..n {
            let j = (i + 1 + offset) % n;
            m.add(i, j, 10);
        }
        m
    }

    #[test]
    fn stable_pattern_has_no_changes() {
        let windows: Vec<CommMatrix> = (0..5).map(|_| neighbor_matrix(6, 0)).collect();
        assert!(detect_phase_changes(&windows, 0.7).is_empty());
    }

    #[test]
    fn pattern_shift_is_detected() {
        let mut windows: Vec<CommMatrix> = (0..3).map(|_| neighbor_matrix(6, 0)).collect();
        windows.extend((0..3).map(|_| neighbor_matrix(6, 2)));
        let changes = detect_phase_changes(&windows, 0.7);
        assert_eq!(changes, vec![3]);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut windows = vec![neighbor_matrix(4, 0), CommMatrix::new(4)];
        windows.push(neighbor_matrix(4, 0));
        assert!(detect_phase_changes(&windows, 0.7).is_empty());
    }

    #[test]
    fn windowed_detector_rotates_on_access_count() {
        let det = SmDetector::new(2, SmConfig::every_miss());
        let mut w = WindowedDetector::new(
            det,
            PhaseConfig {
                window_accesses: 10,
                similarity_threshold: 0.7,
            },
        );
        for i in 0..25 {
            w.on_access(0, 0, VirtAddr(i * 64), MemOp::Read);
        }
        assert_eq!(w.windows().len(), 2);
        let all = w.finish();
        assert_eq!(all.len(), 3); // 2 full + 1 partial
    }

    #[test]
    fn cumulative_matrix_sums_windows() {
        struct Fake {
            m: CommMatrix,
        }
        impl MatrixSource for Fake {
            fn matrix(&self) -> &CommMatrix {
                &self.m
            }
            fn take_matrix(&mut self) -> CommMatrix {
                std::mem::replace(&mut self.m, CommMatrix::new(2))
            }
        }
        impl SimHooks for Fake {
            fn on_access(&mut self, _: usize, _: usize, _: VirtAddr, _: MemOp) {
                self.m.add(0, 1, 1);
            }
        }
        let mut w = WindowedDetector::new(
            Fake {
                m: CommMatrix::new(2),
            },
            PhaseConfig {
                window_accesses: 3,
                similarity_threshold: 0.5,
            },
        );
        for _ in 0..7 {
            w.on_access(0, 0, VirtAddr(0), MemOp::Read);
        }
        assert_eq!(w.cumulative_matrix().get(0, 1), 7);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        WindowedDetector::new(
            SmDetector::new(2, SmConfig::every_miss()),
            PhaseConfig {
                window_accesses: 0,
                similarity_threshold: 0.5,
            },
        );
    }
}
