//! Exponentially decayed sliding-window communication matrix.
//!
//! The streaming session subsystem in `tlbmap-serve` ingests sparse
//! [`CommMatrix`] deltas from a long-running tenant. Between deltas the
//! observed pattern must *age*: communication seen many windows ago should
//! count less than communication seen just now, otherwise a phase change
//! is drowned by history and the drift judge never fires.
//!
//! [`DecayedMatrix`] implements the classic exponential moving window with
//! **saturating integer arithmetic only** — `v -= v >> shift` then a
//! saturating add of the incoming delta. No floats are involved, so two
//! replicas fed the same delta sequence hold byte-identical windows (the
//! same determinism contract the detectors and the flight recorder keep).
//!
//! With decay shift `s`, each round keeps a fraction `1 - 2^-s` of the old
//! mass: `s = 1` halves history every delta (fast tracking), `s = 4` keeps
//! 93.75% (smooth, slow tracking). `s = 0` is the degenerate memoryless
//! window — every delta fully replaces the last.

use crate::matrix::CommMatrix;

/// A [`CommMatrix`] whose cells decay exponentially as deltas stream in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecayedMatrix {
    window: CommMatrix,
    shift: u32,
    rounds: u64,
}

impl DecayedMatrix {
    /// An all-zero window for `n` threads with decay shift `shift`
    /// (shifts above 63 are clamped — `v >> 64` is UB-adjacent and a
    /// shift of 63 already keeps effectively all history).
    pub fn new(n: usize, shift: u32) -> Self {
        DecayedMatrix {
            window: CommMatrix::new(n),
            shift: shift.min(63),
            rounds: 0,
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.window.num_threads()
    }

    /// Configured decay shift.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Deltas ingested so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current window as a plain matrix (what the mapper consumes).
    pub fn window(&self) -> &CommMatrix {
        &self.window
    }

    /// Age the window one round, then accumulate `delta` (saturating).
    ///
    /// # Panics
    /// Panics if `delta` is sized for a different thread count.
    pub fn ingest(&mut self, delta: &CommMatrix) {
        assert_eq!(
            self.window.num_threads(),
            delta.num_threads(),
            "delta sized for {} threads, window holds {}",
            delta.num_threads(),
            self.window.num_threads()
        );
        let n = self.window.num_threads();
        let mut next = CommMatrix::new(n);
        for (i, j, v) in self.window.pairs() {
            let aged = if self.shift == 0 {
                0
            } else {
                v - (v >> self.shift)
            };
            let cell = aged.saturating_add(delta.get(i, j));
            if cell != 0 {
                next.add(i, j, cell);
            }
        }
        self.window = next;
        self.rounds += 1;
    }

    /// Age the window one round without adding anything (idle tick).
    pub fn decay_once(&mut self) {
        let zero = CommMatrix::new(self.window.num_threads());
        self.ingest(&zero);
    }

    /// Upper-triangle cells in `(i, j)` order, `i < j` — the vector the
    /// drift judge (`tlbmap_obs::drift::cosine_u64`) compares.
    pub fn upper_cells(&self) -> Vec<u64> {
        self.window.pairs().map(|(_, _, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbmap_obs::drift::cosine_u64;

    fn delta(n: usize, cells: &[(usize, usize, u64)]) -> CommMatrix {
        let mut m = CommMatrix::new(n);
        for &(i, j, v) in cells {
            m.add(i, j, v);
        }
        m
    }

    #[test]
    fn shift_one_halves_history_each_round() {
        let mut w = DecayedMatrix::new(4, 1);
        w.ingest(&delta(4, &[(0, 1, 1000)]));
        assert_eq!(w.window().get(0, 1), 1000);
        w.decay_once();
        assert_eq!(w.window().get(0, 1), 500);
        w.decay_once();
        assert_eq!(w.window().get(0, 1), 250);
        assert_eq!(w.rounds(), 3);
    }

    #[test]
    fn shift_zero_is_memoryless() {
        let mut w = DecayedMatrix::new(4, 0);
        w.ingest(&delta(4, &[(0, 1, 7)]));
        w.ingest(&delta(4, &[(2, 3, 9)]));
        assert_eq!(w.window().get(0, 1), 0, "previous delta fully replaced");
        assert_eq!(w.window().get(2, 3), 9);
    }

    #[test]
    fn window_tracks_a_phase_shift() {
        // Phase A: a 0-1 hot pair. Phase B: a 2-3 hot pair. After a few
        // phase-B deltas the decayed window must look like B, not A.
        let mut w = DecayedMatrix::new(4, 1);
        let a = delta(4, &[(0, 1, 100)]);
        let b = delta(4, &[(2, 3, 100)]);
        for _ in 0..8 {
            w.ingest(&a);
        }
        for _ in 0..8 {
            w.ingest(&b);
        }
        let want: Vec<u64> = b.pairs().map(|(_, _, v)| v).collect();
        let sim = cosine_u64(&w.upper_cells(), &want);
        assert!(sim > 0.99, "window should track phase B, cosine = {sim}");
    }

    #[test]
    fn identical_streams_produce_identical_windows() {
        let mut a = DecayedMatrix::new(8, 3);
        let mut b = DecayedMatrix::new(8, 3);
        for k in 0..32u64 {
            let d = delta(8, &[(0, 1, k * 17 + 1), ((k % 7) as usize, 7, k)]);
            a.ingest(&d);
            b.ingest(&d);
        }
        assert_eq!(a, b, "same delta stream must give a byte-identical window");
        assert_eq!(a.window().fingerprint(), b.window().fingerprint());
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut w = DecayedMatrix::new(2, 4);
        let huge = delta(2, &[(0, 1, u64::MAX)]);
        w.ingest(&huge);
        w.ingest(&huge);
        assert_eq!(w.window().get(0, 1), u64::MAX);
        assert!(w.window().invariants_hold());
    }

    #[test]
    fn oversized_shift_is_clamped() {
        let w = DecayedMatrix::new(2, 200);
        assert_eq!(w.shift(), 63);
    }

    #[test]
    #[should_panic(expected = "delta sized for")]
    fn mismatched_delta_panics() {
        let mut w = DecayedMatrix::new(4, 1);
        w.ingest(&CommMatrix::new(5));
    }
}
