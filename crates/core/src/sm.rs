//! The software-managed-TLB detection mechanism (Section IV-A, Figure 1a).
//!
//! Every TLB miss already traps to the OS on a software-managed
//! architecture, so the detector rides along for free:
//!
//! ```text
//! TLB miss
//!   ├─ counter < threshold?  → counter += 1, return        (cheap path)
//!   └─ else                  → counter = 0,
//!                              search the missing VPN in every *other*
//!                              core's TLB mirror (same set only),
//!                              matrix[me][them] += 1 per match
//! ```
//!
//! With a set-associative TLB only the ways of one set are compared per
//! remote core, so the search is Θ(P) — the key line of the paper's Table I.

use crate::matrix::CommMatrix;
use crate::overhead;
use tlbmap_mem::Vpn;
use tlbmap_obs::{Mechanism, Recorder};
use tlbmap_sim::{AccessKind, SimHooks, TlbView};

/// SM detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Run the search on one out of `sample_threshold` TLB misses. The
    /// paper uses 100 (1% sampling, Table I: n = 100).
    pub sample_threshold: u32,
}

impl SmConfig {
    /// Paper configuration: search every 100th miss.
    pub const fn paper_default() -> Self {
        SmConfig {
            sample_threshold: 100,
        }
    }

    /// Search on every miss (the "all TLB misses" variant of Section VI-A).
    pub const fn every_miss() -> Self {
        SmConfig {
            sample_threshold: 1,
        }
    }
}

/// The software-managed-TLB communication detector.
#[derive(Debug, Clone)]
pub struct SmDetector {
    config: SmConfig,
    matrix: CommMatrix,
    counter: u32,
    misses_seen: u64,
    searches_run: u64,
    matches_found: u64,
    recorder: Recorder,
}

impl SmDetector {
    /// Detector for `n_threads` threads.
    ///
    /// # Panics
    /// Panics if the sampling threshold is zero.
    pub fn new(n_threads: usize, config: SmConfig) -> Self {
        assert!(
            config.sample_threshold >= 1,
            "sample threshold must be >= 1"
        );
        SmDetector {
            config,
            matrix: CommMatrix::new(n_threads),
            counter: 0,
            misses_seen: 0,
            searches_run: 0,
            matches_found: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Report search costs and matrix increments to `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Swap the observability sink in place.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// The communication matrix accumulated so far.
    pub fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }

    /// Take the matrix out, resetting the accumulation (windowed use).
    pub fn take_matrix(&mut self) -> CommMatrix {
        let n = self.matrix.num_threads();
        std::mem::replace(&mut self.matrix, CommMatrix::new(n))
    }

    /// TLB misses observed (sampled or not) — Table III's denominator.
    pub fn misses_seen(&self) -> u64 {
        self.misses_seen
    }

    /// Searches actually executed — Table III's "TLB misses for which we
    /// run SM" numerator.
    pub fn searches_run(&self) -> u64 {
        self.searches_run
    }

    /// Matches recorded into the matrix.
    pub fn matches_found(&self) -> u64 {
        self.matches_found
    }

    /// Fraction of misses that triggered a search.
    pub fn sampled_fraction(&self) -> f64 {
        if self.misses_seen == 0 {
            0.0
        } else {
            self.searches_run as f64 / self.misses_seen as f64
        }
    }
}

impl SimHooks for SmDetector {
    fn on_tlb_miss(
        &mut self,
        core: usize,
        thread: usize,
        vpn: Vpn,
        kind: AccessKind,
        view: &TlbView<'_>,
    ) -> u64 {
        // Only data misses are of interest (§VI-C): instruction pages are
        // shared by every thread and would pollute the matrix with noise.
        if kind == AccessKind::Instr {
            return 0;
        }
        self.misses_seen += 1;
        // Figure 1a: the counter gate.
        if self.counter + 1 < self.config.sample_threshold {
            self.counter += 1;
            return 0;
        }
        self.counter = 0;
        self.searches_run += 1;
        self.recorder.record_search_start(Mechanism::Sm, core);

        // Search every *other* core's TLB for the missing page. Only the
        // set the VPN indexes needs scanning (set-associative shortcut);
        // the modelled routine compares every valid entry of that set, so
        // the cost counts the set's occupancy even though `contains` can
        // answer from the set's signature without scanning.
        let mut entries_compared = 0u64;
        let mut matches_here = 0u64;
        for other in 0..view.num_cores() {
            if other == core {
                continue;
            }
            let tlb = view.tlb(other);
            entries_compared += tlb.set_len(tlb.set_index(vpn)) as u64;
            if tlb.contains(vpn) {
                if let Some(other_thread) = view.thread_on(other) {
                    self.matrix.record(thread, other_thread);
                    self.recorder.record_matrix_inc(thread, other_thread, 1);
                    matches_here += 1;
                }
            }
        }
        self.matches_found += matches_here;
        let cost = overhead::sm_search_cycles(entries_compared);
        self.recorder
            .record_search_end(Mechanism::Sm, core, entries_compared, matches_here, cost);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbmap_mem::{Mmu, MmuConfig, PageGeometry, PageTable, VirtAddr};

    fn make_mmus(n: usize) -> (Vec<Mmu>, PageTable) {
        let geo = PageGeometry::new_4k();
        (
            (0..n)
                .map(|_| Mmu::new(MmuConfig::paper_software_managed(), geo))
                .collect(),
            PageTable::new(geo),
        )
    }

    fn touch(mmus: &mut [Mmu], pt: &mut PageTable, core: usize, page: u64) {
        mmus[core].translate(VirtAddr(page * 4096), pt);
    }

    #[test]
    fn detects_shared_page() {
        let (mut mmus, mut pt) = make_mmus(4);
        // Cores 1 and 2 already have page 7 resident.
        touch(&mut mmus, &mut pt, 1, 7);
        touch(&mut mmus, &mut pt, 2, 7);
        let threads: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(3)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(4, SmConfig::every_miss());
        let cost = det.on_tlb_miss(0, 0, Vpn(7), AccessKind::Data, &view);
        assert!(cost > 0);
        assert_eq!(det.matrix().get(0, 1), 1);
        assert_eq!(det.matrix().get(0, 2), 1);
        assert_eq!(det.matrix().get(0, 3), 0);
        assert_eq!(det.matches_found(), 2);
    }

    #[test]
    fn sampling_gate_skips_most_misses() {
        let (mmus, _pt) = make_mmus(2);
        let threads = vec![Some(0), Some(1)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(
            2,
            SmConfig {
                sample_threshold: 10,
            },
        );
        let mut charged = 0u64;
        for _ in 0..100 {
            charged += det
                .on_tlb_miss(0, 0, Vpn(3), AccessKind::Data, &view)
                .min(1);
        }
        assert_eq!(det.misses_seen(), 100);
        assert_eq!(det.searches_run(), 10);
        // Searches on an empty remote TLB compare 0 entries but still cost
        // the fixed part, so they are charged.
        assert_eq!(charged, 10);
        assert!((det.sampled_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn own_tlb_not_searched() {
        let (mut mmus, mut pt) = make_mmus(2);
        // Only the faulting core itself has the page (re-fault after
        // invalidation scenario) — must not self-match.
        touch(&mut mmus, &mut pt, 0, 9);
        let threads = vec![Some(0), Some(1)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(2, SmConfig::every_miss());
        det.on_tlb_miss(0, 0, Vpn(9), AccessKind::Data, &view);
        assert_eq!(det.matrix().total(), 0);
    }

    #[test]
    fn idle_core_match_not_recorded() {
        let (mut mmus, mut pt) = make_mmus(2);
        touch(&mut mmus, &mut pt, 1, 5);
        let threads = vec![Some(0), None]; // core 1 idle (stale entries)
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(1, SmConfig::every_miss());
        det.on_tlb_miss(0, 0, Vpn(5), AccessKind::Data, &view);
        assert_eq!(det.matrix().total(), 0);
    }

    #[test]
    fn search_cost_matches_paper_for_8_core_4way() {
        // 7 remote TLBs × 4 ways compared (full sets) = 28 entries → the
        // paper's 231-cycle routine.
        let (mut mmus, mut pt) = make_mmus(8);
        // Fill the set that VPN 0 maps to in all remote TLBs. With 16 sets,
        // VPNs 0, 16, 32, 48 share set 0.
        for core in 1..8 {
            for k in 0..4 {
                touch(&mut mmus, &mut pt, core, k * 16);
            }
        }
        let threads: Vec<Option<usize>> = (0..8).map(Some).collect();
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(8, SmConfig::every_miss());
        let cost = det.on_tlb_miss(0, 0, Vpn(0), AccessKind::Data, &view);
        assert_eq!(cost, 231);
    }

    #[test]
    fn take_matrix_resets() {
        let (mut mmus, mut pt) = make_mmus(2);
        touch(&mut mmus, &mut pt, 1, 5);
        let threads = vec![Some(0), Some(1)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(2, SmConfig::every_miss());
        det.on_tlb_miss(0, 0, Vpn(5), AccessKind::Data, &view);
        let m = det.take_matrix();
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(det.matrix().total(), 0);
    }

    #[test]
    fn instruction_misses_are_ignored() {
        let (mut mmus, mut pt) = make_mmus(2);
        touch(&mut mmus, &mut pt, 1, 5);
        let threads = vec![Some(0), Some(1)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = SmDetector::new(2, SmConfig::every_miss());
        let cost = det.on_tlb_miss(0, 0, Vpn(5), AccessKind::Instr, &view);
        assert_eq!(cost, 0, "instruction misses must not trigger a search");
        assert_eq!(det.misses_seen(), 0);
        assert_eq!(det.matrix().total(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        SmDetector::new(
            2,
            SmConfig {
                sample_threshold: 0,
            },
        );
    }
}
