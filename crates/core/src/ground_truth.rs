//! Ground-truth communication detection by full memory tracing.
//!
//! This is the expensive mechanism of the related work the paper positions
//! itself against (Barrow-Williams et al. \[7\], Cruz et al. \[10\], Diener et
//! al. \[11\]): record *every* memory access and derive page-level sharing
//! from the trace. We use it as the accuracy reference for the SM/HM
//! detectors (Section VI-A judges their patterns qualitatively; `metrics`
//! makes the comparison quantitative).
//!
//! To avoid the *false communication* problem of Section III-B (threads that
//! touch the same page far apart in time are not communicating), an access
//! by thread `t` to page `p` counts as communication with thread `u` only
//! if `u` touched `p` within the last `window` accesses.

use crate::matrix::CommMatrix;
use std::collections::HashMap;
use tlbmap_mem::{PageGeometry, VirtAddr, Vpn};
use tlbmap_obs::Recorder;
use tlbmap_sim::{MemOp, SimHooks};

/// Ground-truth detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruthConfig {
    /// Page geometry used to bucket addresses.
    pub geometry: PageGeometry,
    /// Temporal window in accesses: a co-access older than this is treated
    /// as false communication and ignored.
    pub window: u64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            geometry: PageGeometry::new_4k(),
            window: 100_000,
        }
    }
}

/// Full-trace, page-granular communication detector.
#[derive(Debug, Clone)]
pub struct GroundTruthDetector {
    config: GroundTruthConfig,
    matrix: CommMatrix,
    /// Per page: per thread, the logical time of its last access.
    last_access: HashMap<Vpn, Vec<Option<u64>>>,
    now: u64,
    n_threads: usize,
    recorder: Recorder,
}

impl GroundTruthDetector {
    /// Detector for `n_threads` threads.
    pub fn new(n_threads: usize, config: GroundTruthConfig) -> Self {
        GroundTruthDetector {
            config,
            matrix: CommMatrix::new(n_threads),
            last_access: HashMap::new(),
            now: 0,
            n_threads,
            recorder: Recorder::disabled(),
        }
    }

    /// Report matrix increments to `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Swap the observability sink in place.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// The accumulated communication matrix.
    pub fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }

    /// Total accesses observed.
    pub fn accesses_seen(&self) -> u64 {
        self.now
    }

    /// Number of distinct pages touched.
    pub fn pages_seen(&self) -> usize {
        self.last_access.len()
    }

    /// Record one access (public so traces can be replayed without the
    /// engine).
    pub fn observe(&mut self, thread: usize, vaddr: VirtAddr) {
        self.now += 1;
        let vpn = vaddr.vpn(self.config.geometry);
        let slots = self
            .last_access
            .entry(vpn)
            .or_insert_with(|| vec![None; self.n_threads]);
        for (u, slot) in slots.iter_enumerate_mut() {
            if u == thread {
                continue;
            }
            if let Some(t) = *slot {
                if self.now - t <= self.config.window {
                    self.matrix.record(thread, u);
                    self.recorder.record_matrix_inc(thread, u, 1);
                }
            }
        }
        slots[thread] = Some(self.now);
    }
}

/// Tiny helper so the loop above reads naturally.
trait IterEnumerateMut<T> {
    fn iter_enumerate_mut(&mut self) -> std::iter::Enumerate<std::slice::IterMut<'_, T>>;
}

impl<T> IterEnumerateMut<T> for Vec<T> {
    fn iter_enumerate_mut(&mut self) -> std::iter::Enumerate<std::slice::IterMut<'_, T>> {
        self.iter_mut().enumerate()
    }
}

impl SimHooks for GroundTruthDetector {
    fn needs_inline_access(&self) -> bool {
        true
    }

    fn on_access(&mut self, _core: usize, thread: usize, vaddr: VirtAddr, _op: MemOp) {
        self.observe(thread, vaddr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u64) -> VirtAddr {
        VirtAddr(i * 4096)
    }

    #[test]
    fn co_access_within_window_counts() {
        let mut d = GroundTruthDetector::new(2, GroundTruthConfig::default());
        d.observe(0, page(5));
        d.observe(1, page(5));
        assert_eq!(d.matrix().get(0, 1), 1);
    }

    #[test]
    fn distant_co_access_is_false_communication() {
        let mut d = GroundTruthDetector::new(
            3,
            GroundTruthConfig {
                geometry: PageGeometry::new_4k(),
                window: 5,
            },
        );
        d.observe(0, page(5));
        // Thread 2 generates 10 unrelated accesses, aging thread 0's touch
        // beyond the window.
        for i in 0..10 {
            d.observe(2, page(100 + i));
        }
        d.observe(1, page(5));
        assert_eq!(d.matrix().get(0, 1), 0, "stale co-access must not count");
    }

    #[test]
    fn same_page_different_offsets_count() {
        // Page-granularity: false sharing inside a page still counts, as the
        // paper states ("any access to the same memory page is considered
        // as communication, regardless of the offset").
        let mut d = GroundTruthDetector::new(2, GroundTruthConfig::default());
        d.observe(0, VirtAddr(4096));
        d.observe(1, VirtAddr(4096 + 64));
        assert_eq!(d.matrix().get(0, 1), 1);
    }

    #[test]
    fn private_pages_yield_no_communication() {
        let mut d = GroundTruthDetector::new(2, GroundTruthConfig::default());
        for i in 0..50 {
            d.observe(0, page(i));
            d.observe(1, page(1000 + i));
        }
        assert_eq!(d.matrix().total(), 0);
        assert_eq!(d.pages_seen(), 100);
    }

    #[test]
    fn self_accesses_do_not_count() {
        let mut d = GroundTruthDetector::new(2, GroundTruthConfig::default());
        d.observe(0, page(1));
        d.observe(0, page(1));
        d.observe(0, page(1));
        assert_eq!(d.matrix().total(), 0);
    }

    #[test]
    fn repeated_sharing_accumulates() {
        let mut d = GroundTruthDetector::new(2, GroundTruthConfig::default());
        for _ in 0..10 {
            d.observe(0, page(7));
            d.observe(1, page(7));
        }
        assert_eq!(d.matrix().get(0, 1), 19); // first access has no partner
    }
}
