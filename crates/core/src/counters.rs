//! Indirect, hardware-counter-based communication estimation — the
//! related-work baseline (Azimi et al., Section II of the paper).
//!
//! Hardware performance counters see *events per core* — cache misses,
//! remote-cache (snoop-serviced) accesses — but not which other core the
//! data came from, let alone which page. Estimators built on them must
//! infer pairwise communication from temporal correlation: cores whose
//! coherence activity spikes in the same interval are probably
//! communicating with each other.
//!
//! [`CounterEstimator`] implements that scheme: it accumulates per-thread
//! snoop-serviced access counts over fixed windows and, at each window
//! boundary, credits every thread pair with the *smaller* of their two
//! activity counts (the co-activity they could have shared). The paper's
//! critique — "hardware counters can only be used to estimate the
//! communication pattern between the threads indirectly" — is exactly what
//! the accuracy ablation shows: on heterogeneous applications this blurs
//! the structure the TLB mechanisms capture directly.

use crate::dynamic::MatrixSource;
use crate::matrix::CommMatrix;
use tlbmap_sim::{AccessOutcome, SimHooks};

/// Estimator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterConfig {
    /// Correlation window, in observed accesses.
    pub window_accesses: u64,
}

impl Default for CounterConfig {
    fn default() -> Self {
        CounterConfig {
            window_accesses: 20_000,
        }
    }
}

/// The counter-correlation estimator.
#[derive(Debug, Clone)]
pub struct CounterEstimator {
    config: CounterConfig,
    matrix: CommMatrix,
    /// Snoop-serviced accesses per thread in the current window.
    activity: Vec<u64>,
    accesses: u64,
    windows: u64,
}

impl CounterEstimator {
    /// Estimator for `n_threads` threads.
    ///
    /// # Panics
    /// Panics for a zero window.
    pub fn new(n_threads: usize, config: CounterConfig) -> Self {
        assert!(config.window_accesses > 0, "window must be positive");
        CounterEstimator {
            config,
            matrix: CommMatrix::new(n_threads),
            activity: vec![0; n_threads],
            accesses: 0,
            windows: 0,
        }
    }

    /// The estimated communication matrix.
    pub fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }

    /// Windows correlated so far. Activity in a trailing partial window
    /// is not yet in the matrix; call [`CounterEstimator::flush_window`]
    /// at end of run if it should count.
    pub fn windows_closed(&self) -> u64 {
        self.windows
    }

    /// Force-close the current (partial) window.
    pub fn flush_window(&mut self) {
        if self.activity.iter().any(|&a| a > 0) {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        self.windows += 1;
        let n = self.activity.len();
        for i in 0..n {
            for j in (i + 1)..n {
                // Co-activity: the communication the pair *could* have
                // exchanged this window. All the estimator can say.
                let credit = self.activity[i].min(self.activity[j]);
                self.matrix.add(i, j, credit);
            }
        }
        self.activity.iter_mut().for_each(|a| *a = 0);
    }
}

impl MatrixSource for CounterEstimator {
    fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }
    fn take_matrix(&mut self) -> CommMatrix {
        let n = self.matrix.num_threads();
        std::mem::replace(&mut self.matrix, CommMatrix::new(n))
    }
}

impl SimHooks for CounterEstimator {
    fn needs_inline_access(&self) -> bool {
        // Models per-access hardware counters: every outcome must be seen.
        true
    }

    fn on_access_outcome(&mut self, _core: usize, thread: usize, outcome: &AccessOutcome) {
        if outcome.snooped {
            self.activity[thread] += 1;
        }
        self.accesses += 1;
        if self.accesses.is_multiple_of(self.config.window_accesses) {
            self.close_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbmap_sim::AccessOutcome;

    fn outcome(snooped: bool) -> AccessOutcome {
        AccessOutcome {
            cycles: 10,
            l1_hit: false,
            l2_hit: false,
            snooped,
        }
    }

    #[test]
    fn correlates_co_active_threads() {
        let mut e = CounterEstimator::new(
            3,
            CounterConfig {
                window_accesses: 10,
            },
        );
        // Threads 0 and 1 snoop heavily, thread 2 never.
        for i in 0..10 {
            let t = i % 2;
            e.on_access_outcome(t, t, &outcome(true));
        }
        assert_eq!(e.windows_closed(), 1);
        assert_eq!(e.matrix().get(0, 1), 5);
        assert_eq!(e.matrix().get(0, 2), 0);
        assert_eq!(e.matrix().get(1, 2), 0);
    }

    #[test]
    fn cannot_distinguish_partners_within_a_window() {
        // The estimator's fundamental blindness: four equally active
        // threads yield a homogeneous matrix even if in truth 0 only talks
        // to 1 and 2 only to 3.
        let mut e = CounterEstimator::new(4, CounterConfig { window_accesses: 8 });
        for t in 0..4 {
            e.on_access_outcome(t, t, &outcome(true));
            e.on_access_outcome(t, t, &outcome(true));
        }
        let m = e.matrix();
        assert_eq!(m.get(0, 1), m.get(0, 2), "indirect estimate is pair-blind");
        assert_eq!(m.get(0, 1), m.get(2, 3));
    }

    #[test]
    fn non_snooped_accesses_carry_no_signal() {
        let mut e = CounterEstimator::new(2, CounterConfig { window_accesses: 4 });
        for _ in 0..8 {
            e.on_access_outcome(0, 0, &outcome(false));
        }
        assert_eq!(e.windows_closed(), 2);
        assert_eq!(e.matrix().total(), 0);
    }

    #[test]
    fn matrix_source_resets() {
        let mut e = CounterEstimator::new(2, CounterConfig { window_accesses: 2 });
        e.on_access_outcome(0, 0, &outcome(true));
        e.on_access_outcome(1, 1, &outcome(true));
        assert_eq!(MatrixSource::matrix(&e).get(0, 1), 1);
        let m = e.take_matrix();
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(MatrixSource::matrix(&e).total(), 0);
    }

    #[test]
    fn flush_counts_partial_window() {
        let mut e = CounterEstimator::new(
            2,
            CounterConfig {
                window_accesses: 100,
            },
        );
        e.on_access_outcome(0, 0, &outcome(true));
        e.on_access_outcome(1, 1, &outcome(true));
        assert_eq!(e.matrix().total(), 0, "partial window not yet counted");
        e.flush_window();
        assert_eq!(e.matrix().get(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        CounterEstimator::new(2, CounterConfig { window_accesses: 0 });
    }
}
