//! Quantitative accuracy metrics between communication matrices.
//!
//! Section VI-A judges the detected patterns visually against known
//! application structure; these metrics make the comparison reproducible:
//! how similar is an SM/HM matrix to the ground-truth matrix? All metrics
//! operate on the upper triangle (the diagonal carries no information) and
//! are scale-invariant where that is meaningful — detectors sample, so only
//! the *shape* of the matrix matters for mapping.

use crate::matrix::CommMatrix;

fn upper_triangle(m: &CommMatrix) -> Vec<f64> {
    m.pairs().map(|(_, _, v)| v as f64).collect()
}

/// Pearson correlation of the upper triangles; `1.0` for identical shapes,
/// `0.0` when either matrix is constant (no pattern to correlate).
///
/// The arithmetic lives in [`tlbmap_obs::drift`] so the in-engine flight
/// recorder's online phase detector and this offline metric share one
/// kernel (the dependency chain runs obs ← core ← prof, so the shared
/// code sits at the bottom).
pub fn pearson_correlation(a: &CommMatrix, b: &CommMatrix) -> f64 {
    assert_eq!(a.num_threads(), b.num_threads(), "matrix sizes differ");
    tlbmap_obs::drift::pearson(&upper_triangle(a), &upper_triangle(b))
}

/// Cosine similarity of the upper triangles; scale-invariant, `0.0` when
/// either matrix is empty. Shares its kernel with the flight recorder's
/// phase detector via [`tlbmap_obs::drift`].
pub fn cosine_similarity(a: &CommMatrix, b: &CommMatrix) -> f64 {
    assert_eq!(a.num_threads(), b.num_threads(), "matrix sizes differ");
    tlbmap_obs::drift::cosine(&upper_triangle(a), &upper_triangle(b))
}

/// Mean squared error between the *normalized* matrices (each scaled to
/// peak 1), so sampling rate differences do not dominate.
pub fn normalized_mse(a: &CommMatrix, b: &CommMatrix) -> f64 {
    assert_eq!(a.num_threads(), b.num_threads(), "matrix sizes differ");
    let na = a.normalized();
    let nb = b.normalized();
    if na.is_empty() {
        return 0.0;
    }
    na.iter()
        .zip(&nb)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        / na.len() as f64
}

/// Heterogeneity of a matrix: coefficient of variation of the upper
/// triangle. Near zero means a *homogeneous* pattern (CG/EP/FT in the
/// paper) for which mapping cannot help; large values mean structure worth
/// exploiting (BT/SP/MG…).
pub fn heterogeneity(m: &CommMatrix) -> f64 {
    let xs = upper_triangle(m);
    let n = xs.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_pattern(scale: u64) -> CommMatrix {
        let mut m = CommMatrix::new(4);
        m.add(0, 1, 10 * scale);
        m.add(2, 3, 10 * scale);
        m.add(0, 2, scale);
        m.add(1, 3, scale);
        m
    }

    #[test]
    fn identical_shape_correlates_perfectly() {
        let a = diag_pattern(1);
        let b = diag_pattern(7); // same shape, different sampling rate
        assert!((pearson_correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
        assert!(normalized_mse(&a, &b) < 1e-12);
    }

    #[test]
    fn opposite_patterns_anticorrelate() {
        let mut a = CommMatrix::new(4);
        a.add(0, 1, 10);
        a.add(2, 3, 10);
        let mut b = CommMatrix::new(4);
        b.add(0, 2, 10);
        b.add(1, 3, 10);
        b.add(0, 3, 10);
        b.add(1, 2, 10);
        assert!(pearson_correlation(&a, &b) < 0.0);
    }

    #[test]
    fn constant_matrix_has_zero_correlation() {
        let mut a = CommMatrix::new(3);
        for (i, j) in [(0, 1), (0, 2), (1, 2)] {
            a.add(i, j, 5);
        }
        let b = diag_pattern(1);
        // 3-thread version of diag for size match:
        let mut b3 = CommMatrix::new(3);
        b3.add(0, 1, 10);
        let _ = b;
        assert_eq!(pearson_correlation(&a, &b3), 0.0);
    }

    #[test]
    fn empty_matrices_are_safe() {
        let a = CommMatrix::new(4);
        let b = CommMatrix::new(4);
        assert_eq!(pearson_correlation(&a, &b), 0.0);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert_eq!(normalized_mse(&a, &b), 0.0);
        assert_eq!(heterogeneity(&a), 0.0);
    }

    #[test]
    fn heterogeneity_separates_patterns() {
        // Homogeneous: all pairs equal.
        let mut homo = CommMatrix::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                homo.add(i, j, 10);
            }
        }
        let het = diag_pattern(1);
        assert!(heterogeneity(&homo) < 1e-12);
        assert!(heterogeneity(&het) > 0.5);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn size_mismatch_rejected() {
        pearson_correlation(&CommMatrix::new(2), &CommMatrix::new(3));
    }
}
