//! The hardware-managed-TLB detection mechanism (Section IV-B, Figure 1b).
//!
//! x86-style TLBs are invisible to the OS, so the paper proposes a minor
//! hardware addition — an instruction that reads TLB contents — plus a
//! periodic interrupt. On each interrupt the kernel dumps every TLB and
//! compares **all pairs** of them set by set, incrementing the
//! communication matrix once per page resident in both.
//!
//! The engine drives the period (`SimConfig::tick_period`, the paper's
//! n = 10,000,000 cycles); this hook only does the comparison and reports
//! its cost, which is Θ(P²·S) for set-associative TLBs — the expensive side
//! of Table I.

use crate::matrix::CommMatrix;
use crate::overhead;
use tlbmap_mem::{Tlb, Vpn};
use tlbmap_obs::{Mechanism, Recorder};
use tlbmap_sim::{SimHooks, TlbView};

/// HM detector parameters.
///
/// Simulated runs are orders of magnitude shorter than the real executions
/// the paper measures, so experiments often *fire* the interrupt more often
/// than the deployment period to collect a comparable number of searches.
/// The overhead charged per search is scaled by `actual / nominal` so the
/// overhead **fraction** of execution time stays the deployment value
/// (routine cost / nominal period, < 0.85% in the paper) rather than
/// ballooning with the compressed timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmConfig {
    /// Deployment interrupt period (the paper's n = 10,000,000 cycles).
    pub nominal_period_cycles: u64,
    /// Period the engine actually fires `on_tick` at (its `tick_period`).
    pub actual_period_cycles: u64,
}

impl HmConfig {
    /// Paper configuration: a search every 10 million cycles, charged at
    /// full routine cost.
    pub const fn paper_default() -> Self {
        HmConfig {
            nominal_period_cycles: 10_000_000,
            actual_period_cycles: 10_000_000,
        }
    }

    /// Fire every `actual` cycles while modelling the paper's 10M-cycle
    /// deployment overhead fraction.
    pub const fn scaled(actual: u64) -> Self {
        HmConfig {
            nominal_period_cycles: 10_000_000,
            actual_period_cycles: actual,
        }
    }

    /// Fire and charge at the same period (full-cost model).
    pub const fn full_cost(period: u64) -> Self {
        HmConfig {
            nominal_period_cycles: period,
            actual_period_cycles: period,
        }
    }

    fn scale_cost(&self, cycles: u64) -> u64 {
        if self.actual_period_cycles >= self.nominal_period_cycles {
            return cycles;
        }
        let scaled = (cycles as f64 * self.actual_period_cycles as f64
            / self.nominal_period_cycles as f64)
            .round() as u64;
        scaled.max(1)
    }
}

/// The hardware-managed-TLB communication detector.
#[derive(Debug, Clone)]
pub struct HmDetector {
    config: HmConfig,
    matrix: CommMatrix,
    searches_run: u64,
    matches_found: u64,
    recorder: Recorder,
    /// Per-core scratch: sorted VPNs of each TLB set, rebuilt at the start
    /// of every search and reused across searches to avoid reallocation.
    /// Sorting once per core lets every pair comparison run as a linear
    /// merge instead of a nested scan.
    snaps: Vec<Vec<Vec<u64>>>,
}

impl HmDetector {
    /// Detector for `n_threads` threads.
    pub fn new(n_threads: usize, config: HmConfig) -> Self {
        HmDetector {
            config,
            matrix: CommMatrix::new(n_threads),
            searches_run: 0,
            matches_found: 0,
            recorder: Recorder::disabled(),
            snaps: Vec::new(),
        }
    }

    /// Report search costs and matrix increments to `rec`.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Swap the observability sink in place.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// The communication matrix accumulated so far.
    pub fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }

    /// Take the matrix out, resetting the accumulation (windowed use).
    pub fn take_matrix(&mut self) -> CommMatrix {
        let n = self.matrix.num_threads();
        std::mem::replace(&mut self.matrix, CommMatrix::new(n))
    }

    /// Interrupts that ran the all-pairs search.
    pub fn searches_run(&self) -> u64 {
        self.searches_run
    }

    /// Matches recorded into the matrix.
    pub fn matches_found(&self) -> u64 {
        self.matches_found
    }

    /// Compare every pair of TLBs in `view`, recording matches. Public so
    /// tools can drive a search outside the engine. Returns the number of
    /// entry comparisons the modelled routine performs — this feeds the
    /// cycle cost and is *not* reduced by the shortcuts below, which only
    /// cut the simulator's own work.
    ///
    /// Same geometry: matching pages live in the same set index, so sets
    /// are compared pairwise — by 64-bit signature AND first (an O(1)
    /// proof of disjointness), then a linear merge of the sorted
    /// snapshots, Θ(w) instead of the nested Θ(w²) scan. Differing
    /// geometries index the same VPN into *different* sets, so each of
    /// A's entries probes the set it indexes in B.
    pub fn search_all_pairs(&mut self, view: &TlbView<'_>) -> u64 {
        self.searches_run += 1;
        let p = view.num_cores();
        self.rebuild_snapshots(view);
        let mut comparisons = 0u64;
        for a in 0..p {
            let ta = match view.thread_on(a) {
                Some(t) => t,
                None => continue,
            };
            for b in (a + 1)..p {
                let tb = match view.thread_on(b) {
                    Some(t) => t,
                    None => continue,
                };
                let tlb_a = view.tlb(a);
                let tlb_b = view.tlb(b);
                if tlb_a.config().sets() == tlb_b.config().sets() {
                    for set in 0..tlb_a.config().sets() {
                        let na = tlb_a.set_len(set) as u64;
                        let nb = tlb_b.set_len(set) as u64;
                        // The routine compares every pair of valid entries.
                        comparisons += na * nb;
                        if na == 0 || nb == 0 {
                            continue;
                        }
                        if tlb_a.set_signature(set) & tlb_b.set_signature(set) == 0 {
                            continue;
                        }
                        let sa = &self.snaps[a][set];
                        let sb = &self.snaps[b][set];
                        let (mut i, mut j) = (0, 0);
                        while i < sa.len() && j < sb.len() {
                            match sa[i].cmp(&sb[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    self.matrix.record(ta, tb);
                                    self.recorder.record_matrix_inc(ta, tb, 1);
                                    self.matches_found += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                } else {
                    for set_vpns in &self.snaps[a] {
                        for &vpn in set_vpns {
                            let set_b = tlb_b.set_index(Vpn(vpn));
                            comparisons += tlb_b.set_len(set_b) as u64;
                            if tlb_b.set_signature(set_b) & Tlb::signature_bit(Vpn(vpn)) == 0 {
                                continue;
                            }
                            if self.snaps[b][set_b].binary_search(&vpn).is_ok() {
                                self.matrix.record(ta, tb);
                                self.recorder.record_matrix_inc(ta, tb, 1);
                                self.matches_found += 1;
                            }
                        }
                    }
                }
            }
        }
        comparisons
    }

    /// Rebuild the per-core sorted-VPN snapshots for the cores that
    /// participate in this search.
    fn rebuild_snapshots(&mut self, view: &TlbView<'_>) {
        let p = view.num_cores();
        if self.snaps.len() < p {
            self.snaps.resize_with(p, Vec::new);
        }
        for c in 0..p {
            if view.thread_on(c).is_none() {
                continue;
            }
            let tlb = view.tlb(c);
            let sets = tlb.config().sets();
            let snap = &mut self.snaps[c];
            snap.resize_with(sets, Vec::new);
            for (set, buf) in snap.iter_mut().enumerate() {
                buf.clear();
                buf.extend(tlb.set_entries(set).map(|e| e.vpn.0));
                buf.sort_unstable();
            }
        }
    }

    /// The pre-optimization search, kept as the oracle for the property
    /// test: every entry of A probes the set it indexes in B, with plain
    /// nested loops and no signatures. Must stay behaviourally identical
    /// to [`HmDetector::search_all_pairs`] (matrix, match count, and
    /// comparison count).
    #[cfg(test)]
    fn search_all_pairs_naive(&mut self, view: &TlbView<'_>) -> u64 {
        self.searches_run += 1;
        let p = view.num_cores();
        let mut comparisons = 0u64;
        for a in 0..p {
            let ta = match view.thread_on(a) {
                Some(t) => t,
                None => continue,
            };
            for b in (a + 1)..p {
                let tb = match view.thread_on(b) {
                    Some(t) => t,
                    None => continue,
                };
                let tlb_a = view.tlb(a);
                let tlb_b = view.tlb(b);
                for ea in tlb_a.entries() {
                    let set_b = tlb_b.set_index(ea.vpn);
                    for eb in tlb_b.set_entries(set_b) {
                        comparisons += 1;
                        if ea.vpn == eb.vpn {
                            self.matrix.record(ta, tb);
                            self.recorder.record_matrix_inc(ta, tb, 1);
                            self.matches_found += 1;
                        }
                    }
                }
            }
        }
        comparisons
    }
}

impl SimHooks for HmDetector {
    fn on_tick(&mut self, _now: u64, view: &TlbView<'_>) -> u64 {
        // The periodic interrupt is machine-wide; its cost is charged to
        // whichever core the engine interrupted, but the trace attributes
        // it to core 0 (the kernel's bookkeeping CPU).
        self.recorder.record_search_start(Mechanism::Hm, 0);
        let matches_before = self.matches_found;
        let comparisons = self.search_all_pairs(view);
        let cost = self
            .config
            .scale_cost(overhead::hm_search_cycles(comparisons));
        self.recorder.record_search_end(
            Mechanism::Hm,
            0,
            comparisons,
            self.matches_found - matches_before,
            cost,
        );
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tlbmap_mem::{Mmu, MmuConfig, PageGeometry, PageTable, VirtAddr};
    use tlbmap_sim::TlbView;

    fn make_mmus(n: usize) -> (Vec<Mmu>, PageTable) {
        let geo = PageGeometry::new_4k();
        (
            (0..n)
                .map(|_| Mmu::new(MmuConfig::paper_hardware_managed(), geo))
                .collect(),
            PageTable::new(geo),
        )
    }

    fn touch(mmus: &mut [Mmu], pt: &mut PageTable, core: usize, page: u64) {
        mmus[core].translate(VirtAddr(page * 4096), pt);
    }

    #[test]
    fn finds_all_shared_pages_across_pairs() {
        let (mut mmus, mut pt) = make_mmus(4);
        // Pages 1,2 shared by cores 0-1; page 3 shared by cores 2-3.
        touch(&mut mmus, &mut pt, 0, 1);
        touch(&mut mmus, &mut pt, 0, 2);
        touch(&mut mmus, &mut pt, 1, 1);
        touch(&mut mmus, &mut pt, 1, 2);
        touch(&mut mmus, &mut pt, 2, 3);
        touch(&mut mmus, &mut pt, 3, 3);
        let threads: Vec<Option<usize>> = (0..4).map(Some).collect();
        let view = TlbView::new(&mmus, &threads);
        let mut det = HmDetector::new(4, HmConfig::paper_default());
        det.search_all_pairs(&view);
        assert_eq!(det.matrix().get(0, 1), 2);
        assert_eq!(det.matrix().get(2, 3), 1);
        assert_eq!(det.matrix().get(0, 2), 0);
        assert_eq!(det.matches_found(), 3);
    }

    #[test]
    fn idle_cores_skipped() {
        let (mut mmus, mut pt) = make_mmus(2);
        touch(&mut mmus, &mut pt, 0, 1);
        touch(&mut mmus, &mut pt, 1, 1);
        let threads = vec![Some(0), None];
        let view = TlbView::new(&mmus, &threads);
        let mut det = HmDetector::new(1, HmConfig::paper_default());
        let comparisons = det.search_all_pairs(&view);
        assert_eq!(comparisons, 0);
        assert_eq!(det.matrix().total(), 0);
    }

    #[test]
    fn tick_charges_paper_cost_when_tlbs_full() {
        // Fill all 8 TLBs completely: 64 entries each, 4 ways × 16 sets.
        let (mut mmus, mut pt) = make_mmus(8);
        for core in 0..8 {
            for page in 0..64 {
                touch(&mut mmus, &mut pt, core, page);
            }
        }
        let threads: Vec<Option<usize>> = (0..8).map(Some).collect();
        let view = TlbView::new(&mmus, &threads);
        let mut det = HmDetector::new(8, HmConfig::paper_default());
        let cost = det.on_tick(0, &view);
        // 28 pairs × 16 sets × 4×4 comparisons = 7168 comparisons → the
        // paper's 84,297-cycle routine.
        assert_eq!(cost, 84_297);
        assert_eq!(det.searches_run(), 1);
    }

    #[test]
    fn pairwise_search_is_symmetric_in_matrix() {
        let (mut mmus, mut pt) = make_mmus(3);
        touch(&mut mmus, &mut pt, 0, 9);
        touch(&mut mmus, &mut pt, 2, 9);
        let threads: Vec<Option<usize>> = (0..3).map(Some).collect();
        let view = TlbView::new(&mmus, &threads);
        let mut det = HmDetector::new(3, HmConfig::paper_default());
        det.search_all_pairs(&view);
        assert!(det.matrix().invariants_hold());
        assert_eq!(det.matrix().get(0, 2), det.matrix().get(2, 0));
    }

    #[test]
    fn mixed_geometries_still_find_shared_pages() {
        use tlbmap_mem::TlbConfig;
        let geo = PageGeometry::new_4k();
        // Core 0: 64-entry 4-way (16 sets); core 1: 8-entry 4-way (2 sets).
        // VPN 5 indexes set 5 on core 0 but set 1 on core 1 — the old
        // min-sets loop never scanned set 5 of core 0 and dropped the match.
        let mk = |entries, ways| {
            Mmu::new(
                MmuConfig {
                    tlb: TlbConfig { entries, ways },
                    ..MmuConfig::paper_hardware_managed()
                },
                geo,
            )
        };
        let mut mmus = vec![mk(64, 4), mk(8, 4)];
        let mut pt = PageTable::new(geo);
        touch(&mut mmus, &mut pt, 0, 5);
        touch(&mut mmus, &mut pt, 1, 5);
        let threads = vec![Some(0), Some(1)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = HmDetector::new(2, HmConfig::paper_default());
        let comparisons = det.search_all_pairs(&view);
        assert_eq!(det.matrix().get(0, 1), 1, "cross-geometry match dropped");
        assert_eq!(det.matches_found(), 1);
        // One entry in A probing a one-entry set in B.
        assert_eq!(comparisons, 1);
    }

    proptest! {
        /// The signature/merge search is behaviourally identical to the
        /// naive probe oracle on random TLB states: mixed geometries,
        /// partially-filled sets, and idle cores included.
        #[test]
        fn search_matches_naive_oracle_on_random_states(
            cores in prop::collection::vec(
                (0usize..5, prop::collection::vec(0u64..48, 0..40), prop::bool::weighted(0.2)),
                2..6,
            ),
        ) {
            use tlbmap_mem::TlbConfig;
            let geo = PageGeometry::new_4k();
            // (entries, ways) pairs with power-of-two set counts, mixed sizes.
            let geometries = [(64usize, 4usize), (16, 4), (8, 4), (8, 2), (4, 4)];
            let mut mmus = Vec::new();
            let mut threads = Vec::new();
            let mut pt = PageTable::new(geo);
            for (i, (g, pages, idle)) in cores.iter().enumerate() {
                let (entries, ways) = geometries[*g];
                let mut mmu = Mmu::new(
                    MmuConfig {
                        tlb: TlbConfig { entries, ways },
                        ..MmuConfig::paper_hardware_managed()
                    },
                    geo,
                );
                for &p in pages {
                    mmu.translate(VirtAddr(p * 4096), &mut pt);
                }
                mmus.push(mmu);
                threads.push(if *idle { None } else { Some(i) });
            }
            let view = TlbView::new(&mmus, &threads);
            let n = mmus.len();
            let mut fast = HmDetector::new(n, HmConfig::paper_default());
            let mut naive = HmDetector::new(n, HmConfig::paper_default());
            let c_fast = fast.search_all_pairs(&view);
            let c_naive = naive.search_all_pairs_naive(&view);
            prop_assert_eq!(c_fast, c_naive);
            prop_assert_eq!(fast.matrix(), naive.matrix());
            prop_assert_eq!(fast.matches_found(), naive.matches_found());
            // Repeat on the same view: snapshot reuse must not go stale.
            let c_fast2 = fast.search_all_pairs(&view);
            prop_assert_eq!(c_fast2, c_naive);
        }
    }

    #[test]
    fn repeated_ticks_accumulate() {
        let (mut mmus, mut pt) = make_mmus(2);
        touch(&mut mmus, &mut pt, 0, 4);
        touch(&mut mmus, &mut pt, 1, 4);
        let threads = vec![Some(0), Some(1)];
        let view = TlbView::new(&mmus, &threads);
        let mut det = HmDetector::new(2, HmConfig::paper_default());
        det.on_tick(0, &view);
        det.on_tick(10_000_000, &view);
        assert_eq!(det.matrix().get(0, 1), 2);
        assert_eq!(det.searches_run(), 2);
    }
}
