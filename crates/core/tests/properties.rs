//! Property-based tests of the detection layer.

use proptest::prelude::*;
use tlbmap_core::metrics::{cosine_similarity, normalized_mse, pearson_correlation};
use tlbmap_core::{CommMatrix, GroundTruthConfig, GroundTruthDetector};
use tlbmap_mem::{PageGeometry, VirtAddr};

fn add_op() -> impl Strategy<Value = (usize, usize, u64)> {
    (0usize..6, 0usize..6, 0u64..1000)
}

proptest! {
    /// The communication matrix stays symmetric with a zero diagonal under
    /// arbitrary add/merge sequences, and `total` matches the sum of pairs.
    #[test]
    fn matrix_invariants(adds in prop::collection::vec(add_op(), 0..100),
                         merges in prop::collection::vec(add_op(), 0..100)) {
        let mut a = CommMatrix::new(6);
        for (i, j, w) in adds {
            a.add(i, j, w);
            prop_assert!(a.invariants_hold());
        }
        let mut b = CommMatrix::new(6);
        for (i, j, w) in merges {
            b.add(i, j, w);
        }
        a.merge(&b);
        prop_assert!(a.invariants_hold());
        let total: u64 = a.pairs().map(|(_, _, v)| v).sum();
        prop_assert_eq!(total, a.total());
    }

    /// Similarity metrics are symmetric, bounded, and maximal on identical
    /// shapes regardless of scale.
    #[test]
    fn metric_properties(adds in prop::collection::vec(add_op(), 1..50), scale in 1u64..20) {
        let mut a = CommMatrix::new(6);
        for &(i, j, w) in &adds {
            a.add(i, j, w);
        }
        let mut b = CommMatrix::new(6);
        for &(i, j, w) in &adds {
            b.add(i, j, w * scale);
        }
        let r = pearson_correlation(&a, &b);
        let c = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&r), "r out of range: {r}");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "cosine out of range: {c}");
        // Same shape at different scale: cosine 1, mse 0 (unless matrix is
        // all-zero or constant).
        if a.total() > 0 {
            prop_assert!((c - 1.0).abs() < 1e-9, "cosine of scaled copy: {c}");
            prop_assert!(normalized_mse(&a, &b) < 1e-12);
        }
        // Symmetry.
        prop_assert!((pearson_correlation(&b, &a) - r).abs() < 1e-12);
        prop_assert!((cosine_similarity(&b, &a) - c).abs() < 1e-12);
    }

    /// The ground-truth detector records communication iff two different
    /// threads touch the same page within the window; its matrix total is
    /// bounded by accesses × (threads - 1).
    #[test]
    fn ground_truth_bounds(accesses in prop::collection::vec((0usize..4, 0u64..16), 1..300),
                           window in 1u64..100) {
        let n = 4;
        let mut d = GroundTruthDetector::new(n, GroundTruthConfig {
            geometry: PageGeometry::new_4k(),
            window,
        });
        for &(t, page) in &accesses {
            d.observe(t, VirtAddr(page * 4096));
        }
        prop_assert!(d.matrix().invariants_hold());
        prop_assert!(d.matrix().total() <= accesses.len() as u64 * (n as u64 - 1));
        prop_assert_eq!(d.accesses_seen(), accesses.len() as u64);
        // Replays are deterministic.
        let mut d2 = GroundTruthDetector::new(n, GroundTruthConfig {
            geometry: PageGeometry::new_4k(),
            window,
        });
        for &(t, page) in &accesses {
            d2.observe(t, VirtAddr(page * 4096));
        }
        prop_assert_eq!(d.matrix(), d2.matrix());
    }

    /// A wider window never detects less communication.
    #[test]
    fn window_monotonicity(accesses in prop::collection::vec((0usize..4, 0u64..8), 1..200),
                           w1 in 1u64..50, extra in 1u64..50) {
        let run = |window: u64| -> u64 {
            let mut d = GroundTruthDetector::new(4, GroundTruthConfig {
                geometry: PageGeometry::new_4k(),
                window,
            });
            for &(t, page) in &accesses {
                d.observe(t, VirtAddr(page * 4096));
            }
            d.matrix().total()
        };
        prop_assert!(run(w1 + extra) >= run(w1), "wider window detected less");
    }
}
