//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal wall-clock benchmarking harness with the criterion API
//! surface its benches use: `Criterion::benchmark_group`, `bench_function`
//! / `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Reported times are the
//! median of the samples that survive MAD-based outlier rejection (see
//! [`Bencher::robust_median`]); there are no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_sample_time: Duration,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_count` samples of auto-scaled batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up before sizing anything: the first calls of the first
        // benchmark in a process pay one-off costs (allocator growth, page
        // faults, CPU frequency ramp) that would otherwise both skew the
        // batch size and depress every sample of that entry. Spin for a
        // fixed wall-clock budget, then size the batch from the fastest
        // observed call.
        let warmup_budget = Duration::from_millis(200);
        let warmup_start = Instant::now();
        let mut once = Duration::MAX;
        loop {
            let start = Instant::now();
            black_box(f());
            once = once.min(start.elapsed());
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let once = once.max(Duration::from_nanos(1));
        let per_sample = self.target_sample_time.max(once);
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let total = start.elapsed();
            self.samples.push(total / batch as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// Median after MAD-based outlier rejection, plus the rejected count.
    ///
    /// A sample is an outlier when it sits more than 3 scaled MADs from
    /// the sample median (the scale factor 1.4826 makes the MAD a
    /// consistent estimator of the standard deviation under normal noise,
    /// so the cut is the robust analogue of a 3-sigma filter). Shared CI
    /// runners produce occasional 2-10x samples from scheduler
    /// preemption; clipping them is what lets the perf-gate threshold sit
    /// well below the worst-case single-sample spike. When the MAD is
    /// zero (a majority of samples quantized to the same value) every
    /// sample is kept — a zero-width cut would reject legitimate jitter.
    fn robust_median(&self) -> (Duration, usize) {
        let med = self.median();
        if self.samples.is_empty() {
            return (Duration::ZERO, 0);
        }
        let med_ns = med.as_nanos() as f64;
        let mut dev: Vec<f64> = self
            .samples
            .iter()
            .map(|s| (s.as_nanos() as f64 - med_ns).abs())
            .collect();
        dev.sort_unstable_by(|a, b| a.total_cmp(b));
        let mad = dev[dev.len() / 2];
        if mad == 0.0 {
            return (med, 0);
        }
        let cut = 3.0 * 1.4826 * mad;
        let mut kept: Vec<Duration> = self
            .samples
            .iter()
            .copied()
            .filter(|s| (s.as_nanos() as f64 - med_ns).abs() <= cut)
            .collect();
        let rejected = self.samples.len() - kept.len();
        kept.sort_unstable();
        (kept[kept.len() / 2], rejected)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_sample_time: Duration::from_millis(10),
            sample_count: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &str, b: &Bencher) {
        let (med, rejected) = b.robust_median();
        let ns = med.as_nanos() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / (ns / 1e9))
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / (ns / 1e9))
            }
            _ => String::new(),
        };
        let note = if rejected > 0 {
            format!("  ({rejected} outlier(s) clipped)")
        } else {
            String::new()
        };
        println!(
            "{}/{:<28} {:>12.1} ns/iter{}{}",
            self.name, id, ns, rate, note
        );
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
        assert!(runs > 0, "benchmark closure never executed");
    }

    fn bencher_with(samples_ns: &[u64]) -> Bencher {
        Bencher {
            samples: samples_ns
                .iter()
                .map(|&n| Duration::from_nanos(n))
                .collect(),
            target_sample_time: Duration::from_millis(10),
            sample_count: samples_ns.len(),
        }
    }

    #[test]
    fn mad_filter_clips_preemption_spikes() {
        // Nine tight samples plus one 10x scheduler spike: the plain
        // median already resists it, but the filter must flag and drop it
        // so downstream trend-watching sees a clean sample set.
        let b = bencher_with(&[100, 101, 99, 102, 100, 98, 101, 100, 99, 1000]);
        let (med, rejected) = b.robust_median();
        assert_eq!(rejected, 1, "the 1000ns spike is an outlier");
        assert!((98..=102).contains(&(med.as_nanos() as u64)));
    }

    #[test]
    fn mad_zero_keeps_all_samples() {
        // Quantized clocks collapse most samples onto one value; a
        // zero-width cut must not reject the rest.
        let b = bencher_with(&[50, 50, 50, 50, 50, 50, 50, 53, 47, 50]);
        let (med, rejected) = b.robust_median();
        assert_eq!(rejected, 0);
        assert_eq!(med.as_nanos(), 50);
    }

    #[test]
    fn clean_samples_pass_through_unchanged() {
        let b = bencher_with(&[10, 12, 11, 13, 9, 11, 12, 10, 11, 12]);
        let (med, rejected) = b.robust_median();
        assert_eq!(rejected, 0);
        assert_eq!(med, b.median());
        let (empty_med, empty_rej) = bencher_with(&[]).robust_median();
        assert_eq!(empty_med, Duration::ZERO);
        assert_eq!(empty_rej, 0);
    }

    #[test]
    fn macros_expand() {
        fn bench_a(c: &mut Criterion) {
            c.benchmark_group("m")
                .sample_size(2)
                .bench_function("noop", |b| b.iter(|| black_box(1)));
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
