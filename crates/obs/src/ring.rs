//! A fixed-capacity ring buffer for trace events.
//!
//! Long runs emit far more events than anyone wants on disk; the ring keeps
//! the most recent `capacity` events and counts what it had to drop, so the
//! exported trace is bounded and the drop count is an honest part of the
//! artifact (no silent truncation).

/// Fixed-capacity overwrite-oldest buffer.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// A ring holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Append, overwriting the oldest element when full. Returns `true` if
    /// an element was dropped to make room.
    pub fn push(&mut self, value: T) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push(value);
            false
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            true
        }
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many elements were overwritten since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_order() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        assert!(!r.push(1));
        assert!(!r.push(2));
        assert!(!r.push(3));
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.dropped(), 0);

        assert!(r.push(4)); // overwrites 1
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(r.push(5));
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn wraps_through_multiple_generations() {
        let mut r = RingBuffer::new(4);
        for i in 0..23 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![19, 20, 21, 22]);
        assert_eq!(r.dropped(), 19);
    }

    #[test]
    fn capacity_one() {
        let mut r = RingBuffer::new(1);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }
}
