//! The structured event schema.
//!
//! Every event carries the global cycle estimate at which it happened (the
//! running core's clock — the engine's global minimum at dispatch time).
//! Events serialize to one JSON object per line (JSONL) and to Chrome
//! `trace_event` records loadable in `chrome://tracing` / Perfetto, where
//! one simulated cycle is displayed as one microsecond.

use crate::json::Json;

/// Which detection mechanism produced a search event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Software-managed TLB detector (per-miss sampled search).
    Sm,
    /// Hardware-managed TLB detector (periodic all-pairs search).
    Hm,
    /// Ground-truth full-trace detector.
    GroundTruth,
}

impl Mechanism {
    /// Stable schema name.
    pub fn as_str(self) -> &'static str {
        match self {
            Mechanism::Sm => "sm",
            Mechanism::Hm => "hm",
            Mechanism::GroundTruth => "gt",
        }
    }
}

/// One traced occurrence. Field units: `cycle` is the simulated global
/// cycle, `charged_cycles` is detection overhead charged to the core,
/// `vpn` is a virtual page number.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A TLB miss, before the fill.
    TlbMiss {
        /// Global cycle.
        cycle: u64,
        /// Faulting core.
        core: u32,
        /// Faulting thread.
        thread: u32,
        /// Missing virtual page number.
        vpn: u64,
        /// `true` for a data miss, `false` for an instruction miss.
        data: bool,
    },
    /// A whole-TLB flush (thread migration cools both involved cores).
    TlbFlush {
        /// Global cycle.
        cycle: u64,
        /// Flushed core.
        core: u32,
    },
    /// A detection search began.
    SearchStart {
        /// Global cycle.
        cycle: u64,
        /// Detecting mechanism.
        mech: Mechanism,
        /// Core running (and paying for) the search.
        core: u32,
    },
    /// A detection search finished.
    SearchEnd {
        /// Global cycle (same as the matching start: searches are atomic
        /// in simulated time; their cost is `charged_cycles`).
        cycle: u64,
        /// Detecting mechanism.
        mech: Mechanism,
        /// Core that ran the search.
        core: u32,
        /// TLB entries (SM) or entry pairs (HM) compared.
        entries: u64,
        /// Matches found and recorded into the matrix.
        matches: u64,
        /// Overhead cycles charged to the core.
        charged_cycles: u64,
    },
    /// The communication matrix cell `(a, b)` grew by `amount`.
    MatrixInc {
        /// Global cycle.
        cycle: u64,
        /// First thread of the pair.
        a: u32,
        /// Second thread of the pair.
        b: u32,
        /// Units of communication added.
        amount: u64,
    },
    /// All threads crossed barrier `index`.
    Barrier {
        /// Release cycle.
        cycle: u64,
        /// Zero-based barrier index.
        index: u64,
    },
    /// A thread migrated between cores at a barrier.
    Migration {
        /// Release cycle of the triggering barrier.
        cycle: u64,
        /// Migrated thread.
        thread: u32,
        /// Previous core.
        from_core: u32,
        /// New core.
        to_core: u32,
    },
    /// A detection window diverged from its phase's reference pattern
    /// (phase change).
    PhaseChange {
        /// Global cycle.
        cycle: u64,
        /// Index of the window that closed.
        window: u64,
        /// The phase id the run just entered (phase 0 never emits).
        phase: u64,
        /// Cosine similarity to the reference pattern, scaled by 1e6
        /// (kept integral so traces stay byte-stable).
        similarity_ppm: u64,
    },
    /// A periodic communication-matrix snapshot was taken.
    Snapshot {
        /// Global cycle.
        cycle: u64,
        /// Zero-based snapshot index.
        index: u64,
    },
    /// One matching level of the hierarchical mapper completed.
    MapperRound {
        /// Matching level (0 = thread pairs).
        level: u32,
        /// Groups before merging.
        groups_before: u32,
        /// Groups after merging.
        groups_after: u32,
        /// Total communication weight captured by the matched pairs.
        weight: u64,
    },
    /// One mapping-service request completed, with its span timings.
    /// Times are host microseconds (the service runs off the wall clock,
    /// not the simulated one — `cycle()` reports 0 like `MapperRound`).
    ServeRequest {
        /// Request ID minted at accept: connection ID in the high bits,
        /// per-connection sequence number in the low 32.
        req_id: u64,
        /// Stable request-kind name (`map`, `health`, `stats`, `admin`,
        /// `shutdown`).
        kind: &'static str,
        /// Time from frame arrival to request parsed.
        parse_us: u64,
        /// Time spent waiting in the work queue (0 for inline requests).
        queue_us: u64,
        /// Time a worker spent computing (cache probe + mapper).
        compute_us: u64,
        /// Frame arrival to response ready.
        total_us: u64,
        /// Whether the result came from the cache.
        cached: bool,
        /// `"ok"` or the stable error-code name.
        outcome: &'static str,
    },
    /// A streaming session's drift judge crossed the remap threshold and a
    /// new mapping was installed. Times are host microseconds; like
    /// [`Event::ServeRequest`], `cycle()` reports 0.
    Remap {
        /// Session ID the remap belongs to.
        session: u64,
        /// Delta sequence number (within the session) that triggered it.
        seq: u64,
        /// Cosine similarity of the decayed window to the installed
        /// mapping's reference matrix, scaled by 1e6 (integral so traces
        /// stay byte-stable — the [`Event::PhaseChange`] convention).
        similarity_ppm: u64,
        /// Whether the matching was warm-started from the previous
        /// pairing on every level (no cold blossom recompute).
        warm: bool,
        /// Time spent recomputing the mapping.
        compute_us: u64,
    },
}

impl Event {
    /// Stable schema name of the event type.
    pub fn name(&self) -> &'static str {
        match self {
            Event::TlbMiss { .. } => "tlb_miss",
            Event::TlbFlush { .. } => "tlb_flush",
            Event::SearchStart { .. } => "search_start",
            Event::SearchEnd { .. } => "search_end",
            Event::MatrixInc { .. } => "matrix_inc",
            Event::Barrier { .. } => "barrier",
            Event::Migration { .. } => "migration",
            Event::PhaseChange { .. } => "phase_change",
            Event::Snapshot { .. } => "snapshot",
            Event::MapperRound { .. } => "mapper_round",
            Event::ServeRequest { .. } => "serve_request",
            Event::Remap { .. } => "remap",
        }
    }

    /// The cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::TlbMiss { cycle, .. }
            | Event::TlbFlush { cycle, .. }
            | Event::SearchStart { cycle, .. }
            | Event::SearchEnd { cycle, .. }
            | Event::MatrixInc { cycle, .. }
            | Event::Barrier { cycle, .. }
            | Event::Migration { cycle, .. }
            | Event::PhaseChange { cycle, .. }
            | Event::Snapshot { cycle, .. } => cycle,
            Event::MapperRound { .. } | Event::ServeRequest { .. } | Event::Remap { .. } => 0,
        }
    }

    /// JSONL representation: `{"ev":<name>,"cycle":...,<fields>}`.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ev".to_string(), Json::Str(self.name().to_string())),
            ("cycle".to_string(), Json::U64(self.cycle())),
        ];
        let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
        match *self {
            Event::TlbMiss {
                core,
                thread,
                vpn,
                data,
                ..
            } => {
                push("core", Json::U64(core.into()));
                push("thread", Json::U64(thread.into()));
                push("vpn", Json::U64(vpn));
                push("data", Json::Bool(data));
            }
            Event::TlbFlush { core, .. } => push("core", Json::U64(core.into())),
            Event::SearchStart { mech, core, .. } => {
                push("mech", Json::Str(mech.as_str().to_string()));
                push("core", Json::U64(core.into()));
            }
            Event::SearchEnd {
                mech,
                core,
                entries,
                matches,
                charged_cycles,
                ..
            } => {
                push("mech", Json::Str(mech.as_str().to_string()));
                push("core", Json::U64(core.into()));
                push("entries", Json::U64(entries));
                push("matches", Json::U64(matches));
                push("charged_cycles", Json::U64(charged_cycles));
            }
            Event::MatrixInc { a, b, amount, .. } => {
                push("a", Json::U64(a.into()));
                push("b", Json::U64(b.into()));
                push("amount", Json::U64(amount));
            }
            Event::Barrier { index, .. } => push("index", Json::U64(index)),
            Event::Migration {
                thread,
                from_core,
                to_core,
                ..
            } => {
                push("thread", Json::U64(thread.into()));
                push("from_core", Json::U64(from_core.into()));
                push("to_core", Json::U64(to_core.into()));
            }
            Event::PhaseChange {
                window,
                phase,
                similarity_ppm,
                ..
            } => {
                push("window", Json::U64(window));
                push("phase", Json::U64(phase));
                push("similarity_ppm", Json::U64(similarity_ppm));
            }
            Event::Snapshot { index, .. } => push("index", Json::U64(index)),
            Event::MapperRound {
                level,
                groups_before,
                groups_after,
                weight,
            } => {
                push("level", Json::U64(level.into()));
                push("groups_before", Json::U64(groups_before.into()));
                push("groups_after", Json::U64(groups_after.into()));
                push("weight", Json::U64(weight));
            }
            Event::ServeRequest {
                req_id,
                kind,
                parse_us,
                queue_us,
                compute_us,
                total_us,
                cached,
                outcome,
            } => {
                push("req_id", Json::U64(req_id));
                push("kind", Json::Str(kind.to_string()));
                push("parse_us", Json::U64(parse_us));
                push("queue_us", Json::U64(queue_us));
                push("compute_us", Json::U64(compute_us));
                push("total_us", Json::U64(total_us));
                push("cached", Json::Bool(cached));
                push("outcome", Json::Str(outcome.to_string()));
            }
            Event::Remap {
                session,
                seq,
                similarity_ppm,
                warm,
                compute_us,
            } => {
                push("session", Json::U64(session));
                push("seq", Json::U64(seq));
                push("similarity_ppm", Json::U64(similarity_ppm));
                push("warm", Json::Bool(warm));
                push("compute_us", Json::U64(compute_us));
            }
        }
        Json::Obj(pairs)
    }

    /// Chrome `trace_event` representation. Searches render as complete
    /// (`ph:"X"`) slices whose duration is the charged overhead; everything
    /// else is an instant event on its core/thread track.
    pub fn to_chrome(&self) -> Json {
        let (ph, tid, dur) = match *self {
            Event::SearchEnd {
                core,
                charged_cycles,
                ..
            } => ("X", u64::from(core), Some(charged_cycles.max(1))),
            // Service requests render as complete slices whose duration
            // is the request's wall time in microseconds.
            Event::ServeRequest { total_us, .. } => ("X", 0, Some(total_us.max(1))),
            // Remaps render as slices on their session's track.
            Event::Remap {
                session,
                compute_us,
                ..
            } => ("X", session, Some(compute_us.max(1))),
            Event::TlbMiss { core, .. }
            | Event::TlbFlush { core, .. }
            | Event::SearchStart { core, .. } => ("i", u64::from(core), None),
            Event::Migration { thread, .. } => ("i", u64::from(thread), None),
            _ => ("i", 0, None),
        };
        let mut pairs = vec![
            ("name".to_string(), Json::Str(self.name().to_string())),
            ("ph".to_string(), Json::Str(ph.to_string())),
            ("ts".to_string(), Json::U64(self.cycle())),
            ("pid".to_string(), Json::U64(0)),
            ("tid".to_string(), Json::U64(tid)),
        ];
        if let Some(d) = dur {
            pairs.push(("dur".to_string(), Json::U64(d)));
        }
        if ph == "i" {
            // Instant scope: thread-local.
            pairs.push(("s".to_string(), Json::Str("t".to_string())));
        }
        pairs.push(("args".to_string(), self.to_json()));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_shape_is_stable() {
        let e = Event::TlbMiss {
            cycle: 1234,
            core: 3,
            thread: 5,
            vpn: 0x77,
            data: true,
        };
        assert_eq!(
            e.to_json().render(),
            "{\"ev\":\"tlb_miss\",\"cycle\":1234,\"core\":3,\"thread\":5,\"vpn\":119,\"data\":true}"
        );
    }

    #[test]
    fn search_end_renders_duration_in_chrome() {
        let e = Event::SearchEnd {
            cycle: 100,
            mech: Mechanism::Sm,
            core: 2,
            entries: 28,
            matches: 3,
            charged_cycles: 231,
        };
        let chrome = e.to_chrome();
        assert_eq!(chrome.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(chrome.get("dur").unwrap().as_u64(), Some(231));
        assert_eq!(chrome.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(
            chrome.get("args").unwrap().get("mech").unwrap().as_str(),
            Some("sm")
        );
    }

    #[test]
    fn every_event_names_itself() {
        let events = [
            Event::TlbMiss {
                cycle: 0,
                core: 0,
                thread: 0,
                vpn: 0,
                data: false,
            },
            Event::TlbFlush { cycle: 0, core: 0 },
            Event::SearchStart {
                cycle: 0,
                mech: Mechanism::Hm,
                core: 0,
            },
            Event::SearchEnd {
                cycle: 0,
                mech: Mechanism::GroundTruth,
                core: 0,
                entries: 0,
                matches: 0,
                charged_cycles: 0,
            },
            Event::MatrixInc {
                cycle: 0,
                a: 0,
                b: 1,
                amount: 1,
            },
            Event::Barrier { cycle: 0, index: 0 },
            Event::Migration {
                cycle: 0,
                thread: 0,
                from_core: 0,
                to_core: 1,
            },
            Event::PhaseChange {
                cycle: 0,
                window: 0,
                phase: 1,
                similarity_ppm: 0,
            },
            Event::Snapshot { cycle: 0, index: 0 },
            Event::MapperRound {
                level: 0,
                groups_before: 8,
                groups_after: 4,
                weight: 9,
            },
            Event::ServeRequest {
                req_id: (7 << 32) | 3,
                kind: "map",
                parse_us: 12,
                queue_us: 80,
                compute_us: 150,
                total_us: 260,
                cached: false,
                outcome: "ok",
            },
            Event::Remap {
                session: 2,
                seq: 17,
                similarity_ppm: 431_000,
                warm: true,
                compute_us: 90,
            },
        ];
        let mut names: Vec<_> = events.iter().map(|e| e.name()).collect();
        names.dedup();
        assert_eq!(names.len(), events.len(), "names must be distinct");
        for e in &events {
            let rendered = e.to_json().render();
            assert!(rendered.contains(e.name()));
            // Every event parses back as valid JSON.
            assert!(crate::json::Json::parse(&rendered).is_ok());
            assert!(crate::json::Json::parse(&e.to_chrome().render()).is_ok());
        }
    }
}
