//! Slice-level pattern-similarity math shared by the offline timeline and
//! the online flight recorder.
//!
//! These are the pearson/cosine kernels behind
//! `tlbmap_core::metrics::{pearson_correlation, cosine_similarity}` and
//! the `tlbmap_prof` accuracy timeline. They live here — at the bottom of
//! the dependency chain — so the in-engine phase detector
//! ([`crate::flight`]) can reuse the exact same drift code the offline
//! analysis gates on: `tlbmap-core` depends on `tlbmap-obs`, not the
//! other way around.
//!
//! Conventions (identical to the matrix-level wrappers): empty or
//! constant inputs score `0.0`, never `NaN` — a windowed detector must be
//! able to compare degenerate windows without poisoning downstream
//! arithmetic.

/// Pearson correlation of two equal-length samples; `0.0` when either
/// input has fewer than two elements or zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "sample lengths differ");
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Cosine similarity of two equal-length vectors; scale-invariant, `0.0`
/// when either vector is all zero.
pub fn cosine(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "vector lengths differ");
    let dot: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let na: f64 = xs.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = ys.iter().map(|y| y * y).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// [`cosine`] over integer cell vectors (the flight recorder's windowed
/// matrix deltas are `u64` counts).
pub fn cosine_u64(xs: &[u64], ys: &[u64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len(), "vector lengths differ");
    let dot: f64 = xs.iter().zip(ys).map(|(&x, &y)| x as f64 * y as f64).sum();
    let na: f64 = xs.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = ys.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_shapes_score_one() {
        let a = [10.0, 0.0, 10.0, 1.0];
        let b = [70.0, 0.0, 70.0, 7.0]; // same shape, 7x the scale
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
        assert!((cosine_u64(&[10, 0, 10, 1], &[70, 0, 70, 7]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_patterns_score_zero_cosine() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine_u64(&[5, 0, 0], &[0, 3, 0]), 0.0);
    }

    #[test]
    fn opposite_trends_anticorrelate() {
        assert!(pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) < -0.99);
    }

    #[test]
    fn degenerate_inputs_are_zero_not_nan() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[5.0, 5.0], &[1.0, 2.0]), 0.0, "zero variance");
        assert_eq!(cosine(&[], &[]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_u64(&[0, 0], &[0, 0]), 0.0);
    }
}
