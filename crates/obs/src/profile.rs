//! The self-profiler: scoped cycle accounting for the simulator itself.
//!
//! Answers "where do simulated cycles go?" — the engine charges every
//! cycle it spends to a component in a fixed tree (compute, TLB lookup,
//! cache access, detection scans, barriers, migrations, ticks, mapper
//! rounds). Components form a static stack, so the profile renders as a
//! collapsed-stack/flamegraph text format (`engine;access;tlb 12345`, one
//! line per component — paste into `flamegraph.pl` or speedscope) and as
//! inclusive/exclusive totals with call counts.
//!
//! Charging uses *simulated* cycles, not host time, so two identical
//! seeded runs produce byte-identical profiles — the property the
//! `tlbmap analyze` / `tlbmap diff` pipeline gates on. The profile lives
//! inside the [`crate::Recorder`]; a disabled recorder charges nothing
//! and the engine's monomorphized probes compile away entirely.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Components of the static profile tree.
///
/// The tree:
///
/// ```text
/// engine
/// ├── compute
/// ├── access
/// │   ├── tlb          (lookup + fill: trap and page-walk cycles)
/// │   ├── detect       (detection scans triggered by TLB misses)
/// │   └── cache        (hierarchy access, coherence, memory)
/// ├── tick
/// │   └── detect       (periodic HM scans)
/// ├── barrier
/// └── migration
/// mapper
/// └── level            (one hierarchical-matching round each)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfId {
    /// The execution engine (root; charged only via children).
    Engine,
    /// Compute (non-memory) trace events.
    EngineCompute,
    /// Memory-access trace events (parent of tlb/detect/cache).
    EngineAccess,
    /// TLB lookups and fills (trap + page-walk cycles on a miss).
    TlbLookup,
    /// Detection scans charged on TLB misses (SM mechanism).
    MissDetectScan,
    /// Cache-hierarchy accesses (hits, coherence, memory fetches).
    CacheAccess,
    /// Periodic interrupts (parent of the HM scan).
    EngineTick,
    /// Detection scans charged by the periodic tick (HM mechanism).
    TickDetectScan,
    /// Barrier release costs.
    Barrier,
    /// Thread-migration costs.
    Migration,
    /// The thread mapper (root; charged only via children).
    Mapper,
    /// One hierarchical-matching level (call counts; mapping runs
    /// off the simulated clock so it charges no cycles).
    MapperLevel,
    /// Simulated slack at windowed-engine epoch barriers: cycles domains
    /// sat parked waiting for the window horizon to close.
    ShardBarrier,
}

/// All components, in tree order (parents before children).
pub const PROF_NODES: [ProfId; 13] = [
    ProfId::Engine,
    ProfId::EngineCompute,
    ProfId::EngineAccess,
    ProfId::TlbLookup,
    ProfId::MissDetectScan,
    ProfId::CacheAccess,
    ProfId::EngineTick,
    ProfId::TickDetectScan,
    ProfId::Barrier,
    ProfId::Migration,
    ProfId::ShardBarrier,
    ProfId::Mapper,
    ProfId::MapperLevel,
];

impl ProfId {
    /// Short component name (one stack frame).
    pub fn as_str(self) -> &'static str {
        match self {
            ProfId::Engine => "engine",
            ProfId::EngineCompute => "compute",
            ProfId::EngineAccess => "access",
            ProfId::TlbLookup => "tlb",
            ProfId::MissDetectScan => "detect",
            ProfId::CacheAccess => "cache",
            ProfId::EngineTick => "tick",
            ProfId::TickDetectScan => "detect",
            ProfId::Barrier => "barrier",
            ProfId::Migration => "migration",
            ProfId::Mapper => "mapper",
            ProfId::MapperLevel => "level",
            ProfId::ShardBarrier => "shard_barrier",
        }
    }

    /// Enclosing component, `None` for roots.
    pub fn parent(self) -> Option<ProfId> {
        match self {
            ProfId::Engine | ProfId::Mapper => None,
            ProfId::EngineCompute
            | ProfId::EngineAccess
            | ProfId::EngineTick
            | ProfId::Barrier
            | ProfId::Migration
            | ProfId::ShardBarrier => Some(ProfId::Engine),
            ProfId::TlbLookup | ProfId::MissDetectScan | ProfId::CacheAccess => {
                Some(ProfId::EngineAccess)
            }
            ProfId::TickDetectScan => Some(ProfId::EngineTick),
            ProfId::MapperLevel => Some(ProfId::Mapper),
        }
    }

    /// Full `root;...;leaf` stack path (the collapsed-stack key).
    pub fn path(self) -> String {
        match self.parent() {
            None => self.as_str().to_string(),
            Some(p) => format!("{};{}", p.path(), self.as_str()),
        }
    }
}

/// Lock-free per-component cycle and call accumulators.
#[derive(Debug)]
pub struct Profile {
    cycles: [AtomicU64; PROF_NODES.len()],
    calls: [AtomicU64; PROF_NODES.len()],
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            cycles: std::array::from_fn(|_| AtomicU64::new(0)),
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Profile {
    /// Charge `cycles` (exclusive) to `id` and count one call.
    #[inline]
    pub fn charge(&self, id: ProfId, cycles: u64) {
        self.calls[id as usize].fetch_add(1, Ordering::Relaxed);
        if cycles > 0 {
            self.cycles[id as usize].fetch_add(cycles, Ordering::Relaxed);
        }
    }

    /// Charge a pre-aggregated batch: `cycles` exclusive cycles over
    /// `calls` calls. Lets an engine that accumulates per-shard profile
    /// sums settle them in one operation with the same end state as
    /// per-event [`Profile::charge`] calls.
    #[inline]
    pub fn charge_many(&self, id: ProfId, cycles: u64, calls: u64) {
        if calls > 0 {
            self.calls[id as usize].fetch_add(calls, Ordering::Relaxed);
        }
        if cycles > 0 {
            self.cycles[id as usize].fetch_add(cycles, Ordering::Relaxed);
        }
    }

    /// Exclusive cycles charged directly to `id`.
    pub fn exclusive_cycles(&self, id: ProfId) -> u64 {
        self.cycles[id as usize].load(Ordering::Relaxed)
    }

    /// Calls charged to `id` (its own, not descendants').
    pub fn calls(&self, id: ProfId) -> u64 {
        self.calls[id as usize].load(Ordering::Relaxed)
    }

    /// Inclusive cycles: `id`'s own plus every descendant's.
    pub fn inclusive_cycles(&self, id: ProfId) -> u64 {
        let mut total = self.exclusive_cycles(id);
        for node in PROF_NODES {
            let mut cur = node.parent();
            while let Some(p) = cur {
                if p == id {
                    total += self.exclusive_cycles(node);
                    break;
                }
                cur = p.parent();
            }
        }
        total
    }

    /// Sum of all charged cycles (the shares denominator).
    pub fn total_cycles(&self) -> u64 {
        PROF_NODES.iter().map(|&n| self.exclusive_cycles(n)).sum()
    }

    /// Whether `id` or any descendant saw a call.
    fn active(&self, id: ProfId) -> bool {
        if self.calls(id) > 0 {
            return true;
        }
        PROF_NODES.iter().any(|&node| {
            let mut cur = node.parent();
            while let Some(p) = cur {
                if p == id {
                    return self.calls(node) > 0;
                }
                cur = p.parent();
            }
            false
        })
    }

    /// Collapsed-stack text: one `path cycles` line per component with
    /// activity, in tree order. Feed to `flamegraph.pl` / speedscope.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for node in PROF_NODES {
            if self.calls(node) > 0 {
                out.push_str(&node.path());
                out.push(' ');
                out.push_str(&self.exclusive_cycles(node).to_string());
                out.push('\n');
            }
        }
        out
    }

    /// JSON export: one record per active component with call counts and
    /// inclusive/exclusive cycles, in tree order.
    pub fn to_json(&self) -> Json {
        let items: Vec<Json> = PROF_NODES
            .iter()
            .filter(|&&n| self.active(n))
            .map(|&n| {
                Json::obj(vec![
                    ("component", Json::Str(n.path())),
                    ("calls", Json::U64(self.calls(n))),
                    ("exclusive_cycles", Json::U64(self.exclusive_cycles(n))),
                    ("inclusive_cycles", Json::U64(self.inclusive_cycles(n))),
                ])
            })
            .collect();
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_follow_the_tree() {
        assert_eq!(ProfId::Engine.path(), "engine");
        assert_eq!(ProfId::TlbLookup.path(), "engine;access;tlb");
        assert_eq!(ProfId::TickDetectScan.path(), "engine;tick;detect");
        assert_eq!(ProfId::MapperLevel.path(), "mapper;level");
    }

    #[test]
    fn inclusive_sums_descendants() {
        let p = Profile::default();
        p.charge(ProfId::TlbLookup, 100);
        p.charge(ProfId::CacheAccess, 40);
        p.charge(ProfId::EngineCompute, 10);
        p.charge(ProfId::MissDetectScan, 0); // call only
        assert_eq!(p.exclusive_cycles(ProfId::TlbLookup), 100);
        assert_eq!(p.inclusive_cycles(ProfId::EngineAccess), 140);
        assert_eq!(p.inclusive_cycles(ProfId::Engine), 150);
        assert_eq!(p.total_cycles(), 150);
        assert_eq!(p.calls(ProfId::MissDetectScan), 1);
    }

    #[test]
    fn collapsed_lists_only_active_components() {
        let p = Profile::default();
        p.charge(ProfId::EngineCompute, 7);
        p.charge(ProfId::MapperLevel, 0);
        let text = p.collapsed();
        assert_eq!(text, "engine;compute 7\nmapper;level 0\n");
    }

    #[test]
    fn json_includes_parents_of_active_leaves() {
        let p = Profile::default();
        p.charge(ProfId::TickDetectScan, 84_297);
        let j = p.to_json();
        let items = j.as_array().unwrap();
        let paths: Vec<&str> = items
            .iter()
            .map(|i| i.get("component").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(paths, vec!["engine", "engine;tick", "engine;tick;detect"]);
        // The parent's inclusive cycles cover the leaf.
        assert_eq!(
            items[0].get("inclusive_cycles").unwrap().as_u64(),
            Some(84_297)
        );
        assert_eq!(items[0].get("exclusive_cycles").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn empty_profile_renders_empty() {
        let p = Profile::default();
        assert_eq!(p.collapsed(), "");
        assert_eq!(p.to_json().as_array().unwrap().len(), 0);
    }
}
