//! The recorder: a cloneable handle threaded through the engine, the
//! detectors and the mapper.
//!
//! A disabled recorder holds no state at all (`inner: None`); every method
//! is `#[inline]` and reduces to one `Option` discriminant check, so the
//! simulation hot path pays nothing measurable when observability is off —
//! verified by the `engine_throughput` benchmark. An enabled recorder
//! funnels counters and histograms into lock-free atomics and events into
//! a bounded ring buffer.

use crate::event::Event;
use crate::flight::FlightState;
use crate::json::Json;
use crate::metrics::{CounterId, HistId, Histogram, COUNTERS, HISTS};
use crate::profile::{ProfId, Profile};
use crate::ring::RingBuffer;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Recorder construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Thread count of the run (sizes the snapshot matrix).
    pub n_threads: usize,
    /// Maximum events retained in the trace ring.
    pub ring_capacity: usize,
    /// Take a communication-matrix snapshot every this many cycles.
    pub snapshot_period: Option<u64>,
    /// Flight-recorder window length in cycles (`None` disables the
    /// flight recorder and the online phase detector).
    pub flight_window: Option<u64>,
    /// Closed flight windows retained in the bounded ring.
    pub flight_capacity: usize,
}

impl ObsConfig {
    /// Defaults: 1 Mi events, no periodic snapshots, flight recorder off,
    /// 64 retained flight windows once enabled.
    pub fn new(n_threads: usize) -> Self {
        ObsConfig {
            n_threads,
            ring_capacity: 1 << 20,
            snapshot_period: None,
            flight_window: None,
            flight_capacity: 64,
        }
    }

    /// Override the ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Snapshot the matrix every `period` cycles (`None` disables).
    pub fn with_snapshot_period(mut self, period: Option<u64>) -> Self {
        self.snapshot_period = period;
        self
    }

    /// Close a flight-recorder window every `window` cycles (`None`
    /// disables the flight recorder).
    pub fn with_flight_window(mut self, window: Option<u64>) -> Self {
        self.flight_window = window;
        self
    }

    /// Override how many closed flight windows the ring retains.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// The snapshot period with the zero hazard removed: a period of 0
    /// would never advance the snapshot scheduler (`due += 0` forever), so
    /// it is treated as "no snapshots". The CLI rejects `--snapshot-every
    /// 0` up front; this guards library callers.
    fn effective_snapshot_period(&self) -> Option<u64> {
        self.snapshot_period.filter(|&p| p > 0)
    }

    /// The flight-window length with the zero hazard removed, mirroring
    /// the snapshot-period-0 guard: a zero-length window would never
    /// advance the window scheduler, so it is treated as "flight recorder
    /// off". The CLI rejects `--flight-window 0` up front; this guards
    /// library callers.
    pub fn effective_flight_window(&self) -> Option<u64> {
        self.flight_window.filter(|&w| w > 0)
    }

    /// The flight-ring capacity with the zero hazard removed: a
    /// zero-capacity ring would drop every window the moment it closed,
    /// so it is clamped to one retained window.
    pub fn effective_flight_capacity(&self) -> usize {
        self.flight_capacity.max(1)
    }
}

/// One periodic communication-matrix snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixSnapshot {
    /// Zero-based snapshot index.
    pub index: u64,
    /// Cycle the snapshot is keyed to (a multiple of the period).
    pub cycle: u64,
    /// Barriers crossed when it was taken.
    pub barrier: u64,
    /// Thread count.
    pub n: usize,
    /// Row-major n×n matrix cells.
    pub cells: Vec<u64>,
}

impl MatrixSnapshot {
    /// JSON export.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = (0..self.n)
            .map(|i| {
                Json::Arr(
                    (0..self.n)
                        .map(|j| Json::U64(self.cells[i * self.n + j]))
                        .collect(),
                )
            })
            .collect();
        Json::obj(vec![
            ("index", Json::U64(self.index)),
            ("cycle", Json::U64(self.cycle)),
            ("barrier", Json::U64(self.barrier)),
            ("n", Json::U64(self.n as u64)),
            ("rows", Json::Arr(rows)),
        ])
    }
}

/// Snapshot accumulator: the recorder's own copy of the communication
/// matrix, grown by `matrix_inc` events and sampled periodically.
#[derive(Debug)]
struct SnapState {
    n: usize,
    cells: Vec<u64>,
    period: Option<u64>,
    barrier: u64,
    snaps: Vec<MatrixSnapshot>,
}

impl SnapState {
    fn take(&mut self, cycle: u64) -> u64 {
        let index = self.snaps.len() as u64;
        self.snaps.push(MatrixSnapshot {
            index,
            cycle,
            barrier: self.barrier,
            n: self.n,
            cells: self.cells.clone(),
        });
        index
    }
}

#[derive(Debug)]
struct Inner {
    counters: [AtomicU64; COUNTERS.len()],
    hists: [Histogram; HISTS.len()],
    /// Global cycle estimate, stamped onto emitted events.
    now: AtomicU64,
    /// Cycle of the previous TLB miss (`u64::MAX` = none yet).
    last_miss: AtomicU64,
    /// Cycle at which the next snapshot is due (`u64::MAX` = never).
    next_snap: AtomicU64,
    /// Cycle at which the next flight window closes (`u64::MAX` = never).
    next_flight: AtomicU64,
    /// Current phase id, minted by whichever online detector is active
    /// (the flight recorder or an external windowed detector).
    phase: AtomicU64,
    ring: Mutex<RingBuffer<Event>>,
    snap: Mutex<SnapState>,
    flight: Option<Mutex<FlightState>>,
    prof: Profile,
}

/// Cloneable observability handle. `Recorder::disabled()` is the no-op.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: every call is a single `None` check.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder.
    pub fn new(cfg: ObsConfig) -> Recorder {
        let period = cfg.effective_snapshot_period();
        let flight_window = cfg.effective_flight_window();
        Recorder {
            inner: Some(Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| Histogram::default()),
                now: AtomicU64::new(0),
                last_miss: AtomicU64::new(u64::MAX),
                next_snap: AtomicU64::new(period.unwrap_or(u64::MAX)),
                next_flight: AtomicU64::new(flight_window.unwrap_or(u64::MAX)),
                phase: AtomicU64::new(0),
                ring: Mutex::new(RingBuffer::new(cfg.ring_capacity)),
                snap: Mutex::new(SnapState {
                    n: cfg.n_threads,
                    cells: vec![0; cfg.n_threads * cfg.n_threads],
                    period,
                    barrier: 0,
                    snaps: Vec::new(),
                }),
                flight: flight_window.map(|w| {
                    Mutex::new(FlightState::new(
                        cfg.n_threads,
                        w,
                        cfg.effective_flight_capacity(),
                    ))
                }),
                prof: Profile::default(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[id as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counters[id as usize].load(Ordering::Relaxed))
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&self, id: HistId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.hists[id as usize].observe(value);
        }
    }

    /// Count of a histogram's observations.
    pub fn hist_count(&self, id: HistId) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.hists[id as usize].count())
    }

    /// Stamp the global cycle estimate (the engine calls this as its clock
    /// advances; detectors never see cycles directly).
    #[inline]
    pub fn set_cycle(&self, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.now.store(cycle, Ordering::Relaxed);
        }
    }

    /// The last stamped cycle.
    pub fn now(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.now.load(Ordering::Relaxed))
    }

    /// Stamp the cycle and take any snapshots / close any flight windows
    /// that became due. The engine calls this once per executed trace
    /// event; with neither scheduler armed the cost is two relaxed loads.
    #[inline]
    pub fn advance(&self, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.now.store(cycle, Ordering::Relaxed);
            if cycle >= inner.next_snap.load(Ordering::Relaxed) {
                self.take_due_snapshots(inner, cycle);
            }
            if cycle >= inner.next_flight.load(Ordering::Relaxed) {
                self.close_due_flight_windows(inner, cycle);
            }
        }
    }

    #[cold]
    fn take_due_snapshots(&self, inner: &Inner, cycle: u64) {
        let mut snap = inner.snap.lock().expect("snapshot state poisoned");
        let period = match snap.period {
            Some(p) => p,
            None => return,
        };
        let mut due = inner.next_snap.load(Ordering::Relaxed);
        while cycle >= due {
            let index = snap.take(due);
            self.push_event(inner, Event::Snapshot { cycle: due, index });
            inner.counters[CounterId::SnapshotsTaken as usize].fetch_add(1, Ordering::Relaxed);
            due += period;
        }
        inner.next_snap.store(due, Ordering::Relaxed);
    }

    #[cold]
    fn close_due_flight_windows(&self, inner: &Inner, cycle: u64) {
        let flight = match &inner.flight {
            Some(flight) => flight,
            None => return,
        };
        let mut state = flight.lock().expect("flight state poisoned");
        let window = state.window_cycles();
        let mut due = inner.next_flight.load(Ordering::Relaxed);
        while cycle >= due {
            let close = state.close_window(due, &inner.prof);
            self.apply_window_close(inner, close);
            due += window;
        }
        inner.next_flight.store(due, Ordering::Relaxed);
    }

    /// Turn one [`FlightState`] window close into counters and events.
    fn apply_window_close(&self, inner: &Inner, close: crate::flight::WindowClose) {
        inner.counters[CounterId::FlightWindows as usize].fetch_add(1, Ordering::Relaxed);
        if close.dropped {
            inner.counters[CounterId::FlightWindowsDropped as usize]
                .fetch_add(1, Ordering::Relaxed);
        }
        if let Some(phase) = close.phase_change {
            inner.phase.store(phase, Ordering::Relaxed);
            inner.counters[CounterId::PhaseChanges as usize].fetch_add(1, Ordering::Relaxed);
            self.push_event(
                inner,
                Event::PhaseChange {
                    cycle: close.end_cycle,
                    window: close.index,
                    phase,
                    similarity_ppm: close.similarity_ppm.unwrap_or(0),
                },
            );
        }
    }

    /// Close the run: fill in any snapshots still due so that exactly
    /// `floor(total_cycles / period)` exist, close the partial flight
    /// window (if any cycles remain in it), and stamp the final cycle.
    pub fn finish(&self, total_cycles: u64) {
        if let Some(inner) = &self.inner {
            inner.now.store(total_cycles, Ordering::Relaxed);
            self.take_due_snapshots(inner, total_cycles);
            if inner.next_flight.load(Ordering::Relaxed) != u64::MAX {
                self.close_due_flight_windows(inner, total_cycles);
                if let Some(flight) = &inner.flight {
                    let mut state = flight.lock().expect("flight state poisoned");
                    if state.open_window_started_before(total_cycles) {
                        let close = state.close_window(total_cycles, &inner.prof);
                        self.apply_window_close(inner, close);
                        inner
                            .next_flight
                            .store(total_cycles + state.window_cycles(), Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Append a raw event, stamped with the current cycle by the caller.
    #[inline]
    pub fn emit(&self, make: impl FnOnce(u64) -> Event) {
        if let Some(inner) = &self.inner {
            let event = make(inner.now.load(Ordering::Relaxed));
            self.push_event(inner, event);
        }
    }

    fn push_event(&self, inner: &Inner, event: Event) {
        let mut ring = inner.ring.lock().expect("event ring poisoned");
        if ring.push(event) {
            inner.counters[CounterId::EventsDropped as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    // ----- composite helpers (one call per observation point) -----

    /// A TLB miss: event + counter + inter-arrival histogram + the flight
    /// recorder's per-core/per-window activity.
    #[inline]
    pub fn record_tlb_miss(&self, core: usize, thread: usize, vpn: u64, data: bool) {
        if let Some(inner) = &self.inner {
            let cycle = inner.now.load(Ordering::Relaxed);
            inner.counters[CounterId::TlbMisses as usize].fetch_add(1, Ordering::Relaxed);
            let prev = inner.last_miss.swap(cycle, Ordering::Relaxed);
            if prev != u64::MAX {
                inner.hists[HistId::TlbMissInterArrival as usize]
                    .observe(cycle.saturating_sub(prev));
            }
            if let Some(flight) = &inner.flight {
                flight
                    .lock()
                    .expect("flight state poisoned")
                    .record_miss(core);
            }
            self.push_event(
                inner,
                Event::TlbMiss {
                    cycle,
                    core: core as u32,
                    thread: thread as u32,
                    vpn,
                    data,
                },
            );
        }
    }

    /// A detection search is about to scan remote TLBs.
    #[inline]
    pub fn record_search_start(&self, mech: crate::event::Mechanism, core: usize) {
        self.emit(|cycle| Event::SearchStart {
            cycle,
            mech,
            core: core as u32,
        });
    }

    /// A detection search finished: event + counters + latency histogram.
    #[inline]
    pub fn record_search_end(
        &self,
        mech: crate::event::Mechanism,
        core: usize,
        entries: u64,
        matches: u64,
        charged_cycles: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.counters[CounterId::DetectionSearches as usize].fetch_add(1, Ordering::Relaxed);
            inner.counters[CounterId::DetectionOverheadCycles as usize]
                .fetch_add(charged_cycles, Ordering::Relaxed);
            inner.counters[CounterId::SearchEntriesCompared as usize]
                .fetch_add(entries, Ordering::Relaxed);
            inner.hists[HistId::DetectionSearchCycles as usize].observe(charged_cycles);
            self.push_event(
                inner,
                Event::SearchEnd {
                    cycle: inner.now.load(Ordering::Relaxed),
                    mech,
                    core: core as u32,
                    entries,
                    matches,
                    charged_cycles,
                },
            );
        }
    }

    /// A matrix increment: event + counter + amount histogram + the
    /// recorder's own matrix copy (what snapshots sample).
    #[inline]
    pub fn record_matrix_inc(&self, a: usize, b: usize, amount: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[CounterId::MatrixIncrements as usize].fetch_add(1, Ordering::Relaxed);
            inner.hists[HistId::MatrixIncrementAmount as usize].observe(amount);
            {
                let mut snap = inner.snap.lock().expect("snapshot state poisoned");
                let n = snap.n;
                if a < n && b < n && a != b {
                    snap.cells[a * n + b] += amount;
                    snap.cells[b * n + a] += amount;
                }
            }
            if let Some(flight) = &inner.flight {
                flight
                    .lock()
                    .expect("flight state poisoned")
                    .record_inc(a, b, amount);
            }
            self.push_event(
                inner,
                Event::MatrixInc {
                    cycle: inner.now.load(Ordering::Relaxed),
                    a: a as u32,
                    b: b as u32,
                    amount,
                },
            );
        }
    }

    /// A barrier release.
    #[inline]
    pub fn record_barrier(&self, index: u64, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.now.store(cycle, Ordering::Relaxed);
            inner.counters[CounterId::Barriers as usize].fetch_add(1, Ordering::Relaxed);
            inner.snap.lock().expect("snapshot state poisoned").barrier = index + 1;
            self.push_event(inner, Event::Barrier { cycle, index });
        }
    }

    /// A thread migration (plus the TLB flushes it implies).
    #[inline]
    pub fn record_migration(&self, thread: usize, from_core: usize, to_core: usize) {
        if let Some(inner) = &self.inner {
            let cycle = inner.now.load(Ordering::Relaxed);
            inner.counters[CounterId::Migrations as usize].fetch_add(1, Ordering::Relaxed);
            self.push_event(
                inner,
                Event::Migration {
                    cycle,
                    thread: thread as u32,
                    from_core: from_core as u32,
                    to_core: to_core as u32,
                },
            );
            for core in [from_core, to_core] {
                self.push_event(
                    inner,
                    Event::TlbFlush {
                        cycle,
                        core: core as u32,
                    },
                );
            }
        }
    }

    /// A phase change flagged by an external windowed detector (the
    /// in-engine flight recorder mints its own). Bumps the run's phase id
    /// and stamps it into the event.
    #[inline]
    pub fn record_phase_change(&self, window: u64, similarity: f64) {
        if let Some(inner) = &self.inner {
            inner.counters[CounterId::PhaseChanges as usize].fetch_add(1, Ordering::Relaxed);
            let phase = inner.phase.fetch_add(1, Ordering::Relaxed) + 1;
            let ppm = (similarity.clamp(0.0, 1.0) * 1e6).round() as u64;
            self.push_event(
                inner,
                Event::PhaseChange {
                    cycle: inner.now.load(Ordering::Relaxed),
                    window,
                    phase,
                    similarity_ppm: ppm,
                },
            );
        }
    }

    /// One hierarchical-mapper matching level.
    #[inline]
    pub fn record_mapper_round(
        &self,
        level: u32,
        groups_before: u32,
        groups_after: u32,
        weight: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.counters[CounterId::MapperRounds as usize].fetch_add(1, Ordering::Relaxed);
            inner.hists[HistId::MapperLevelWeight as usize].observe(weight);
            // The mapper runs off the simulated clock; profile call counts
            // only (zero cycles charged).
            inner.prof.charge(ProfId::MapperLevel, 0);
            self.push_event(
                inner,
                Event::MapperRound {
                    level,
                    groups_before,
                    groups_after,
                    weight,
                },
            );
        }
    }

    // ----- self-profiling -----

    /// Charge `cycles` of simulated time (and one call) to a profile
    /// component. The engine is the main caller; see [`ProfId`] for the
    /// component tree.
    #[inline]
    pub fn prof_charge(&self, id: ProfId, cycles: u64) {
        if let Some(inner) = &self.inner {
            inner.prof.charge(id, cycles);
        }
    }

    /// Charge a pre-aggregated profile batch: `cycles` over `calls` calls.
    /// The windowed engine's shards accumulate their profile sums locally
    /// and settle them here, reaching the same totals as per-event
    /// [`Recorder::prof_charge`] calls would.
    #[inline]
    pub fn prof_charge_many(&self, id: ProfId, cycles: u64, calls: u64) {
        if let Some(inner) = &self.inner {
            inner.prof.charge_many(id, cycles, calls);
        }
    }

    /// Exclusive cycles charged to a profile component.
    pub fn prof_exclusive_cycles(&self, id: ProfId) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.prof.exclusive_cycles(id))
    }

    /// Inclusive cycles (own + descendants) of a profile component.
    pub fn prof_inclusive_cycles(&self, id: ProfId) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.prof.inclusive_cycles(id))
    }

    /// Calls charged to a profile component.
    pub fn prof_calls(&self, id: ProfId) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.prof.calls(id))
    }

    /// Sum of all cycles the profiler accounted for.
    pub fn prof_total_cycles(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.prof.total_cycles())
    }

    /// The profile as collapsed-stack text (`path cycles` lines).
    pub fn profile_collapsed(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |i| i.prof.collapsed())
    }

    // ----- flight recorder -----

    /// Current phase id (0 until an online detector flags a change).
    pub fn phase(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.phase.load(Ordering::Relaxed))
    }

    /// Whether the flight recorder is armed.
    pub fn flight_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.flight.is_some())
    }

    /// Closed flight windows still retained in the ring, oldest first.
    pub fn flight_windows(&self) -> Vec<crate::flight::FlightWindow> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.flight.as_ref().map_or_else(Vec::new, |f| {
                f.lock().expect("flight state poisoned").retained()
            })
        })
    }

    /// The flight-recorder section of the metrics document: window ring,
    /// per-phase aggregates, and per-phase profile attribution.
    /// [`Json::Null`] when the flight recorder is disabled.
    pub fn flight_json(&self) -> Json {
        self.inner.as_ref().map_or(Json::Null, |i| {
            i.flight.as_ref().map_or(Json::Null, |f| {
                f.lock().expect("flight state poisoned").to_json(&i.prof)
            })
        })
    }

    // ----- export -----

    /// Snapshots taken so far.
    pub fn snapshots(&self) -> Vec<MatrixSnapshot> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.snap
                .lock()
                .expect("snapshot state poisoned")
                .snaps
                .clone()
        })
    }

    /// Events retained in the ring (oldest first).
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.ring
                .lock()
                .expect("event ring poisoned")
                .iter()
                .cloned()
                .collect()
        })
    }

    /// Write the trace as JSONL: a meta line, then one event per line.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return Ok(()),
        };
        let ring = inner.ring.lock().expect("event ring poisoned");
        let meta = Json::obj(vec![
            ("ev", Json::Str("meta".into())),
            ("schema", Json::U64(1)),
            ("events", Json::U64(ring.len() as u64)),
            ("dropped", Json::U64(ring.dropped())),
        ]);
        writeln!(w, "{}", meta.render())?;
        for event in ring.iter() {
            writeln!(w, "{}", event.to_json().render())?;
        }
        Ok(())
    }

    /// Write the trace in Chrome `trace_event` format (open the file in
    /// `chrome://tracing` or Perfetto; 1 cycle renders as 1 µs).
    pub fn write_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return write!(w, "{{\"traceEvents\":[]}}"),
        };
        let ring = inner.ring.lock().expect("event ring poisoned");
        write!(w, "{{\"traceEvents\":[")?;
        for (i, event) in ring.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "{}", event.to_chrome().render())?;
        }
        write!(w, "],\"displayTimeUnit\":\"ns\"}}")
    }

    /// The metrics registry plus snapshots as one JSON document.
    pub fn metrics_json(&self) -> Json {
        let counters = Json::Obj(
            COUNTERS
                .iter()
                .map(|&c| (c.as_str().to_string(), Json::U64(self.counter(c))))
                .collect(),
        );
        let hists = Json::Obj(
            HISTS
                .iter()
                .map(|&h| {
                    let json = self.inner.as_ref().map_or_else(
                        || Histogram::default().to_json(),
                        |i| i.hists[h as usize].to_json(),
                    );
                    (h.as_str().to_string(), json)
                })
                .collect(),
        );
        let snapshots = Json::Arr(
            self.snapshots()
                .iter()
                .map(MatrixSnapshot::to_json)
                .collect(),
        );
        let profile = self
            .inner
            .as_ref()
            .map_or(Json::Arr(Vec::new()), |i| i.prof.to_json());
        Json::obj(vec![
            ("schema", Json::U64(3)),
            ("counters", counters),
            ("histograms", hists),
            ("profile", profile),
            ("snapshots", snapshots),
            ("flight", self.flight_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Mechanism;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.inc(CounterId::Accesses);
        r.observe(HistId::DetectionSearchCycles, 5);
        r.record_tlb_miss(0, 0, 7, true);
        r.record_matrix_inc(0, 1, 1);
        r.advance(1_000_000);
        r.finish(2_000_000);
        assert_eq!(r.counter(CounterId::Accesses), 0);
        assert_eq!(r.hist_count(HistId::DetectionSearchCycles), 0);
        assert!(r.events().is_empty());
        assert!(r.snapshots().is_empty());
        let mut out = Vec::new();
        r.write_jsonl(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let r = Recorder::new(ObsConfig::new(4));
        r.inc(CounterId::Accesses);
        r.add(CounterId::Accesses, 9);
        r.observe(HistId::DetectionSearchCycles, 231);
        assert_eq!(r.counter(CounterId::Accesses), 10);
        assert_eq!(r.hist_count(HistId::DetectionSearchCycles), 1);
    }

    #[test]
    fn miss_interarrival_histogram() {
        let r = Recorder::new(ObsConfig::new(2));
        r.set_cycle(100);
        r.record_tlb_miss(0, 0, 1, true); // first miss: no inter-arrival
        r.set_cycle(160);
        r.record_tlb_miss(1, 1, 2, true); // gap 60
        assert_eq!(r.counter(CounterId::TlbMisses), 2);
        assert_eq!(r.hist_count(HistId::TlbMissInterArrival), 1);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].cycle(), 160);
    }

    #[test]
    fn snapshots_fire_on_period_multiples() {
        let r = Recorder::new(ObsConfig::new(2).with_snapshot_period(Some(1000)));
        r.record_matrix_inc(0, 1, 5);
        r.advance(999);
        assert!(r.snapshots().is_empty());
        r.advance(1001);
        assert_eq!(r.snapshots().len(), 1);
        r.record_matrix_inc(0, 1, 2);
        // A big jump takes every snapshot that became due.
        r.advance(4000);
        let snaps = r.snapshots();
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps[0].cycle, 1000);
        assert_eq!(snaps[0].cells, vec![0, 5, 5, 0]);
        assert_eq!(snaps[3].cycle, 4000);
        assert_eq!(snaps[3].cells, vec![0, 7, 7, 0]);
        assert_eq!(r.counter(CounterId::SnapshotsTaken), 4);
    }

    #[test]
    fn finish_tops_up_to_floor() {
        let r = Recorder::new(ObsConfig::new(2).with_snapshot_period(Some(100)));
        r.advance(250);
        assert_eq!(r.snapshots().len(), 2);
        r.finish(1050);
        assert_eq!(r.snapshots().len(), 10, "floor(1050/100) snapshots");
        assert_eq!(r.snapshots().last().unwrap().cycle, 1000);
    }

    #[test]
    fn search_records_all_series() {
        let r = Recorder::new(ObsConfig::new(8));
        r.set_cycle(42);
        r.record_search_start(Mechanism::Sm, 3);
        r.record_search_end(Mechanism::Sm, 3, 28, 2, 231);
        assert_eq!(r.counter(CounterId::DetectionSearches), 1);
        assert_eq!(r.counter(CounterId::DetectionOverheadCycles), 231);
        assert_eq!(r.counter(CounterId::SearchEntriesCompared), 28);
        assert_eq!(r.hist_count(HistId::DetectionSearchCycles), 1);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::SearchStart { cycle: 42, .. }));
    }

    #[test]
    fn jsonl_has_meta_line_and_one_line_per_event() {
        let r = Recorder::new(ObsConfig::new(2));
        r.record_barrier(0, 500);
        r.record_migration(1, 0, 3);
        let mut out = Vec::new();
        r.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // meta + barrier + migration + 2 flushes
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"ev\":\"meta\""));
        for line in &lines {
            assert!(Json::parse(line).is_ok(), "invalid JSONL line: {line}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let r = Recorder::new(ObsConfig::new(2));
        r.set_cycle(10);
        r.record_search_end(Mechanism::Hm, 0, 7168, 12, 84_297);
        r.record_tlb_miss(1, 1, 99, true);
        let mut out = Vec::new();
        r.write_chrome_trace(&mut out).unwrap();
        let doc = Json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("dur").unwrap().as_u64(), Some(84_297));
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let r = Recorder::new(ObsConfig::new(2).with_ring_capacity(3));
        for i in 0..10 {
            r.record_barrier(i, i * 100);
        }
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.counter(CounterId::EventsDropped), 7);
        let mut out = Vec::new();
        r.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().next().unwrap().contains("\"dropped\":7"));
    }

    #[test]
    fn metrics_json_names_every_series() {
        let r = Recorder::new(ObsConfig::new(2).with_snapshot_period(Some(10)));
        r.record_matrix_inc(0, 1, 3);
        r.finish(25);
        let m = r.metrics_json();
        let counters = match m.get("counters").unwrap() {
            Json::Obj(pairs) => pairs.len(),
            _ => 0,
        };
        let hists = match m.get("histograms").unwrap() {
            Json::Obj(pairs) => pairs.len(),
            _ => 0,
        };
        assert!(counters + hists >= 8, "acceptance floor: 8 series");
        assert_eq!(m.get("snapshots").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            m.get("counters")
                .unwrap()
                .get("matrix_increments")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn zero_snapshot_period_disables_snapshots() {
        // Period 0 would never advance the scheduler (`due += 0`); the
        // config treats it as "no snapshots" instead of looping forever.
        let r = Recorder::new(ObsConfig::new(2).with_snapshot_period(Some(0)));
        r.record_matrix_inc(0, 1, 3);
        r.advance(10_000);
        r.finish(1_000_000);
        assert!(r.snapshots().is_empty());
        assert_eq!(r.counter(CounterId::SnapshotsTaken), 0);
    }

    #[test]
    fn profiler_accumulates_and_exports() {
        use crate::profile::ProfId;
        let r = Recorder::new(ObsConfig::new(2));
        r.prof_charge(ProfId::EngineCompute, 100);
        r.prof_charge(ProfId::TlbLookup, 420);
        r.prof_charge(ProfId::CacheAccess, 210);
        assert_eq!(r.prof_exclusive_cycles(ProfId::TlbLookup), 420);
        assert_eq!(r.prof_inclusive_cycles(ProfId::Engine), 730);
        assert_eq!(r.prof_total_cycles(), 730);
        assert_eq!(r.prof_calls(ProfId::EngineCompute), 1);
        assert!(r.profile_collapsed().contains("engine;access;tlb 420"));
        let m = r.metrics_json();
        assert_eq!(m.get("schema").unwrap().as_u64(), Some(3));
        assert!(!m.get("profile").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn disabled_recorder_profiles_nothing() {
        use crate::profile::ProfId;
        let r = Recorder::disabled();
        r.prof_charge(ProfId::EngineCompute, 1_000);
        assert_eq!(r.prof_total_cycles(), 0);
        assert_eq!(r.profile_collapsed(), "");
    }

    #[test]
    fn flight_windows_roll_with_the_clock() {
        let r = Recorder::new(ObsConfig::new(4).with_flight_window(Some(1000)));
        assert!(r.flight_enabled());
        r.advance(10);
        r.record_tlb_miss(2, 2, 0x10, true);
        r.record_matrix_inc(0, 1, 3);
        r.advance(999);
        assert!(r.flight_windows().is_empty(), "window not due yet");
        r.advance(1500);
        let windows = r.flight_windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].start_cycle, 0);
        assert_eq!(windows[0].end_cycle, 1000);
        assert_eq!(windows[0].total(), 6, "symmetric cells: 3 + 3");
        assert_eq!(windows[0].core_activity, vec![0, 0, 1]);
        assert_eq!(r.counter(CounterId::FlightWindows), 1);
        // A big jump closes every window that became due.
        r.advance(4200);
        assert_eq!(r.flight_windows().len(), 4);
        assert_eq!(r.counter(CounterId::FlightWindows), 4);
    }

    #[test]
    fn finish_closes_the_partial_flight_window() {
        let r = Recorder::new(ObsConfig::new(2).with_flight_window(Some(1000)));
        r.advance(100);
        r.record_matrix_inc(0, 1, 2);
        r.finish(1300);
        let windows = r.flight_windows();
        assert_eq!(windows.len(), 2, "one full window + the partial tail");
        assert_eq!(windows[1].start_cycle, 1000);
        assert_eq!(windows[1].end_cycle, 1300);
        // Finishing exactly on a boundary leaves no degenerate window.
        let r = Recorder::new(ObsConfig::new(2).with_flight_window(Some(1000)));
        r.advance(10);
        r.finish(2000);
        assert_eq!(r.flight_windows().len(), 2);
    }

    #[test]
    fn flight_phase_change_emits_a_stamped_event() {
        let r = Recorder::new(ObsConfig::new(4).with_flight_window(Some(100)));
        r.advance(1);
        r.record_matrix_inc(0, 1, 10);
        r.advance(101);
        r.record_matrix_inc(0, 1, 10);
        r.advance(201);
        assert_eq!(r.phase(), 0, "stable pattern: still phase 0");
        // Disjoint pair: cosine 0 against the reference.
        r.record_matrix_inc(2, 3, 10);
        r.advance(301);
        assert_eq!(r.phase(), 1);
        assert_eq!(r.counter(CounterId::PhaseChanges), 1);
        let change = r
            .events()
            .into_iter()
            .find(|e| matches!(e, Event::PhaseChange { .. }))
            .expect("phase change event");
        match change {
            Event::PhaseChange {
                cycle,
                window,
                phase,
                similarity_ppm,
            } => {
                assert_eq!(cycle, 300);
                assert_eq!(window, 2);
                assert_eq!(phase, 1);
                assert_eq!(similarity_ppm, 0);
            }
            _ => unreachable!(),
        }
        let windows = r.flight_windows();
        assert_eq!(windows[2].phase, 1, "divergent window opens the phase");
    }

    #[test]
    fn flight_ring_capacity_bounds_memory() {
        let r = Recorder::new(
            ObsConfig::new(2)
                .with_flight_window(Some(10))
                .with_flight_capacity(2),
        );
        for k in 1..=5u64 {
            r.record_matrix_inc(0, 1, 1);
            r.advance(k * 10);
        }
        assert_eq!(r.flight_windows().len(), 2);
        assert_eq!(r.counter(CounterId::FlightWindows), 5);
        assert_eq!(r.counter(CounterId::FlightWindowsDropped), 3);
    }

    #[test]
    fn zero_flight_window_disables_the_flight_recorder() {
        // Satellite guard: window length 0 mirrors snapshot-period-0 —
        // it means "off", never a scheduler that can't advance.
        let r = Recorder::new(ObsConfig::new(2).with_flight_window(Some(0)));
        assert!(!r.flight_enabled());
        r.record_matrix_inc(0, 1, 3);
        r.advance(10_000);
        r.finish(1_000_000);
        assert!(r.flight_windows().is_empty());
        assert_eq!(r.counter(CounterId::FlightWindows), 0);
        assert_eq!(r.flight_json(), Json::Null);
        assert_eq!(ObsConfig::new(2).effective_flight_window(), None);
        assert_eq!(
            ObsConfig::new(2)
                .with_flight_window(Some(500))
                .effective_flight_window(),
            Some(500)
        );
    }

    #[test]
    fn zero_flight_capacity_clamps_to_one() {
        // Satellite guard: a zero-capacity ring would drop every window
        // as it closed; clamp to one retained window instead.
        assert_eq!(
            ObsConfig::new(2)
                .with_flight_capacity(0)
                .effective_flight_capacity(),
            1
        );
        let r = Recorder::new(
            ObsConfig::new(2)
                .with_flight_window(Some(10))
                .with_flight_capacity(0),
        );
        r.record_matrix_inc(0, 1, 1);
        r.advance(25);
        assert_eq!(r.flight_windows().len(), 1);
    }

    #[test]
    fn metrics_flight_section_round_trips() {
        let r = Recorder::new(ObsConfig::new(2).with_flight_window(Some(100)));
        r.advance(5);
        r.record_tlb_miss(0, 0, 1, true);
        r.record_matrix_inc(0, 1, 4);
        r.finish(250);
        let m = r.metrics_json();
        let flight = m.get("flight").unwrap();
        assert_eq!(flight.get("window_cycles").unwrap().as_u64(), Some(100));
        assert_eq!(flight.get("windows_closed").unwrap().as_u64(), Some(3));
        assert_eq!(flight.get("phase").unwrap().as_u64(), Some(0));
        let phases = flight.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("volume").unwrap().as_u64(), Some(8));
        // Disabled recorders export an explicit null, keeping the key set
        // schema-stable.
        let plain = Recorder::new(ObsConfig::new(2));
        assert_eq!(plain.metrics_json().get("flight").unwrap(), &Json::Null);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new(ObsConfig::new(2));
        let clone = r.clone();
        clone.inc(CounterId::MapperRounds);
        assert_eq!(r.counter(CounterId::MapperRounds), 1);
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }
}
