//! Live metrics: lock-free rolling-window histograms any thread can
//! snapshot while workers keep updating them.
//!
//! The lifetime [`Histogram`] answers "what happened since the process
//! started", which is the wrong question for an operator watching a
//! long-running server: after an hour of traffic, a one-minute latency
//! spike vanishes into the lifetime p99. A [`WindowedHistogram`] keeps N
//! rotating log₂-bucket slots, each covering `window/N` of wall time, so a
//! snapshot merges only the slots that fall inside the last window —
//! p50/p99 reflect the last ~10 s, not the whole process.
//!
//! Everything on the write path is a handful of relaxed atomic adds (same
//! discipline as the metrics registry: the measurement must cost less than
//! what it measures). Rotation is driven by the *caller's* clock — a
//! millisecond timestamp — so the machinery is deterministic under test.
//! [`LiveRegistry`] bundles one windowed histogram per [`HistId`] behind a
//! monotonic wall clock and is what the serve subsystem snapshots for its
//! admin endpoint.

use crate::json::Json;
use crate::metrics::{bucket_index, bucket_lo, HistId, Histogram, HISTS, N_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sizing of a rolling telemetry window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Total window the rolling quantiles cover, in milliseconds.
    pub window_ms: u64,
    /// Rotating slots the window is divided into. More slots = smoother
    /// expiry at the cost of `slots × N_BUCKETS` atomics per histogram.
    pub slots: usize,
}

impl LiveConfig {
    /// Defaults: a 10 s window in 10 one-second slots.
    pub fn new() -> Self {
        LiveConfig {
            window_ms: 10_000,
            slots: 10,
        }
    }

    /// Override the window length.
    pub fn with_window_ms(mut self, ms: u64) -> Self {
        self.window_ms = ms;
        self
    }

    /// Override the slot count.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Window length with the zero hazard removed: a zero-length window
    /// could never hold an observation (every snapshot would be empty), so
    /// it is treated as the default 10 s — the same defusing discipline as
    /// `ObsConfig`'s snapshot-period-0 guard.
    pub fn effective_window_ms(&self) -> u64 {
        if self.window_ms == 0 {
            10_000
        } else {
            self.window_ms
        }
    }

    /// Slot count with the zero hazard removed: zero slots would divide by
    /// zero on every observe, so it is treated as 1 (the window becomes a
    /// single coarse bucket).
    pub fn effective_slots(&self) -> usize {
        self.slots.max(1)
    }
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig::new()
    }
}

/// Marker for a slot that has never been written.
const EMPTY_EPOCH: u64 = u64::MAX;

/// One rotating window slot: a log₂ histogram plus the slot-sequence
/// number (epoch) it currently holds data for.
#[derive(Debug)]
struct Slot {
    epoch: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            epoch: AtomicU64::new(EMPTY_EPOCH),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A merged, point-in-time view of a window (or of a lifetime histogram):
/// plain `u64`s, so it can be inspected, merged, and serialized without
/// touching the live atomics again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observed values inside the window.
    pub sum: u64,
    /// Merged log₂ bucket occupancies.
    pub buckets: [u64; N_BUCKETS],
}

impl Default for WindowSnapshot {
    fn default() -> Self {
        WindowSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

/// The representative value reported for bucket `idx`: the midpoint of
/// the bucket's `[2^(k-1), 2^k)` range (0 for the zero bucket). Quantiles
/// from log₂ buckets are approximate by construction; the midpoint halves
/// the worst-case error versus reporting the lower bound.
fn bucket_rep(idx: usize) -> u64 {
    let lo = bucket_lo(idx);
    lo + lo / 2
}

impl WindowSnapshot {
    /// Whether the window saw no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the windowed observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate (`q` in 0..=100) from the log₂
    /// buckets, reported as the matched bucket's midpoint. `None` when the
    /// window is empty — an empty window has no p50, and pretending it is
    /// 0 would read as "the server got infinitely fast" on a dashboard.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_rep(idx));
            }
        }
        // Unreachable when count == Σ buckets, but a racing writer can
        // leave count ahead of the buckets for an instant.
        Some(bucket_rep(N_BUCKETS - 1))
    }

    /// Merge another snapshot into this one (e.g. the rolling window into
    /// the lifetime view, or windows from several shards).
    pub fn merge(&mut self, other: &WindowSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// JSON export: count, sum, and the quantile ladder the admin
    /// endpoint serves (`null` quantiles when empty).
    pub fn to_json(&self) -> Json {
        let q = |p: f64| self.quantile(p).map_or(Json::Null, Json::U64);
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("mean", Json::F64(self.mean())),
            ("p50", q(50.0)),
            ("p90", q(90.0)),
            ("p99", q(99.0)),
        ])
    }
}

impl Histogram {
    /// The lifetime histogram as a [`WindowSnapshot`], so lifetime and
    /// windowed views merge and quantile through the same code.
    pub fn snapshot(&self) -> WindowSnapshot {
        let mut snap = WindowSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: [0; N_BUCKETS],
        };
        for (idx, slot) in snap.buckets.iter_mut().enumerate() {
            *slot = self.bucket(idx);
        }
        snap
    }

    /// Nearest-rank quantile estimate over the lifetime buckets. See
    /// [`WindowSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

/// A log₂ histogram over a rolling wall-clock window, plus the lifetime
/// histogram fed by the same observations.
///
/// Timestamps are caller-supplied milliseconds on any monotonic scale
/// (e.g. "ms since server start"). Writers may race a slot reset when a
/// slot is being recycled for a new epoch; a racing observation can land
/// in a just-cleared slot or be cleared with it — an acceptable telemetry
/// error of at most one observation per rotation, never a torn value.
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Vec<Slot>,
    slot_ms: u64,
    lifetime: Histogram,
}

impl WindowedHistogram {
    /// A window of `cfg.window_ms` milliseconds in `cfg.slots` slots.
    pub fn new(cfg: LiveConfig) -> Self {
        let slots = cfg.effective_slots();
        let slot_ms = (cfg.effective_window_ms() / slots as u64).max(1);
        WindowedHistogram {
            slots: (0..slots).map(|_| Slot::default()).collect(),
            slot_ms,
            lifetime: Histogram::default(),
        }
    }

    /// Milliseconds one slot covers.
    pub fn slot_ms(&self) -> u64 {
        self.slot_ms
    }

    /// Milliseconds the full window covers.
    pub fn window_ms(&self) -> u64 {
        self.slot_ms * self.slots.len() as u64
    }

    /// Record `value` at time `now_ms`, into both the current window slot
    /// and the lifetime histogram.
    pub fn observe(&self, now_ms: u64, value: u64) {
        let epoch = now_ms / self.slot_ms;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let current = slot.epoch.load(Ordering::Relaxed);
        if current != epoch {
            // The slot holds a previous rotation (or nothing): the first
            // writer of the new epoch claims and clears it. Losers of the
            // claim race simply add into the freshly cleared slot.
            if slot
                .epoch
                .compare_exchange(current, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                for bucket in &slot.buckets {
                    bucket.store(0, Ordering::Relaxed);
                }
                slot.count.store(0, Ordering::Relaxed);
                slot.sum.store(0, Ordering::Relaxed);
            }
        }
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        self.lifetime.observe(value);
    }

    /// Merge the slots still inside the window ending at `now_ms` into a
    /// snapshot. Slots whose epoch has rotated out are skipped, so an
    /// idle histogram decays to empty as time passes.
    pub fn window(&self, now_ms: u64) -> WindowSnapshot {
        let current = now_ms / self.slot_ms;
        let oldest = current.saturating_sub(self.slots.len() as u64 - 1);
        let mut snap = WindowSnapshot::default();
        for slot in &self.slots {
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if epoch == EMPTY_EPOCH || epoch < oldest || epoch > current {
                continue;
            }
            snap.count += slot.count.load(Ordering::Relaxed);
            snap.sum += slot.sum.load(Ordering::Relaxed);
            for (mine, bucket) in snap.buckets.iter_mut().zip(slot.buckets.iter()) {
                *mine += bucket.load(Ordering::Relaxed);
            }
        }
        snap
    }

    /// The lifetime histogram fed by every observation this window ever
    /// saw, regardless of rotation.
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }
}

/// Live telemetry registry: one [`WindowedHistogram`] per [`HistId`]
/// behind a shared monotonic clock. Workers call [`LiveRegistry::observe`]
/// on the hot path (a few relaxed atomic adds); any thread snapshots with
/// [`LiveRegistry::window`] without stopping the world.
#[derive(Debug)]
pub struct LiveRegistry {
    started: Instant,
    hists: [WindowedHistogram; HISTS.len()],
}

impl LiveRegistry {
    /// A registry whose windows follow `cfg`.
    pub fn new(cfg: LiveConfig) -> Self {
        LiveRegistry {
            started: Instant::now(),
            hists: std::array::from_fn(|_| WindowedHistogram::new(cfg)),
        }
    }

    /// Milliseconds since the registry was created (the clock every
    /// observation is stamped with).
    pub fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Record a value at the current wall clock.
    pub fn observe(&self, id: HistId, value: u64) {
        self.observe_at(id, self.now_ms(), value);
    }

    /// Record a value at an explicit timestamp (deterministic tests).
    pub fn observe_at(&self, id: HistId, now_ms: u64, value: u64) {
        self.hists[id as usize].observe(now_ms, value);
    }

    /// Rolling-window snapshot at the current wall clock.
    pub fn window(&self, id: HistId) -> WindowSnapshot {
        self.window_at(id, self.now_ms())
    }

    /// Rolling-window snapshot at an explicit timestamp.
    pub fn window_at(&self, id: HistId, now_ms: u64) -> WindowSnapshot {
        self.hists[id as usize].window(now_ms)
    }

    /// Lifetime histogram of a series.
    pub fn lifetime(&self, id: HistId) -> &Histogram {
        self.hists[id as usize].lifetime()
    }

    /// Milliseconds the rolling windows cover.
    pub fn window_ms(&self) -> u64 {
        self.hists[0].window_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_ms: u64, slots: usize) -> LiveConfig {
        LiveConfig::new()
            .with_window_ms(window_ms)
            .with_slots(slots)
    }

    #[test]
    fn zero_window_and_slots_are_defused() {
        assert_eq!(cfg(0, 10).effective_window_ms(), 10_000);
        assert_eq!(cfg(5_000, 0).effective_slots(), 1);
        // A degenerate config still produces a working histogram.
        let h = WindowedHistogram::new(cfg(0, 0));
        h.observe(0, 42);
        assert_eq!(h.window(0).count, 1);
        assert!(h.slot_ms() >= 1);
    }

    #[test]
    fn window_rotates_out_old_observations() {
        // 1000 ms window, 10 slots of 100 ms.
        let h = WindowedHistogram::new(cfg(1000, 10));
        h.observe(0, 10);
        h.observe(50, 20);
        h.observe(500, 30);
        assert_eq!(h.window(500).count, 3);
        // At t=1000 the slot holding t∈[0,100) is exactly one window old
        // and must have rotated out; the t=500 slot survives.
        let snap = h.window(1000);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 30);
        // Far in the future everything has rotated out...
        assert!(h.window(10_000).is_empty());
        // ...but the lifetime histogram keeps all three.
        assert_eq!(h.lifetime().count(), 3);
        assert_eq!(h.lifetime().sum(), 60);
    }

    #[test]
    fn rotation_boundary_is_exact() {
        let h = WindowedHistogram::new(cfg(1000, 10));
        h.observe(99, 1); // epoch 0
                          // The last instant epoch 0 is still in the window of width 10
                          // slots is epoch 9, i.e. now_ms in [900, 1000).
        assert_eq!(h.window(999).count, 1);
        assert_eq!(h.window(1000).count, 0, "one full window later: expired");
    }

    #[test]
    fn slot_reuse_clears_stale_data() {
        let h = WindowedHistogram::new(cfg(1000, 10));
        h.observe(0, 7); // epoch 0, slot 0
                         // Epoch 10 maps to slot 0 again; the write must clear the old
                         // epoch's contents before landing.
        h.observe(1000, 9);
        let snap = h.window(1000);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 9);
        assert_eq!(h.lifetime().count(), 2);
    }

    #[test]
    fn empty_window_quantiles_are_none() {
        let h = WindowedHistogram::new(cfg(1000, 10));
        let snap = h.window(0);
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(50.0), None);
        assert_eq!(snap.quantile(99.0), None);
        assert_eq!(snap.mean(), 0.0);
        let json = snap.to_json();
        assert_eq!(json.get("p50").unwrap(), &Json::Null);
        assert_eq!(json.get("count").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = WindowedHistogram::new(cfg(1000, 10));
        // 99 small values and one huge outlier, all in one slot.
        for _ in 0..99 {
            h.observe(0, 100); // bucket [64,128), midpoint 96
        }
        h.observe(0, 1 << 20); // bucket [2^20, 2^21), midpoint 1.5×2^20
        let snap = h.window(0);
        assert_eq!(snap.count, 100);
        assert_eq!(snap.quantile(50.0), Some(96));
        assert_eq!(snap.quantile(99.0), Some(96));
        assert_eq!(snap.quantile(100.0), Some((1 << 20) + (1 << 19)));
        // q clamps: negative behaves like 0 (first occupied bucket).
        assert_eq!(snap.quantile(-5.0), Some(96));
    }

    #[test]
    fn window_snapshot_merges_with_the_lifetime_histogram() {
        let h = WindowedHistogram::new(cfg(1000, 10));
        h.observe(0, 10); // will rotate out
        h.observe(2000, 50);
        h.observe(2100, 70);
        let window = h.window(2100);
        assert_eq!(window.count, 2);
        let lifetime = h.lifetime().snapshot();
        assert_eq!(lifetime.count, 3);
        // The window is a subset of the lifetime: merging the *expired*
        // remainder back in reproduces the lifetime exactly.
        let mut merged = window.clone();
        let mut expired = WindowSnapshot {
            count: lifetime.count - window.count,
            sum: lifetime.sum - window.sum,
            ..Default::default()
        };
        for (idx, slot) in expired.buckets.iter_mut().enumerate() {
            *slot = lifetime.buckets[idx] - window.buckets[idx];
        }
        merged.merge(&expired);
        assert_eq!(merged, lifetime);
        // And Histogram::quantile agrees with its snapshot's quantile.
        assert_eq!(h.lifetime().quantile(50.0), lifetime.quantile(50.0));
    }

    #[test]
    fn registry_stamps_and_snapshots_per_series() {
        let reg = LiveRegistry::new(cfg(10_000, 10));
        reg.observe_at(HistId::ServeRequestLatencyUs, 100, 200);
        reg.observe_at(HistId::ServeQueueDepth, 100, 3);
        let lat = reg.window_at(HistId::ServeRequestLatencyUs, 100);
        assert_eq!(lat.count, 1);
        assert!(reg.window_at(HistId::ServeQueueDepth, 100).count == 1);
        // Series are independent.
        assert_eq!(reg.window_at(HistId::DetectionSearchCycles, 100).count, 0);
        assert_eq!(reg.lifetime(HistId::ServeRequestLatencyUs).count(), 1);
        assert_eq!(reg.window_ms(), 10_000);
        // The wall-clock path works too (cannot assert timing, only flow).
        reg.observe(HistId::ServeRequestLatencyUs, 300);
        assert_eq!(reg.lifetime(HistId::ServeRequestLatencyUs).count(), 2);
        assert!(reg.window(HistId::ServeRequestLatencyUs).count >= 1);
    }

    #[test]
    fn snapshot_json_carries_the_quantile_ladder() {
        let h = WindowedHistogram::new(cfg(1000, 10));
        for value in [100u64, 200, 400, 800] {
            h.observe(0, value);
        }
        let json = h.window(0).to_json();
        assert_eq!(json.get("count").unwrap().as_u64(), Some(4));
        assert!(json.get("p50").unwrap().as_u64().is_some());
        assert!(json.get("p99").unwrap().as_u64().is_some());
        assert!(json.get("mean").unwrap().as_f64().is_some());
    }
}
