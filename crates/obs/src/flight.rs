//! The flight recorder: a bounded in-engine ring of windowed
//! communication-matrix deltas with an online phase detector.
//!
//! The offline phase machinery (`tlbmap_core::detect_phase_changes`, the
//! `tlbmap_prof` accuracy timeline) runs after a batch run against full
//! matrix snapshots. The flight recorder is its online counterpart: while
//! the engine runs, it accumulates the *delta* of the communication
//! matrix over fixed-length cycle windows plus per-core TLB-miss activity,
//! closes each window as the clock passes its boundary, and compares the
//! closed window's pattern against the current phase's reference pattern
//! (the first non-empty window of the phase) using the same cosine drift
//! kernel the offline gates use ([`crate::drift`]). Windows carrying less
//! than a quarter of the reference's traffic are attributed to the
//! current phase without judgement — sampling detectors produce sparse
//! fragment windows whose shape is noise, not signal. A dense window whose
//! similarity falls below [`PHASE_SIMILARITY_THRESHOLD`] starts a new
//! phase: the recorder emits [`crate::Event::PhaseChange`], bumps the
//! run's `phase_id`, and snapshots the cumulative cycle profile and core
//! counters so exports can attribute cycles *per phase* without any
//! hot-path cost (per-phase values are deltas between marks, not split
//! atomics).
//!
//! Memory is bounded: the window ring keeps the newest
//! `flight_capacity` windows (older ones are dropped and counted), while
//! per-phase aggregates stay exact — one accumulator per phase, not per
//! window. Everything is keyed to simulated cycles, so two identical
//! seeded runs produce byte-identical flight sections.

use crate::drift::cosine_u64;
use crate::json::Json;
use crate::profile::{Profile, PROF_NODES};
use std::collections::VecDeque;

/// Two consecutive patterns with cosine similarity below this are a phase
/// change. Matches `tlbmap_prof::DEFAULT_PHASE_THRESHOLD` so the online
/// detector and the offline timeline agree on what "diverged" means.
pub const PHASE_SIMILARITY_THRESHOLD: f64 = 0.75;

/// One closed flight-recorder window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightWindow {
    /// Zero-based window index (monotonic, survives ring drops).
    pub index: u64,
    /// First cycle the window covers (inclusive).
    pub start_cycle: u64,
    /// Last cycle the window covers (exclusive).
    pub end_cycle: u64,
    /// Phase the window was attributed to (after judging it).
    pub phase: u64,
    /// Row-major n×n communication-matrix delta accumulated in the window.
    pub cells: Vec<u64>,
    /// TLB misses per core observed in the window.
    pub core_activity: Vec<u64>,
    /// Cosine similarity to the phase reference, in parts-per-million
    /// (kept integral so exports stay byte-stable). `None` when the window
    /// was empty or there was no reference yet to compare against.
    pub similarity_ppm: Option<u64>,
}

impl FlightWindow {
    /// Total communication volume of the window.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// JSON export (matrix rendered as rows, like [`crate::MatrixSnapshot`]).
    pub fn to_json(&self, n: usize) -> Json {
        let rows: Vec<Json> = (0..n)
            .map(|i| Json::Arr((0..n).map(|j| Json::U64(self.cells[i * n + j])).collect()))
            .collect();
        Json::obj(vec![
            ("index", Json::U64(self.index)),
            ("start_cycle", Json::U64(self.start_cycle)),
            ("end_cycle", Json::U64(self.end_cycle)),
            ("phase", Json::U64(self.phase)),
            (
                "similarity_ppm",
                self.similarity_ppm.map_or(Json::Null, Json::U64),
            ),
            (
                "core_activity",
                Json::Arr(self.core_activity.iter().map(|&c| Json::U64(c)).collect()),
            ),
            ("rows", Json::Arr(rows)),
        ])
    }
}

/// Cumulative profiler state captured at a phase boundary. Per-phase
/// cycle attribution is the delta between consecutive marks (matrix and
/// core-activity attribution is exact per window via [`PhaseAgg`]).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PhaseMark {
    /// Cumulative exclusive cycles per [`crate::ProfId`], in
    /// [`PROF_NODES`] order.
    prof_cycles: Vec<u64>,
    /// Cumulative calls per [`crate::ProfId`], in [`PROF_NODES`] order.
    prof_calls: Vec<u64>,
}

/// Exact per-phase aggregate (never dropped, one per phase).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PhaseAgg {
    phase: u64,
    start_cycle: u64,
    end_cycle: u64,
    windows: u64,
    cells: Vec<u64>,
    core_activity: Vec<u64>,
}

/// What closing one window produced, for the recorder to turn into
/// events and counters (the state itself stays lock-scoped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WindowClose {
    /// Index of the window that closed.
    pub index: u64,
    /// End cycle of the window.
    pub end_cycle: u64,
    /// Similarity to the phase reference, ppm, if judged.
    pub similarity_ppm: Option<u64>,
    /// `Some(new_phase)` when the window started a new phase.
    pub phase_change: Option<u64>,
    /// Whether the ring dropped its oldest window to make room.
    pub dropped: bool,
}

/// Mutable flight-recorder state (lives behind the recorder's mutex).
#[derive(Debug)]
pub(crate) struct FlightState {
    /// Thread count (matrix dimension).
    n: usize,
    /// Window length in cycles (guarded non-zero by `ObsConfig`).
    window_cycles: u64,
    /// Windows retained in the ring (guarded non-zero by `ObsConfig`).
    capacity: usize,
    /// Current (open) window's matrix delta.
    cells: Vec<u64>,
    /// Current (open) window's per-core miss counts.
    core_activity: Vec<u64>,
    /// Cumulative per-core miss counts across the whole run.
    cum_core_activity: Vec<u64>,
    /// First cycle of the open window.
    window_start: u64,
    /// Next window index to assign.
    next_index: u64,
    /// The ring of closed windows, oldest first.
    windows: VecDeque<FlightWindow>,
    /// Closed windows dropped from the ring.
    dropped: u64,
    /// Current phase id.
    phase: u64,
    /// Reference pattern of the current phase (first non-empty window).
    reference: Option<Vec<u64>>,
    /// Cumulative state at each phase boundary (len = phase count - 1).
    marks: Vec<PhaseMark>,
    /// Exact per-phase aggregates.
    aggs: Vec<PhaseAgg>,
}

impl FlightState {
    pub(crate) fn new(n: usize, window_cycles: u64, capacity: usize) -> FlightState {
        FlightState {
            n,
            window_cycles,
            capacity,
            cells: vec![0; n * n],
            core_activity: Vec::new(),
            cum_core_activity: Vec::new(),
            window_start: 0,
            next_index: 0,
            windows: VecDeque::new(),
            dropped: 0,
            phase: 0,
            reference: None,
            marks: Vec::new(),
            aggs: Vec::new(),
        }
    }

    /// Window length in cycles.
    pub(crate) fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Whether the open window began before `cycle` (i.e. closing at
    /// `cycle` would close a non-degenerate partial window).
    pub(crate) fn open_window_started_before(&self, cycle: u64) -> bool {
        self.window_start < cycle
    }

    /// Current phase id.
    #[cfg(test)]
    pub(crate) fn phase(&self) -> u64 {
        self.phase
    }

    /// Record a symmetric matrix increment into the open window.
    pub(crate) fn record_inc(&mut self, a: usize, b: usize, amount: u64) {
        let n = self.n;
        if a < n && b < n && a != b {
            self.cells[a * n + b] += amount;
            self.cells[b * n + a] += amount;
        }
    }

    /// Record one TLB miss on `core` into the open window.
    pub(crate) fn record_miss(&mut self, core: usize) {
        if core >= self.core_activity.len() {
            self.core_activity.resize(core + 1, 0);
        }
        self.core_activity[core] += 1;
    }

    /// Close the open window at `end_cycle`, judge it against the phase
    /// reference, and open the next. The caller (the recorder) emits the
    /// events and counters described by the returned [`WindowClose`].
    pub(crate) fn close_window(&mut self, end_cycle: u64, prof: &Profile) -> WindowClose {
        let cells = std::mem::replace(&mut self.cells, vec![0; self.n * self.n]);
        let core_activity = std::mem::take(&mut self.core_activity);
        if self.cum_core_activity.len() < core_activity.len() {
            self.cum_core_activity.resize(core_activity.len(), 0);
        }
        for (cum, &w) in self.cum_core_activity.iter_mut().zip(&core_activity) {
            *cum += w;
        }

        let index = self.next_index;
        self.next_index += 1;
        let start_cycle = self.window_start;
        self.window_start = end_cycle;

        let total: u64 = cells.iter().sum();
        let mut similarity_ppm = None;
        let mut phase_change = None;
        if total > 0 {
            match &self.reference {
                None => {
                    // First non-empty window of the run establishes the
                    // phase-0 reference; nothing to diverge from yet.
                    self.reference = Some(cells.clone());
                }
                // A window carrying less than a quarter of the reference
                // window's traffic is too sparse to judge: with sampling
                // detectors such windows hold arbitrary fragments of the
                // true pattern (an iteration tail clipped by the window
                // boundary) and comparing fragments flags sampling noise
                // as phase changes. Attribute it to the current phase and
                // wait for a denser window.
                Some(reference) if total * 4 < reference.iter().sum() => {}
                Some(reference) => {
                    let sim = cosine_u64(reference, &cells);
                    similarity_ppm = Some((sim.clamp(0.0, 1.0) * 1e6).round() as u64);
                    if sim < PHASE_SIMILARITY_THRESHOLD {
                        self.phase += 1;
                        phase_change = Some(self.phase);
                        self.reference = Some(cells.clone());
                        self.marks.push(PhaseMark {
                            prof_cycles: PROF_NODES
                                .iter()
                                .map(|&id| prof.exclusive_cycles(id))
                                .collect(),
                            prof_calls: PROF_NODES.iter().map(|&id| prof.calls(id)).collect(),
                        });
                    }
                }
            }
        }
        // Empty windows stay in the current phase and leave the reference
        // untouched — sampling detectors legitimately produce them.

        let window = FlightWindow {
            index,
            start_cycle,
            end_cycle,
            phase: self.phase,
            cells,
            core_activity,
            similarity_ppm,
        };
        self.aggregate(&window);
        let dropped = self.windows.len() >= self.capacity;
        if dropped {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(window);
        WindowClose {
            index,
            end_cycle,
            similarity_ppm,
            phase_change,
            dropped,
        }
    }

    /// Fold a closed window into its phase's exact aggregate.
    fn aggregate(&mut self, w: &FlightWindow) {
        let agg = match self.aggs.last_mut() {
            Some(agg) if agg.phase == w.phase => agg,
            _ => {
                self.aggs.push(PhaseAgg {
                    phase: w.phase,
                    start_cycle: w.start_cycle,
                    end_cycle: w.end_cycle,
                    windows: 0,
                    cells: vec![0; self.n * self.n],
                    core_activity: Vec::new(),
                });
                self.aggs.last_mut().expect("just pushed")
            }
        };
        agg.end_cycle = w.end_cycle;
        agg.windows += 1;
        for (acc, &c) in agg.cells.iter_mut().zip(&w.cells) {
            *acc += c;
        }
        if agg.core_activity.len() < w.core_activity.len() {
            agg.core_activity.resize(w.core_activity.len(), 0);
        }
        for (acc, &c) in agg.core_activity.iter_mut().zip(&w.core_activity) {
            *acc += c;
        }
    }

    /// Retained windows, oldest first.
    pub(crate) fn retained(&self) -> Vec<FlightWindow> {
        self.windows.iter().cloned().collect()
    }

    /// JSON export of the whole flight section. `prof` supplies the final
    /// cumulative profile so the last (still-open) phase gets attributed.
    pub(crate) fn to_json(&self, prof: &Profile) -> Json {
        let windows: Vec<Json> = self.windows.iter().map(|w| w.to_json(self.n)).collect();
        let final_mark = PhaseMark {
            prof_cycles: PROF_NODES
                .iter()
                .map(|&id| prof.exclusive_cycles(id))
                .collect(),
            prof_calls: PROF_NODES.iter().map(|&id| prof.calls(id)).collect(),
        };
        let zero = PhaseMark {
            prof_cycles: vec![0; PROF_NODES.len()],
            prof_calls: vec![0; PROF_NODES.len()],
        };
        let phases: Vec<Json> = self
            .aggs
            .iter()
            .enumerate()
            .map(|(i, agg)| {
                let from = if i == 0 { &zero } else { &self.marks[i - 1] };
                let to = self.marks.get(i).unwrap_or(&final_mark);
                let profile: Vec<Json> = PROF_NODES
                    .iter()
                    .enumerate()
                    .filter_map(|(k, &id)| {
                        let calls = to.prof_calls[k].saturating_sub(from.prof_calls[k]);
                        let cycles = to.prof_cycles[k].saturating_sub(from.prof_cycles[k]);
                        if calls == 0 && cycles == 0 {
                            return None;
                        }
                        Some(Json::obj(vec![
                            ("component", Json::Str(id.path())),
                            ("calls", Json::U64(calls)),
                            ("exclusive_cycles", Json::U64(cycles)),
                        ]))
                    })
                    .collect();
                // Core activity comes from the exact per-window aggregate
                // (the divergent window that *opens* a phase is attributed
                // to that phase, like its matrix cells — mark deltas would
                // hand it to the previous phase).
                let core_activity: Vec<Json> =
                    agg.core_activity.iter().map(|&c| Json::U64(c)).collect();
                let rows: Vec<Json> = (0..self.n)
                    .map(|r| {
                        Json::Arr(
                            (0..self.n)
                                .map(|c| Json::U64(agg.cells[r * self.n + c]))
                                .collect(),
                        )
                    })
                    .collect();
                Json::obj(vec![
                    ("phase", Json::U64(agg.phase)),
                    ("start_cycle", Json::U64(agg.start_cycle)),
                    ("end_cycle", Json::U64(agg.end_cycle)),
                    ("windows", Json::U64(agg.windows)),
                    ("volume", Json::U64(agg.cells.iter().sum())),
                    ("core_activity", Json::Arr(core_activity)),
                    ("profile", Json::Arr(profile)),
                    ("rows", Json::Arr(rows)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("window_cycles", Json::U64(self.window_cycles)),
            ("capacity", Json::U64(self.capacity as u64)),
            ("n", Json::U64(self.n as u64)),
            ("windows_closed", Json::U64(self.next_index)),
            ("windows_dropped", Json::U64(self.dropped)),
            ("phase", Json::U64(self.phase)),
            ("windows", Json::Arr(windows)),
            ("phases", Json::Arr(phases)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfId;

    fn close(state: &mut FlightState, end: u64) -> WindowClose {
        let prof = Profile::default();
        state.close_window(end, &prof)
    }

    #[test]
    fn first_nonempty_window_sets_the_reference_without_a_change() {
        let mut s = FlightState::new(2, 100, 8);
        s.record_inc(0, 1, 5);
        let c = close(&mut s, 100);
        assert_eq!(c.index, 0);
        assert_eq!(c.similarity_ppm, None, "nothing to compare yet");
        assert_eq!(c.phase_change, None);
        assert_eq!(s.phase(), 0);
    }

    #[test]
    fn stable_pattern_stays_in_one_phase() {
        let mut s = FlightState::new(2, 100, 8);
        for k in 0..5 {
            s.record_inc(0, 1, 3);
            let c = close(&mut s, (k + 1) * 100);
            if k > 0 {
                assert_eq!(c.similarity_ppm, Some(1_000_000));
            }
            assert_eq!(c.phase_change, None);
        }
        assert_eq!(s.phase(), 0);
        assert_eq!(s.retained().len(), 5);
    }

    #[test]
    fn divergent_window_starts_a_new_phase() {
        let mut s = FlightState::new(4, 100, 8);
        s.record_inc(0, 1, 10);
        close(&mut s, 100);
        s.record_inc(0, 1, 10);
        close(&mut s, 200);
        // Pattern flips to a disjoint pair: cosine 0 < threshold.
        s.record_inc(2, 3, 10);
        let c = close(&mut s, 300);
        assert_eq!(c.similarity_ppm, Some(0));
        assert_eq!(c.phase_change, Some(1));
        assert_eq!(s.phase(), 1);
        // The new pattern is now the reference: staying on it is stable.
        s.record_inc(2, 3, 10);
        let c = close(&mut s, 400);
        assert_eq!(c.phase_change, None);
        assert_eq!(c.similarity_ppm, Some(1_000_000));
    }

    #[test]
    fn sparse_windows_are_not_judged() {
        let mut s = FlightState::new(4, 100, 8);
        s.record_inc(0, 1, 20);
        close(&mut s, 100);
        // A 4-sample fragment on a disjoint pair: under a quarter of the
        // reference's 40-unit volume, so it carries too little evidence
        // to re-reference — no judgement, no phase change.
        s.record_inc(2, 3, 2);
        let c = close(&mut s, 200);
        assert_eq!(c.similarity_ppm, None);
        assert_eq!(c.phase_change, None);
        assert_eq!(s.phase(), 0);
        // Exactly a quarter is enough evidence, and a quarter-volume
        // window on the *same* pattern is perfectly similar.
        s.record_inc(0, 1, 5);
        let c = close(&mut s, 300);
        assert_eq!(c.similarity_ppm, Some(1_000_000));
        // A dense divergent window still flips the phase.
        s.record_inc(2, 3, 20);
        let c = close(&mut s, 400);
        assert_eq!(c.phase_change, Some(1));
    }

    #[test]
    fn empty_windows_do_not_judge_or_touch_the_reference() {
        let mut s = FlightState::new(2, 100, 8);
        s.record_inc(0, 1, 5);
        close(&mut s, 100);
        let c = close(&mut s, 200); // nothing recorded
        assert_eq!(c.similarity_ppm, None);
        assert_eq!(c.phase_change, None);
        assert_eq!(s.phase(), 0);
        // The old reference still applies after the gap.
        s.record_inc(0, 1, 2);
        let c = close(&mut s, 300);
        assert_eq!(c.similarity_ppm, Some(1_000_000));
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut s = FlightState::new(2, 10, 3);
        for k in 0..5u64 {
            s.record_inc(0, 1, 1);
            let c = close(&mut s, (k + 1) * 10);
            assert_eq!(c.dropped, k >= 3);
        }
        let retained = s.retained();
        assert_eq!(retained.len(), 3);
        assert_eq!(retained[0].index, 2, "oldest two dropped");
        assert_eq!(s.dropped, 2);
        // Exact aggregates survive the drops.
        assert_eq!(s.aggs[0].windows, 5);
        assert_eq!(s.aggs[0].cells[1], 5);
    }

    #[test]
    fn per_core_activity_is_windowed_and_aggregated() {
        let mut s = FlightState::new(2, 100, 8);
        s.record_miss(0);
        s.record_miss(0);
        s.record_miss(3);
        s.record_inc(0, 1, 1);
        close(&mut s, 100);
        s.record_miss(1);
        s.record_inc(0, 1, 1);
        close(&mut s, 200);
        let w = s.retained();
        assert_eq!(w[0].core_activity, vec![2, 0, 0, 1]);
        assert_eq!(w[1].core_activity, vec![0, 1]);
        assert_eq!(s.cum_core_activity, vec![2, 1, 0, 1]);
        assert_eq!(s.aggs[0].core_activity, vec![2, 1, 0, 1]);
    }

    #[test]
    fn phase_marks_split_the_profile() {
        let prof = Profile::default();
        let mut s = FlightState::new(4, 100, 8);
        prof.charge(ProfId::EngineCompute, 100);
        s.record_inc(0, 1, 10);
        s.close_window(100, &prof);
        prof.charge(ProfId::EngineCompute, 40);
        s.record_inc(2, 3, 10); // divergence -> phase 1 boundary here
        s.close_window(200, &prof);
        prof.charge(ProfId::EngineCompute, 7);
        s.record_inc(2, 3, 10);
        s.close_window(300, &prof);

        let doc = s.to_json(&prof);
        let phases = doc.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        // Phase 0 ends at the boundary mark: 100 + 40 cycles.
        let p0 = phases[0].get("profile").unwrap().as_array().unwrap();
        assert_eq!(
            p0[0].get("component").unwrap().as_str(),
            Some("engine;compute")
        );
        assert_eq!(p0[0].get("exclusive_cycles").unwrap().as_u64(), Some(140));
        // Phase 1 gets the remainder.
        let p1 = phases[1].get("profile").unwrap().as_array().unwrap();
        assert_eq!(p1[0].get("exclusive_cycles").unwrap().as_u64(), Some(7));
        // Volumes partition the run.
        assert_eq!(phases[0].get("volume").unwrap().as_u64(), Some(20));
        assert_eq!(phases[1].get("volume").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn json_section_is_complete_and_parses() {
        let prof = Profile::default();
        let mut s = FlightState::new(2, 50, 4);
        s.record_inc(0, 1, 3);
        s.record_miss(1);
        s.close_window(50, &prof);
        let doc = s.to_json(&prof);
        for key in [
            "window_cycles",
            "capacity",
            "n",
            "windows_closed",
            "windows_dropped",
            "phase",
            "windows",
            "phases",
        ] {
            assert!(doc.get(key).is_some(), "missing `{key}`");
        }
        let rendered = doc.render();
        assert!(Json::parse(&rendered).is_ok(), "{rendered}");
        let w = doc.get("windows").unwrap().as_array().unwrap();
        assert_eq!(w[0].get("rows").unwrap().as_array().unwrap().len(), 2);
    }
}
