//! # tlbmap-obs — structured observability for the TLB-mapping simulator
//!
//! In-house event tracing, metrics, and run-artifact export. The crate has
//! **zero dependencies** (the build environment cannot reach crates.io), so
//! JSON encoding/decoding, the histogram machinery, and the trace formats
//! all live here.
//!
//! Four layers:
//!
//! * **Events** ([`Event`]) — discrete occurrences (TLB misses, detection
//!   searches, matrix increments, barriers, migrations, phase changes)
//!   kept in a bounded ring and exported as JSONL or Chrome `trace_event`
//!   JSON.
//! * **Metrics** ([`CounterId`], [`HistId`], [`Histogram`]) — monotonic
//!   counters and log₂-bucketed histograms with a lock-free hot path.
//! * **Live windows** ([`LiveRegistry`], [`WindowedHistogram`]) — rolling
//!   wall-clock windows of N rotating log₂ slots, snapshotable by any
//!   thread without stopping the writers, so a long-running server can
//!   answer "what are p50/p99 *right now*" instead of since-boot.
//! * **Snapshots** ([`MatrixSnapshot`]) — periodic copies of the
//!   communication matrix keyed by cycle and barrier count, showing how
//!   the detected pattern converges over a run.
//! * **Flight recorder** ([`FlightWindow`], [`crate::flight`]) — a bounded
//!   ring of windowed communication-matrix *deltas* plus per-core activity,
//!   maintained on the detector hot path, with an online phase detector
//!   that stamps a `phase_id` into events and splits the cycle profile
//!   per phase (built on the shared [`drift`] kernels).
//! * **Self-profiling** ([`ProfId`], [`Profile`]) — scoped accounting of
//!   where *simulated* cycles go (compute, TLB, cache, detection scans,
//!   barriers, migrations, mapper), rendered as inclusive/exclusive
//!   totals and collapsed-stack/flamegraph text.
//!
//! The entry point is [`Recorder`]: a cheap cloneable handle threaded
//! through the engine, detectors, and mapper. [`Recorder::disabled`]
//! reduces every probe to a single branch, so simulations not being
//! observed pay nothing.
//!
//! ```
//! use tlbmap_obs::{CounterId, ObsConfig, Recorder};
//!
//! let rec = Recorder::new(ObsConfig::new(4).with_snapshot_period(Some(1000)));
//! rec.advance(500);
//! rec.record_tlb_miss(0, 0, 0x77, true);
//! rec.record_matrix_inc(0, 1, 2);
//! rec.finish(2500);
//! assert_eq!(rec.counter(CounterId::TlbMisses), 1);
//! assert_eq!(rec.snapshots().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod drift;
pub mod event;
pub mod flight;
pub mod json;
pub mod live;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod ring;

pub use event::{Event, Mechanism};
pub use flight::{FlightWindow, PHASE_SIMILARITY_THRESHOLD};
pub use json::{Json, JsonError};
pub use live::{LiveConfig, LiveRegistry, WindowSnapshot, WindowedHistogram};
pub use metrics::{
    bucket_index, bucket_lo, CounterId, HistId, Histogram, COUNTERS, HISTS, N_BUCKETS,
};
pub use profile::{ProfId, Profile, PROF_NODES};
pub use recorder::{MatrixSnapshot, ObsConfig, Recorder};
pub use ring::RingBuffer;
