//! A minimal JSON value model, writer and parser.
//!
//! The build environment has no access to crates.io, so the observability
//! layer carries its own JSON support instead of depending on `serde`. The
//! writer is deterministic — object keys keep insertion order and no
//! whitespace is emitted — which is what makes two identical seeded runs
//! produce byte-identical trace files.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer, written without a decimal point.
    U64(u64),
    /// Negative integer, written without a decimal point.
    I64(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (or a non-negative
    /// signed / integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize without whitespace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Rejects trailing non-whitespace input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_compound_deterministically() {
        let v = Json::obj(vec![
            ("b", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[null,false]}");
    }

    #[test]
    fn parses_what_it_writes() {
        let v = Json::obj(vec![
            ("counters", Json::obj(vec![("x", Json::U64(u64::MAX))])),
            ("rate", Json::F64(0.015)),
            ("name", Json::Str("CG — run/1".into())),
            ("neg", Json::I64(-3)),
            ("list", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\\t\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str(),
            Some("aA\t")
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let big = u64::MAX - 1;
        let parsed = Json::parse(&big.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
        assert_eq!(
            Json::parse("-9007199254740993").unwrap(),
            Json::I64(-9007199254740993)
        );
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn accessors_reject_wrong_types() {
        assert_eq!(Json::Str("x".into()).as_u64(), None);
        assert_eq!(Json::U64(1).as_str(), None);
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::F64(1.5).as_u64(), None);
        assert_eq!(Json::F64(3.0).as_u64(), Some(3));
    }
}
