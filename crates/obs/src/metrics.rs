//! The metrics registry: monotonic counters and log₂-bucketed histograms.
//!
//! All slots are fixed at compile time and backed by atomics, so the hot
//! path is a relaxed `fetch_add` — no locks, no allocation, and per-core
//! increments aggregate without coordination. This is the discipline
//! sampling-based detectors need: the measurement layer must cost less
//! than what it measures.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Memory accesses executed.
    Accesses,
    /// TLB misses observed (all cores).
    TlbMisses,
    /// Detection searches that actually ran.
    DetectionSearches,
    /// Cycles charged by detection hooks.
    DetectionOverheadCycles,
    /// TLB entries (or entry pairs) compared across all searches.
    SearchEntriesCompared,
    /// Communication-matrix increments recorded.
    MatrixIncrements,
    /// Barriers crossed.
    Barriers,
    /// Thread migrations performed.
    Migrations,
    /// Periodic HM interrupts fired.
    Ticks,
    /// Communication-matrix snapshots taken.
    SnapshotsTaken,
    /// Trace events overwritten in the ring buffer.
    EventsDropped,
    /// Hierarchical-mapper matching levels run.
    MapperRounds,
    /// Phase changes flagged by windowed detection.
    PhaseChanges,
    /// Mapping-service requests received (all request kinds).
    ServeRequests,
    /// Mapping-service requests rejected because the work queue was full.
    ServeOverloaded,
    /// Mapping-service requests that exceeded their deadline.
    ServeTimeouts,
    /// Mapping-service result-cache hits (including coalesced waiters).
    ServeCacheHits,
    /// Mapping-service result-cache misses (leader computations).
    ServeCacheMisses,
    /// Mapping-service `map` requests admitted for parsing (a subset of
    /// `ServeRequests`, which counts every request kind).
    ServeMapRequests,
    /// Mapping-service frames rejected before parsing (bad length, bad
    /// JSON, wrong protocol version).
    ServeBadFrames,
    /// Mapping-service requests that parsed but were invalid.
    ServeBadRequests,
    /// Mapping-service requests refused because shutdown had begun.
    ServeShuttingDown,
    /// Mapping-service requests lost server-side (worker dropped them).
    ServeInternalErrors,
    /// Mapping-service cache waiters coalesced onto an in-flight leader
    /// (a subset of `ServeCacheHits`).
    ServeCacheCoalesced,
    /// Mapping-service requests slower than the slow-log threshold.
    ServeSlowRequests,
    /// Flight-recorder windows closed.
    FlightWindows,
    /// Flight-recorder windows dropped from the bounded ring.
    FlightWindowsDropped,
    /// Streaming sessions opened.
    SessionsOpened,
    /// Streaming sessions closed by the client.
    SessionsClosed,
    /// Streaming sessions evicted (idle timeout or capacity pressure).
    SessionsEvicted,
    /// Matrix deltas ingested across all streaming sessions.
    SessionDeltas,
    /// Remaps the drift judge triggered (threshold crossed, new mapping
    /// installed).
    RemapsTriggered,
    /// Remaps the control loop suppressed (drift below threshold, or
    /// inside the cooldown window).
    RemapsSuppressed,
    /// Remaps whose matching was warm-started on every level.
    WarmStartHits,
    /// Remaps where at least one level fell back to a cold solve.
    WarmStartFallbacks,
    /// Mapping-service event-loop iterations (one per `epoll_wait`
    /// return that found work or a wakeup).
    ServeLoopTicks,
    /// Mapping-service connections accepted by the readiness loop.
    ServeConnsAccepted,
    /// Windowed-engine epochs completed (each ends in a logical shard
    /// barrier where domains exchange coherence messages).
    ShardBarrierWaits,
    /// Cross-domain coherence messages delivered by the bounded-lag queue.
    MsgqDelivered,
}

/// All counters, in registry order.
pub const COUNTERS: [CounterId; 39] = [
    CounterId::Accesses,
    CounterId::TlbMisses,
    CounterId::DetectionSearches,
    CounterId::DetectionOverheadCycles,
    CounterId::SearchEntriesCompared,
    CounterId::MatrixIncrements,
    CounterId::Barriers,
    CounterId::Migrations,
    CounterId::Ticks,
    CounterId::SnapshotsTaken,
    CounterId::EventsDropped,
    CounterId::MapperRounds,
    CounterId::PhaseChanges,
    CounterId::ServeRequests,
    CounterId::ServeOverloaded,
    CounterId::ServeTimeouts,
    CounterId::ServeCacheHits,
    CounterId::ServeCacheMisses,
    CounterId::ServeMapRequests,
    CounterId::ServeBadFrames,
    CounterId::ServeBadRequests,
    CounterId::ServeShuttingDown,
    CounterId::ServeInternalErrors,
    CounterId::ServeCacheCoalesced,
    CounterId::ServeSlowRequests,
    CounterId::FlightWindows,
    CounterId::FlightWindowsDropped,
    CounterId::SessionsOpened,
    CounterId::SessionsClosed,
    CounterId::SessionsEvicted,
    CounterId::SessionDeltas,
    CounterId::RemapsTriggered,
    CounterId::RemapsSuppressed,
    CounterId::WarmStartHits,
    CounterId::WarmStartFallbacks,
    CounterId::ServeLoopTicks,
    CounterId::ServeConnsAccepted,
    CounterId::ShardBarrierWaits,
    CounterId::MsgqDelivered,
];

impl CounterId {
    /// Stable schema name.
    pub fn as_str(self) -> &'static str {
        match self {
            CounterId::Accesses => "accesses",
            CounterId::TlbMisses => "tlb_misses",
            CounterId::DetectionSearches => "detection_searches",
            CounterId::DetectionOverheadCycles => "detection_overhead_cycles",
            CounterId::SearchEntriesCompared => "search_entries_compared",
            CounterId::MatrixIncrements => "matrix_increments",
            CounterId::Barriers => "barriers",
            CounterId::Migrations => "migrations",
            CounterId::Ticks => "ticks",
            CounterId::SnapshotsTaken => "snapshots_taken",
            CounterId::EventsDropped => "events_dropped",
            CounterId::MapperRounds => "mapper_rounds",
            CounterId::PhaseChanges => "phase_changes",
            CounterId::ServeRequests => "serve_requests",
            CounterId::ServeOverloaded => "serve_overloaded",
            CounterId::ServeTimeouts => "serve_timeouts",
            CounterId::ServeCacheHits => "serve_cache_hits",
            CounterId::ServeCacheMisses => "serve_cache_misses",
            CounterId::ServeMapRequests => "serve_map_requests",
            CounterId::ServeBadFrames => "serve_bad_frames",
            CounterId::ServeBadRequests => "serve_bad_requests",
            CounterId::ServeShuttingDown => "serve_shutting_down",
            CounterId::ServeInternalErrors => "serve_internal_errors",
            CounterId::ServeCacheCoalesced => "serve_cache_coalesced",
            CounterId::ServeSlowRequests => "serve_slow_requests",
            CounterId::FlightWindows => "flight_windows",
            CounterId::FlightWindowsDropped => "flight_windows_dropped",
            CounterId::SessionsOpened => "sessions_opened",
            CounterId::SessionsClosed => "sessions_closed",
            CounterId::SessionsEvicted => "sessions_evicted",
            CounterId::SessionDeltas => "session_deltas",
            CounterId::RemapsTriggered => "remaps_triggered",
            CounterId::RemapsSuppressed => "remaps_suppressed",
            CounterId::WarmStartHits => "warm_start_hits",
            CounterId::WarmStartFallbacks => "warm_start_fallbacks",
            CounterId::ServeLoopTicks => "serve_loop_ticks",
            CounterId::ServeConnsAccepted => "serve_conns_accepted",
            CounterId::ShardBarrierWaits => "shard_barrier_waits",
            CounterId::MsgqDelivered => "msgq_delivered",
        }
    }
}

/// Histogram identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Cycles charged per detection search.
    DetectionSearchCycles,
    /// Cycles between consecutive TLB misses (machine-wide).
    TlbMissInterArrival,
    /// Per-increment amount added to a matrix cell.
    MatrixIncrementAmount,
    /// Matched-pair weight captured per hierarchical-mapper level.
    MapperLevelWeight,
    /// Mapping-service request latency in host microseconds (frame
    /// received to response ready).
    ServeRequestLatencyUs,
    /// Work-queue depth observed at each mapping-service enqueue.
    ServeQueueDepth,
    /// Streaming-session remap latency in host microseconds (drift
    /// decision to new mapping installed).
    ServeRemapLatencyUs,
    /// Frames decoded together per mapping-service event-loop tick (the
    /// batch the shared resident state is evaluated against).
    ServeBatchSize,
}

/// All histograms, in registry order.
pub const HISTS: [HistId; 8] = [
    HistId::DetectionSearchCycles,
    HistId::TlbMissInterArrival,
    HistId::MatrixIncrementAmount,
    HistId::MapperLevelWeight,
    HistId::ServeRequestLatencyUs,
    HistId::ServeQueueDepth,
    HistId::ServeRemapLatencyUs,
    HistId::ServeBatchSize,
];

impl HistId {
    /// Stable schema name.
    pub fn as_str(self) -> &'static str {
        match self {
            HistId::DetectionSearchCycles => "detection_search_cycles",
            HistId::TlbMissInterArrival => "tlb_miss_inter_arrival_cycles",
            HistId::MatrixIncrementAmount => "matrix_increment_amount",
            HistId::MapperLevelWeight => "mapper_level_weight",
            HistId::ServeRequestLatencyUs => "serve_request_latency_us",
            HistId::ServeQueueDepth => "serve_queue_depth",
            HistId::ServeRemapLatencyUs => "serve_remap_latency_us",
            HistId::ServeBatchSize => "serve_batch_size",
        }
    }
}

/// Number of log₂ buckets: bucket 0 holds exactly 0, bucket `k` (k ≥ 1)
/// holds values in `[2^(k-1), 2^k)`; bucket 64 holds `[2^63, u64::MAX]`.
pub const N_BUCKETS: usize = 65;

/// The log₂ bucket a value falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Lower bound (inclusive) of bucket `idx`.
pub fn bucket_lo(idx: usize) -> u64 {
    match idx {
        0 => 0,
        k => 1u64 << (k - 1),
    }
}

/// A lock-free log₂ histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Occupancy of bucket `idx`.
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets[idx].load(Ordering::Relaxed)
    }

    /// JSON export: only non-empty buckets, each as
    /// `{"lo":2^(k-1),"count":n}`.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = (0..N_BUCKETS)
            .filter(|&k| self.bucket(k) > 0)
            .map(|k| {
                Json::obj(vec![
                    ("lo", Json::U64(bucket_lo(k))),
                    ("count", Json::U64(self.bucket(k))),
                ])
            })
            .collect();
        Json::obj(vec![
            ("count", Json::U64(self.count())),
            ("sum", Json::U64(self.sum())),
            ("min", self.min().map_or(Json::Null, Json::U64)),
            ("max", self.max().map_or(Json::Null, Json::U64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every power of two starts a new bucket at its own lower bound.
        for k in 1..64 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1);
            assert_eq!(bucket_lo(k + 1), v);
            assert_eq!(bucket_index(v - 1), k, "value {v}-1");
        }
    }

    #[test]
    fn histogram_tracks_stats() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        for v in [0, 1, 5, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.bucket(bucket_index(5)), 2);
        assert_eq!(h.bucket(bucket_index(0)), 1);
        assert!((h.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_json_only_lists_occupied_buckets() {
        let h = Histogram::default();
        h.observe(3);
        h.observe(3);
        h.observe(100);
        let j = h.to_json();
        let buckets = j.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("lo").unwrap().as_u64(), Some(2));
        assert_eq!(buckets[0].get("count").unwrap().as_u64(), Some(2));
        assert_eq!(buckets[1].get("lo").unwrap().as_u64(), Some(64));
        assert_eq!(j.get("min").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn bucket_round_trip_at_extremes() {
        // u64::MAX lands in the last bucket, whose lower bound maps back
        // into the same bucket — the round-trip property at the top edge.
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_lo(N_BUCKETS - 1), 1u64 << 63);
        assert_eq!(bucket_index(bucket_lo(N_BUCKETS - 1)), N_BUCKETS - 1);
        // And at the bottom edge: bucket 0 holds exactly 0.
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_index(bucket_lo(0)), 0);
        // Every bucket's lower bound maps back into that bucket.
        for k in 0..N_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(k)), k, "bucket {k}");
        }
    }

    #[test]
    fn observe_zero_and_max_are_tracked() {
        let h = Histogram::default();
        h.observe(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.bucket(0), 1);
        h.observe(u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket(N_BUCKETS - 1), 1);
        // JSON keeps both extreme buckets.
        let j = h.to_json();
        let buckets = j.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("lo").unwrap().as_u64(), Some(0));
        assert_eq!(buckets[1].get("lo").unwrap().as_u64(), Some(1u64 << 63));
    }

    #[test]
    fn empty_histogram_stats_are_well_defined() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let j = h.to_json();
        assert_eq!(j.get("min").unwrap(), &Json::Null);
        assert_eq!(j.get("max").unwrap(), &Json::Null);
        assert!(j.get("buckets").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn names_are_distinct() {
        let mut counter_names: Vec<_> = COUNTERS.iter().map(|c| c.as_str()).collect();
        counter_names.sort_unstable();
        counter_names.dedup();
        assert_eq!(counter_names.len(), COUNTERS.len());
        let mut hist_names: Vec<_> = HISTS.iter().map(|h| h.as_str()).collect();
        hist_names.sort_unstable();
        hist_names.dedup();
        assert_eq!(hist_names.len(), HISTS.len());
        // The acceptance floor: at least 8 distinct series in the registry.
        assert!(COUNTERS.len() + HISTS.len() >= 8);
    }
}
