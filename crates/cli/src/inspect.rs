//! `tlbmap inspect` — the flight-recorder run explorer.
//!
//! Consumes a recorded metrics document (schema 3, with a `flight`
//! section) and renders the run's *phase structure*: a phase timeline
//! with drift sparklines, a per-phase communication heatmap, per-phase
//! mapping quality (what the mapper would do with each phase's matrix),
//! and per-phase cycle attribution. Optional exports: a self-contained
//! HTML report with SVG heatmaps (`--html-out`) and a
//! speedscope-importable profile (`--speedscope-out`).
//!
//! All renderers are string-returning and derive everything from the
//! document, so identical inputs produce byte-identical reports — the
//! determinism tests rely on that.

use crate::opts::Options;
use tlbmap_bench::{bar, sparkline, Table};
use tlbmap_core::CommMatrix;
use tlbmap_mapping::{mapping_cost, normalized_mapping_quality, HierarchicalMapper, Mapping};
use tlbmap_obs::Json;
use tlbmap_prof::{FlightReport, PhaseSummary};
use tlbmap_sim::Topology;

/// Width of the share bars in attribution tables.
const BAR_WIDTH: usize = 20;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `tlbmap inspect --from <metrics.json> [--html-out F] [--speedscope-out F]`
pub fn inspect(o: Options) -> Result<(), String> {
    let path = o
        .from
        .as_ref()
        .ok_or_else(|| "inspect needs --from <metrics.json>".to_string())?;
    let doc = load(path)?;
    print!("{}", inspect_to_string(&doc)?);
    if let Some(out) = &o.html_out {
        std::fs::write(out, html_report_string(&doc)?).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("# html report written to {out}");
    }
    if let Some(out) = &o.speedscope_out {
        std::fs::write(out, speedscope_string(&doc)?).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("# speedscope profile written to {out}");
    }
    Ok(())
}

/// The scaling-study topology matching a thread count, if any — the
/// metrics document does not record the machine, so per-phase mapping
/// quality is only derivable for the four known machine sizes.
fn topology_for(n: usize) -> Option<Topology> {
    match n {
        4 => Some(Topology::new(1, 2, 2)),
        8 => Some(Topology::harpertown()),
        16 => Some(Topology::new(2, 4, 2)),
        32 => Some(Topology::new(4, 4, 2)),
        _ => None,
    }
}

fn fmt_similarity(ppm: Option<u64>) -> String {
    match ppm {
        Some(ppm) => format!("{:.3}", ppm as f64 / 1e6),
        None => "-".to_string(),
    }
}

/// Render the full text report. `Err` when the document has no usable
/// flight section (never recorded, or the recorder was disabled).
pub(crate) fn inspect_to_string(doc: &Json) -> Result<String, String> {
    let report = FlightReport::from_metrics(doc)?.ok_or_else(|| {
        "no flight section: record with --flight-window (or --snapshot-every) and --metrics-out"
            .to_string()
    })?;

    let mut out = String::new();
    out.push_str("== flight summary ==\n");
    let mut t = Table::new(vec!["stat", "value"]);
    t.row(vec!["threads".to_string(), report.n.to_string()]);
    t.row(vec![
        "window_cycles".to_string(),
        report.window_cycles.to_string(),
    ]);
    t.row(vec![
        "windows_closed".to_string(),
        report.windows_closed.to_string(),
    ]);
    t.row(vec![
        "windows_retained".to_string(),
        report.windows.len().to_string(),
    ]);
    t.row(vec![
        "windows_dropped".to_string(),
        report.windows_dropped.to_string(),
    ]);
    out.push_str(&t.render());
    // The stable machine-greppable phase count (CI asserts on this line).
    out.push_str(&format!("phases: {}\n", report.phase_count()));

    out.push('\n');
    out.push_str(&render_timeline(&report));
    for phase in &report.phases {
        out.push('\n');
        out.push_str(&render_phase(&report, phase));
    }
    Ok(out)
}

/// The phase-timeline section: one row per retained window, plus volume
/// and drift sparklines over the whole retained ring.
fn render_timeline(report: &FlightReport) -> String {
    let mut out = String::new();
    out.push_str("== phase timeline ==\n");
    if report.windows.is_empty() {
        out.push_str("no windows retained (run shorter than one window?)\n");
        return out;
    }
    let mut t = Table::new(vec![
        "window",
        "cycles",
        "phase",
        "similarity",
        "volume",
        "drift",
    ]);
    for w in &report.windows {
        let volume: u64 = w.cells.iter().sum();
        // The drift bar shows *divergence* (1 - similarity): taller bar,
        // bigger pattern shift.
        let drift = w.similarity_ppm.map_or(0.0, |ppm| 1.0 - (ppm as f64 / 1e6));
        t.row(vec![
            w.index.to_string(),
            format!("{}..{}", w.start_cycle, w.end_cycle),
            w.phase.to_string(),
            fmt_similarity(w.similarity_ppm),
            volume.to_string(),
            bar(drift, 1.0, BAR_WIDTH),
        ]);
    }
    out.push_str(&t.render());

    let volumes: Vec<f64> = report
        .windows
        .iter()
        .map(|w| w.cells.iter().sum::<u64>() as f64)
        .collect();
    let drifts: Vec<f64> = report
        .windows
        .iter()
        .map(|w| {
            w.similarity_ppm
                .map_or(f64::NAN, |ppm| 1.0 - (ppm as f64 / 1e6))
        })
        .collect();
    out.push_str(&format!("volume {}\n", sparkline(&volumes)));
    out.push_str(&format!("drift  {}\n", sparkline(&drifts)));

    let boundaries = report.boundary_cycles();
    if boundaries.is_empty() {
        out.push_str("phase boundaries: none\n");
    } else {
        let at: Vec<String> = boundaries.iter().map(|c| format!("cycle {c}")).collect();
        out.push_str(&format!("phase boundaries: {}\n", at.join(", ")));
    }
    out
}

/// One phase's section: heatmap, mapping quality, cycle attribution and
/// per-core activity.
fn render_phase(report: &FlightReport, phase: &PhaseSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== phase {} (cycles {}..{}, {} windows, volume {}) ==\n",
        phase.phase, phase.start_cycle, phase.end_cycle, phase.windows, phase.volume
    ));
    let matrix = phase.matrix(report.n);
    out.push_str(&matrix.heatmap());

    if let Some(topo) = topology_for(report.n) {
        if phase.volume > 0 {
            let identity = Mapping::identity(report.n);
            let mapped = HierarchicalMapper::new().map(&matrix, &topo);
            let before = mapping_cost(&matrix, &identity, &topo);
            let after = mapping_cost(&matrix, &mapped, &topo);
            let mut t = Table::new(vec!["mapping", "cost", "quality"]);
            t.row(vec![
                "identity".to_string(),
                before.to_string(),
                format!(
                    "{:.4}",
                    normalized_mapping_quality(&matrix, &identity, &topo)
                ),
            ]);
            t.row(vec![
                "hierarchical".to_string(),
                after.to_string(),
                format!("{:.4}", normalized_mapping_quality(&matrix, &mapped, &topo)),
            ]);
            out.push_str(&t.render());
            let saved = 100.0 * (before.saturating_sub(after)) as f64 / (before.max(1)) as f64;
            out.push_str(&format!("mapping gain over identity: {saved:.1}%\n"));
        }
    }

    if !phase.profile.is_empty() {
        let total: u64 = phase.profile.iter().map(|c| c.exclusive_cycles).sum();
        let mut t = Table::new(vec!["component", "calls", "exclusive", "share", "trend"]);
        for c in &phase.profile {
            let share = c.exclusive_cycles as f64 / total.max(1) as f64;
            t.row(vec![
                c.component.clone(),
                c.calls.to_string(),
                c.exclusive_cycles.to_string(),
                format!("{:.1}%", 100.0 * share),
                bar(share, 1.0, BAR_WIDTH),
            ]);
        }
        out.push_str(&t.render());
    }

    if phase.core_activity.iter().any(|&c| c > 0) {
        let activity: Vec<f64> = phase.core_activity.iter().map(|&c| c as f64).collect();
        out.push_str(&format!("core activity {}\n", sparkline(&activity)));
    }
    out
}

// ---------------------------------------------------------------------
// HTML report
// ---------------------------------------------------------------------

/// Map a normalized cell intensity to a CSS color (white → dark blue).
fn heat_color(v: f64) -> String {
    let v = v.clamp(0.0, 1.0);
    let r = (255.0 - 205.0 * v) as u8;
    let g = (255.0 - 175.0 * v) as u8;
    let b = (255.0 - 85.0 * v) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// An SVG heatmap of a communication matrix (self-contained, no scripts).
fn svg_heatmap(matrix: &CommMatrix) -> String {
    const CELL: usize = 16;
    let n = matrix.num_threads();
    let norm = matrix.normalized();
    let size = n * CELL;
    let mut svg = format!(
        "<svg width=\"{size}\" height=\"{size}\" viewBox=\"0 0 {size} {size}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    for i in 0..n {
        for j in 0..n {
            let v = norm[i * n + j];
            svg.push_str(&format!(
                "<rect x=\"{}\" y=\"{}\" width=\"{CELL}\" height=\"{CELL}\" fill=\"{}\">\
                 <title>t{j} ↔ t{i}: {}</title></rect>",
                j * CELL,
                i * CELL,
                heat_color(v),
                matrix.get(i, j),
            ));
        }
    }
    svg.push_str("</svg>");
    svg
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// The self-contained HTML report (phase timeline + SVG heatmaps +
/// per-phase attribution). No external assets, no scripts.
pub(crate) fn html_report_string(doc: &Json) -> Result<String, String> {
    let report = FlightReport::from_metrics(doc)?
        .ok_or_else(|| "no flight section in this document".to_string())?;
    let mut html = String::new();
    html.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>tlbmap flight report</title><style>\
         body{font-family:sans-serif;margin:2em;max-width:60em}\
         table{border-collapse:collapse;margin:0.5em 0}\
         td,th{border:1px solid #ccc;padding:0.2em 0.6em;text-align:right}\
         th{background:#eee}td:first-child,th:first-child{text-align:left}\
         .phase{margin-top:2em;border-top:2px solid #335;padding-top:0.5em}\
         </style></head><body>\n<h1>tlbmap flight report</h1>\n",
    );
    html.push_str(&format!(
        "<p>{} threads, window {} cycles, {} windows closed ({} retained, {} dropped), \
         <strong>{} phases</strong>.</p>\n",
        report.n,
        report.window_cycles,
        report.windows_closed,
        report.windows.len(),
        report.windows_dropped,
        report.phase_count()
    ));

    html.push_str(
        "<h2>Phase timeline</h2>\n<table><tr><th>window</th><th>cycles</th>\
                   <th>phase</th><th>similarity</th><th>volume</th></tr>\n",
    );
    for w in &report.windows {
        let volume: u64 = w.cells.iter().sum();
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}..{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            w.index,
            w.start_cycle,
            w.end_cycle,
            w.phase,
            fmt_similarity(w.similarity_ppm),
            volume
        ));
    }
    html.push_str("</table>\n");

    for phase in &report.phases {
        html.push_str(&format!(
            "<div class=\"phase\"><h2>Phase {}</h2>\
             <p>cycles {}..{}, {} windows, volume {}</p>\n",
            phase.phase, phase.start_cycle, phase.end_cycle, phase.windows, phase.volume
        ));
        html.push_str(&svg_heatmap(&phase.matrix(report.n)));
        if !phase.profile.is_empty() {
            html.push_str(
                "<table><tr><th>component</th><th>calls</th><th>exclusive cycles</th></tr>\n",
            );
            for c in &phase.profile {
                html.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    html_escape(&c.component),
                    c.calls,
                    c.exclusive_cycles
                ));
            }
            html.push_str("</table>\n");
        }
        html.push_str("</div>\n");
    }
    html.push_str("</body></html>\n");
    Ok(html)
}

// ---------------------------------------------------------------------
// Speedscope export
// ---------------------------------------------------------------------

/// One speedscope "sampled" profile from collapsed `(stack, weight)`
/// entries, interning frames into `frames`.
fn speedscope_profile(name: &str, entries: &[(String, u64)], frames: &mut Vec<String>) -> Json {
    let mut samples: Vec<Json> = Vec::new();
    let mut weights: Vec<Json> = Vec::new();
    let mut total = 0u64;
    for (stack, weight) in entries {
        if *weight == 0 {
            continue;
        }
        let indices: Vec<Json> = stack
            .split(';')
            .map(|frame| {
                let idx = match frames.iter().position(|f| f == frame) {
                    Some(idx) => idx,
                    None => {
                        frames.push(frame.to_string());
                        frames.len() - 1
                    }
                };
                Json::U64(idx as u64)
            })
            .collect();
        samples.push(Json::Arr(indices));
        weights.push(Json::U64(*weight));
        total += weight;
    }
    Json::obj(vec![
        ("type", Json::Str("sampled".into())),
        ("name", Json::Str(name.into())),
        ("unit", Json::Str("none".into())),
        ("startValue", Json::U64(0)),
        ("endValue", Json::U64(total)),
        ("samples", Json::Arr(samples)),
        ("weights", Json::Arr(weights)),
    ])
}

/// A speedscope file: the whole-run collapsed profile, plus one profile
/// per phase when the flight recorder was on. Importable at
/// <https://www.speedscope.app> (or `speedscope <file>`).
pub(crate) fn speedscope_string(doc: &Json) -> Result<String, String> {
    let items = doc
        .get("profile")
        .and_then(Json::as_array)
        .ok_or("no `profile` section: record with --metrics-out (schema >= 2)")?;
    let run_entries: Vec<(String, u64)> = items
        .iter()
        .filter_map(|i| {
            let path = i.get("component").and_then(Json::as_str)?;
            let excl = i.get("exclusive_cycles").and_then(Json::as_u64)?;
            Some((path.to_string(), excl))
        })
        .collect();

    let mut frames: Vec<String> = Vec::new();
    let mut profiles = vec![speedscope_profile("run", &run_entries, &mut frames)];
    if let Some(report) = FlightReport::from_metrics(doc)? {
        for phase in &report.phases {
            let entries: Vec<(String, u64)> = phase
                .profile
                .iter()
                .map(|c| (c.component.clone(), c.exclusive_cycles))
                .collect();
            profiles.push(speedscope_profile(
                &format!("phase {}", phase.phase),
                &entries,
                &mut frames,
            ));
        }
    }

    let frame_objs: Vec<Json> = frames
        .into_iter()
        .map(|name| Json::obj(vec![("name", Json::Str(name))]))
        .collect();
    let file = Json::obj(vec![
        (
            "$schema",
            Json::Str("https://www.speedscope.app/file-format-schema.json".into()),
        ),
        ("shared", Json::obj(vec![("frames", Json::Arr(frame_objs))])),
        ("profiles", Json::Arr(profiles)),
        ("exporter", Json::Str("tlbmap inspect".into())),
    ]);
    let mut text = file.render();
    text.push('\n');
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands;
    use crate::opts::Options;

    fn opts(words: &[&str]) -> Options {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tlbmap_cli_inspect_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    /// A recorded two-phase run: the `phased` synthetic workload under a
    /// dense sampling threshold, with the flight window sized so each
    /// phase spans several windows.
    fn phased_run(name: &str) -> String {
        let path = tmp(name);
        let mut o = opts(&["phased", "--scale", "test", "--sm-threshold", "1"]);
        o.metrics_out = Some(path.clone());
        o.snapshot_every = Some(2_000);
        commands::detect(o).unwrap();
        path
    }

    #[test]
    fn inspect_finds_the_two_phase_boundary_within_one_window() {
        // Satellite: the synthetic two-phase workload has a known
        // mid-run communication shift; the flight recorder must detect
        // exactly one phase change, within one window of the true
        // boundary (the barrier between the two iteration halves).
        let doc = load(&phased_run("phased_metrics.json")).unwrap();
        let report = tlbmap_prof::FlightReport::from_metrics(&doc)
            .unwrap()
            .expect("flight recorded");
        assert_eq!(report.phase_count(), 2, "exactly one phase change");
        let boundaries = report.boundary_cycles();
        assert_eq!(boundaries.len(), 1);

        // The true shift is the barrier where the partner offset flips
        // from 1 to n/2 — the instant distant-pair traffic first becomes
        // possible. The detected boundary must be within one window of
        // the first window that carries any distant-pair cell.
        let n = report.n;
        let distant =
            |w: &tlbmap_prof::PhaseWindow| (0..n).any(|t| w.cells[t * n + (t + n / 2) % n] > 0);
        let first_distant = report
            .windows
            .iter()
            .find(|w| distant(w))
            .expect("phase-B traffic appears in some window");
        let detected = boundaries[0];
        assert!(
            detected.abs_diff(first_distant.start_cycle) <= report.window_cycles,
            "boundary {detected} not within one window ({}) of the first \
             distant-pair window at {}",
            report.window_cycles,
            first_distant.start_cycle
        );
        // And no window before it was attributed to phase 1.
        for w in &report.windows {
            if w.start_cycle < first_distant.start_cycle {
                assert_eq!(w.phase, 0, "window {} misattributed", w.index);
            }
        }

        // Both phases carry traffic and distinct patterns: phase 0 is
        // neighbor-ring (0↔1 hot), phase 1 is distant pairs (0↔n/2 hot).
        let p0 = report.phases[0].matrix(n);
        let p1 = report.phases[1].matrix(n);
        assert!(p0.get(0, 1) > 0, "phase 0 has neighbor traffic");
        assert!(p1.get(0, n / 2) > 0, "phase 1 has distant-pair traffic");

        let text = inspect_to_string(&doc).unwrap();
        assert!(text.contains("phases: 2"), "{text}");
        assert!(text.contains("== phase timeline =="), "{text}");
        assert!(text.contains("== phase 0 "), "{text}");
        assert!(text.contains("== phase 1 "), "{text}");
        assert!(text.contains("phase boundaries: cycle"), "{text}");
        assert!(text.contains("mapping gain over identity"), "{text}");
        assert!(text.contains("drift"), "{text}");
    }

    #[test]
    fn inspect_report_is_byte_identical_across_runs() {
        // Satellite: determinism. Two identical seeded runs must render
        // byte-identical inspect reports (text, HTML, and speedscope).
        let a = load(&phased_run("phased_det_a.json")).unwrap();
        let b = load(&phased_run("phased_det_b.json")).unwrap();
        assert_eq!(
            inspect_to_string(&a).unwrap(),
            inspect_to_string(&b).unwrap()
        );
        assert_eq!(
            html_report_string(&a).unwrap(),
            html_report_string(&b).unwrap()
        );
        assert_eq!(
            speedscope_string(&a).unwrap(),
            speedscope_string(&b).unwrap()
        );
    }

    #[test]
    fn inspect_writes_html_and_speedscope_artifacts() {
        let metrics = phased_run("phased_artifacts.json");
        let html = tmp("report.html");
        let speedscope = tmp("profile.speedscope.json");
        let mut o = opts(&[]);
        o.from = Some(metrics);
        o.html_out = Some(html.clone());
        o.speedscope_out = Some(speedscope.clone());
        inspect(o).unwrap();

        let html_text = std::fs::read_to_string(&html).unwrap();
        assert!(html_text.starts_with("<!DOCTYPE html>"));
        assert!(html_text.contains("<svg"), "SVG heatmaps inline");
        assert!(html_text.contains("Phase 1"), "per-phase sections");

        let ss = Json::parse(&std::fs::read_to_string(&speedscope).unwrap()).unwrap();
        assert!(ss
            .get("$schema")
            .and_then(Json::as_str)
            .unwrap()
            .contains("speedscope"));
        let profiles = ss.get("profiles").and_then(Json::as_array).unwrap();
        assert_eq!(profiles.len(), 3, "run + two phases");
        // Weights within each profile sum to its endValue.
        for p in profiles {
            let end = p.get("endValue").and_then(Json::as_u64).unwrap();
            let sum: u64 = p
                .get("weights")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .filter_map(Json::as_u64)
                .sum();
            assert_eq!(sum, end);
        }
    }

    #[test]
    fn inspect_without_flight_section_is_a_display_error() {
        let doc = Json::parse(r#"{"schema":2,"counters":{}}"#).unwrap();
        let err = inspect_to_string(&doc).unwrap_err();
        assert!(err.contains("flight"), "{err}");
        // The command wrapper needs --from.
        assert!(inspect(opts(&[])).is_err());
    }

    #[test]
    fn heat_colors_span_white_to_dark() {
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_eq!(heat_color(1.0), "#3250aa");
        // Out-of-range intensities clamp instead of wrapping.
        assert_eq!(heat_color(-1.0), "#ffffff");
        assert_eq!(heat_color(2.0), "#3250aa");
    }
}
