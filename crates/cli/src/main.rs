//! `tlbmap` — command-line front end for the TLB-based communication
//! detection and thread-mapping library.
//!
//! ```text
//! tlbmap topo                          show the modelled machine
//! tlbmap detect <APP> [opts]           detect and print a communication matrix
//! tlbmap map <APP> [opts]              detect, map, print thread->core
//! tlbmap simulate <APP> [opts]         run under a mapping, print hardware events
//! tlbmap report <APP> [opts]           full pipeline: detect, map, before/after
//! tlbmap analyze --from <metrics.json> accuracy timeline + cycle profile of a run
//! tlbmap inspect --from <metrics.json> flight-recorder phase explorer of a run
//! tlbmap diff <a.json> <b.json>        compare two runs, optionally gate regressions
//! tlbmap bench <APP> [opts]            timed run, write a BENCH_<name>.json record
//! tlbmap serve [opts]                  run the mapping service over TCP
//! tlbmap client <action> [opts]        one request against a running service
//! tlbmap loadgen [opts]                drive a service with N connections x M requests
//! tlbmap top [opts]                    live dashboard over a running service
//! ```
//!
//! `<APP>` is one of BT CG EP FT IS LU MG SP UA, or a synthetic pattern:
//! ring, pairs, pipeline, uniform, private.

mod analysis;
mod commands;
mod inspect;
mod opts;
mod serve_cmd;
mod top;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 {
        eprintln!("{}", opts::USAGE);
        return ExitCode::FAILURE;
    }
    let result = match args[1].as_str() {
        "topo" => commands::topo(),
        "detect" => opts::Options::parse(&args[2..]).and_then(commands::detect),
        "map" => opts::Options::parse(&args[2..]).and_then(commands::map),
        "simulate" => opts::Options::parse(&args[2..]).and_then(commands::simulate_cmd),
        "report" => opts::Options::parse(&args[2..]).and_then(commands::report),
        "stats" => opts::Options::parse(&args[2..]).and_then(commands::stats),
        "export" => opts::Options::parse(&args[2..]).and_then(commands::export),
        "analyze" => opts::Options::parse(&args[2..]).and_then(analysis::analyze),
        "inspect" => opts::Options::parse(&args[2..]).and_then(inspect::inspect),
        "diff" => opts::DiffOptions::parse(&args[2..]).and_then(analysis::diff),
        "bench" => opts::Options::parse(&args[2..]).and_then(analysis::bench),
        "serve" => serve_cmd::ServeOptions::parse(&args[2..]).and_then(serve_cmd::serve),
        "client" => serve_cmd::ClientOptions::parse(&args[2..], true).and_then(serve_cmd::client),
        "loadgen" => {
            serve_cmd::ClientOptions::parse(&args[2..], false).and_then(serve_cmd::loadgen)
        }
        "top" => top::TopOptions::parse(&args[2..]).and_then(top::top),
        "help" | "--help" | "-h" => {
            println!("{}", opts::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", opts::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
