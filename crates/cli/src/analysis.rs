//! `tlbmap analyze`, `tlbmap diff`, and `tlbmap bench` — the run-analysis
//! subcommands built on [`tlbmap_prof`].
//!
//! `analyze` pretty-prints the accuracy timeline and cycle profile out of
//! a recorded metrics document (or a `BENCH_*.json` record). `diff`
//! compares two documents and optionally gates on regressions. `bench`
//! runs a seeded workload under full observation, times it on the host
//! clock, and writes a machine-readable benchmark record.
//!
//! The renderers are string-returning so tests can assert byte-identical
//! output across identical seeded runs.

use crate::opts::{DiffOptions, Options};
use std::time::Instant;
use tlbmap_bench::{bar, Table};
use tlbmap_core::{SmConfig, SmDetector};
use tlbmap_mapping::Mapping;
use tlbmap_obs::{Json, ObsConfig, ProfId, Recorder, COUNTERS, PROF_NODES};
use tlbmap_prof::{diff_docs, BenchRecord, DiffReport, Timeline};
use tlbmap_sim::{simulate_observed_with_plan, SimConfig};

/// Width of the sparkline bars in `analyze` tables.
const BAR_WIDTH: usize = 20;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `tlbmap analyze --from <metrics.json | BENCH_*.json>`
pub fn analyze(o: Options) -> Result<(), String> {
    let path = o
        .from
        .as_ref()
        .ok_or_else(|| "analyze needs --from <metrics.json>".to_string())?;
    let doc = load(path)?;
    print!("{}", analyze_to_string(&doc)?);
    Ok(())
}

/// Render the analysis of a run document. Public within the crate so the
/// determinism tests can compare outputs without capturing stdout.
pub(crate) fn analyze_to_string(doc: &Json) -> Result<String, String> {
    if doc.get("kind").and_then(Json::as_str) == Some("bench") {
        let record = BenchRecord::from_json(doc)?;
        return Ok(render_bench(&record));
    }
    let counters = doc
        .get("counters")
        .ok_or("not a run document: no `counters` object (and not a bench record)")?;

    let mut out = String::new();
    out.push_str("== run summary ==\n");
    let mut t = Table::new(vec!["counter", "value"]);
    for c in COUNTERS {
        if let Some(v) = counters.get(c.as_str()).and_then(Json::as_u64) {
            if v > 0 {
                t.row(vec![c.as_str().to_string(), v.to_string()]);
            }
        }
    }
    out.push_str(&t.render());

    out.push('\n');
    out.push_str(&render_timeline(doc)?);
    out.push('\n');
    out.push_str(&render_profile(doc));
    Ok(out)
}

/// The accuracy-timeline section of `analyze`.
fn render_timeline(doc: &Json) -> Result<String, String> {
    let mut out = String::new();
    out.push_str("== accuracy timeline ==\n");
    let Some(section) = doc.get("timeline") else {
        out.push_str("none recorded (run with --snapshot-every and --metrics-out)\n");
        return Ok(out);
    };
    let tl = Timeline::from_json(section)?;
    if tl.entries.is_empty() {
        out.push_str("empty (no snapshots, or ground truth unavailable)\n");
        return Ok(out);
    }
    let mut t = Table::new(vec![
        "window", "cycle", "barrier", "pearson", "cosine", "nmse", "w.cosine", "phase", "trend",
    ]);
    for e in &tl.entries {
        t.row(vec![
            e.index.to_string(),
            e.cycle.to_string(),
            e.barrier.to_string(),
            format!("{:.4}", e.cumulative.pearson),
            format!("{:.4}", e.cumulative.cosine),
            format!("{:.4}", e.cumulative.nmse),
            format!("{:.4}", e.windowed.cosine),
            if e.phase_boundary { "*" } else { "" }.to_string(),
            bar(e.cumulative.cosine, 1.0, BAR_WIDTH),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "cumulative/windowed scores vs ground truth; phase threshold {}\n",
        tl.phase_threshold
    ));
    let boundaries = tl.phase_boundaries();
    if boundaries.is_empty() {
        out.push_str("phase boundaries: none\n");
    } else {
        let at: Vec<String> = boundaries
            .iter()
            .map(|&i| {
                format!(
                    "window {} (cycle {})",
                    tl.entries[i].index, tl.entries[i].cycle
                )
            })
            .collect();
        out.push_str(&format!("phase boundaries: {}\n", at.join(", ")));
    }
    Ok(out)
}

/// The cycle-profile section of `analyze`.
fn render_profile(doc: &Json) -> String {
    let mut out = String::new();
    out.push_str("== cycle profile ==\n");
    let Some(items) = doc.get("profile").and_then(Json::as_array) else {
        out.push_str("none recorded (metrics schema < 2)\n");
        return out;
    };
    if items.is_empty() {
        out.push_str("empty (nothing charged)\n");
        return out;
    }
    let total: u64 = items
        .iter()
        .filter_map(|i| i.get("exclusive_cycles").and_then(Json::as_u64))
        .sum();
    let mut t = Table::new(vec![
        "component",
        "calls",
        "exclusive",
        "inclusive",
        "share",
        "trend",
    ]);
    for item in items {
        let path = item
            .get("component")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let calls = item.get("calls").and_then(Json::as_u64).unwrap_or(0);
        let excl = item
            .get("exclusive_cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let incl = item
            .get("inclusive_cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let share = excl as f64 / total.max(1) as f64;
        t.row(vec![
            path,
            calls.to_string(),
            excl.to_string(),
            incl.to_string(),
            format!("{:.1}%", 100.0 * share),
            bar(share, 1.0, BAR_WIDTH),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n== collapsed stacks (flamegraph.pl / speedscope) ==\n");
    for item in items {
        let excl = item
            .get("exclusive_cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if let Some(path) = item.get("component").and_then(Json::as_str) {
            out.push_str(&format!("{path} {excl}\n"));
        }
    }
    out
}

/// Render a benchmark record (the `analyze` view of a `BENCH_*.json`).
fn render_bench(r: &BenchRecord) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== bench record `{}` ({} @ {}, seed {}) ==\n",
        r.name, r.app, r.scale, r.seed
    ));
    let mut t = Table::new(vec!["stat", "value"]);
    t.row(vec!["events".to_string(), r.events.to_string()]);
    t.row(vec!["accesses".to_string(), r.accesses.to_string()]);
    t.row(vec!["tlb_misses".to_string(), r.tlb_misses.to_string()]);
    t.row(vec!["total_cycles".to_string(), r.total_cycles.to_string()]);
    t.row(vec!["wall_nanos".to_string(), r.wall_nanos.to_string()]);
    t.row(vec![
        "events_per_sec".to_string(),
        format!("{:.0}", r.events_per_sec),
    ]);
    t.row(vec![
        "misses_per_sec".to_string(),
        format!("{:.0}", r.misses_per_sec),
    ]);
    out.push_str(&t.render());
    out.push_str("\n== cycle shares ==\n");
    let mut t = Table::new(vec!["component", "share", "trend"]);
    for (path, share) in &r.cycle_shares {
        t.row(vec![
            path.clone(),
            format!("{:.1}%", 100.0 * share),
            bar(*share, 1.0, BAR_WIDTH),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// `tlbmap diff [--fail-above <pct>] <a.json> <b.json>`
///
/// Returns `Err` — a non-zero process exit — when the gate is armed and
/// any stat regressed beyond the threshold (or the schemas drifted).
pub fn diff(d: DiffOptions) -> Result<(), String> {
    let a = load(&d.baseline)?;
    let b = load(&d.candidate)?;
    let report = diff_docs(&a, &b, d.fail_above);
    print!("{}", diff_to_string(&report, &d.baseline, &d.candidate));
    let breaches = report.regressions().len();
    if breaches > 0 {
        return Err(format!(
            "{breaches} stat(s) regressed beyond {:.2}% (see table above)",
            d.fail_above.unwrap_or(0.0)
        ));
    }
    Ok(())
}

/// Render a diff report as an aligned table of changed stats.
pub(crate) fn diff_to_string(report: &DiffReport, a_name: &str, b_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("== diff: {a_name} -> {b_name} ==\n"));
    let changed = report.changed();
    if changed.is_empty() {
        out.push_str(&format!(
            "no differences ({} stats compared)\n",
            report.entries.len()
        ));
        return out;
    }
    let fmt = |v: Option<f64>| v.map_or_else(|| "missing".to_string(), |x| format!("{x}"));
    let mut t = Table::new(vec!["stat", "baseline", "candidate", "delta", "gate"]);
    for e in &changed {
        let delta = match e.delta_pct {
            Some(pct) => format!("{pct:+.2}%"),
            None if e.a.is_none() || e.b.is_none() => "schema drift".to_string(),
            None => "from zero".to_string(),
        };
        t.row(vec![
            e.key.clone(),
            fmt(e.a),
            fmt(e.b),
            delta,
            if e.regression { "BREACH" } else { "ok" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "{} stats compared, {} changed, {} regression(s)",
        report.entries.len(),
        changed.len(),
        report.regressions().len()
    ));
    match report.fail_above_pct {
        Some(pct) => out.push_str(&format!(" (gate: fail above {pct}%)\n")),
        None => out.push_str(" (no gate)\n"),
    }
    out
}

/// `tlbmap bench [APP] [--out BENCH_<name>.json]`
///
/// Runs the workload once under the SM detector with full observation,
/// times the simulation on the host clock, and writes a benchmark record.
/// The record's `workload`/`counters`/`cycle_shares` sections are
/// deterministic for a given seed; only the wall-clock stats vary.
pub fn bench(o: Options) -> Result<(), String> {
    let topo = o.topology();
    let n = topo.num_cores();
    let workload = o.workload()?;
    let mapping = Mapping::identity(n);
    let sim = SimConfig::paper_software_managed(&topo);
    let rec = Recorder::new(ObsConfig::new(n));
    let mut det = SmDetector::new(
        n,
        SmConfig {
            sample_threshold: o.sm_threshold,
        },
    )
    .with_recorder(rec.clone());

    let start = Instant::now();
    let stats = simulate_observed_with_plan(
        &sim,
        &topo,
        &workload.traces,
        &mapping,
        &mut det,
        &rec,
        o.exec_plan(),
    )?;
    let wall_nanos = (start.elapsed().as_nanos() as u64).max(1);

    let prof_total = rec.prof_total_cycles().max(1);
    let cycle_shares: Vec<(String, f64)> = PROF_NODES
        .iter()
        .filter(|&&id| rec.prof_calls(id) > 0 && !matches!(id, ProfId::Engine | ProfId::Mapper))
        .map(|&id| {
            (
                id.path(),
                rec.prof_exclusive_cycles(id) as f64 / prof_total as f64,
            )
        })
        .collect();

    let path = o
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", o.app));
    let name = std::path::Path::new(&path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| o.app.clone());
    let secs = wall_nanos as f64 / 1e9;
    let record = BenchRecord {
        name,
        app: o.app.clone(),
        scale: format!("{:?}", o.scale).to_lowercase(),
        seed: o.seed,
        events: workload.total_events() as u64,
        accesses: stats.accesses,
        tlb_misses: stats.tlb_misses(),
        total_cycles: stats.total_cycles,
        wall_nanos,
        events_per_sec: workload.total_events() as f64 / secs,
        misses_per_sec: stats.tlb_misses() as f64 / secs,
        cycle_shares,
    };

    let mut text = record.to_json().render();
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "# bench record written to {path}: {} events in {:.3} ms ({:.0} events/sec)",
        record.events,
        secs * 1e3,
        record.events_per_sec
    );
    print!("{}", render_bench(&record));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands;
    use crate::opts::Options;

    fn opts(words: &[&str]) -> Options {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tlbmap_cli_analysis_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Run `detect` with metrics + snapshots into `name`, return the path.
    fn recorded_run(name: &str) -> String {
        let path = tmp(name).to_string_lossy().into_owned();
        let mut o = opts(&["ring", "--scale", "test", "--sm-threshold", "1"]);
        o.metrics_out = Some(path.clone());
        o.snapshot_every = Some(2_000);
        commands::detect(o).unwrap();
        path
    }

    #[test]
    fn analyze_renders_timeline_and_profile() {
        let path = recorded_run("metrics_analyze.json");
        let doc = load(&path).unwrap();
        let text = analyze_to_string(&doc).unwrap();
        assert!(text.contains("== run summary =="), "{text}");
        assert!(text.contains("== accuracy timeline =="), "{text}");
        assert!(text.contains("pearson"), "{text}");
        assert!(text.contains("== cycle profile =="), "{text}");
        assert!(text.contains("engine;access;tlb"), "{text}");
        assert!(text.contains("== collapsed stacks"), "{text}");
        // The command wrapper needs --from.
        assert!(analyze(opts(&[])).is_err());
        let mut o = opts(&[]);
        o.from = Some(path);
        analyze(o).unwrap();
    }

    #[test]
    fn regenerated_metrics_match_committed_golden_byte_for_byte() {
        // The counters-unchanged invariant behind the owner directory and
        // the packed trace encoding: regenerating the analysis-gate
        // artifact (`detect ring --scale test --sm-threshold 1
        // --snapshot-every 2000`) must reproduce the committed
        // results/golden_metrics.json exactly — not merely within a diff
        // tolerance. Any drift in modeled snoops, invalidations, miss
        // taxonomy or cycle charging shows up here first.
        let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/golden_metrics.json");
        let committed = std::fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("{}: {e}", golden.display()));
        let fresh = std::fs::read_to_string(recorded_run("metrics_golden_check.json")).unwrap();
        assert_eq!(
            fresh, committed,
            "regenerated metrics drifted from results/golden_metrics.json — \
             a hot-path change altered modeled behavior"
        );
    }

    #[test]
    fn analyze_rejects_non_run_documents() {
        let doc = Json::parse(r#"{"hello":"world"}"#).unwrap();
        assert!(analyze_to_string(&doc).is_err());
    }

    #[test]
    fn identical_seeded_runs_are_byte_identical() {
        // Satellite: determinism. Two identical seeded runs must produce
        // byte-identical metrics documents, analyze output, and a clean
        // diff even at a 0% gate.
        let a = recorded_run("metrics_det_a.json");
        let b = recorded_run("metrics_det_b.json");
        let text_a = std::fs::read_to_string(&a).unwrap();
        let text_b = std::fs::read_to_string(&b).unwrap();
        assert_eq!(text_a, text_b, "metrics artifacts must be reproducible");

        let doc_a = load(&a).unwrap();
        let doc_b = load(&b).unwrap();
        assert_eq!(
            analyze_to_string(&doc_a).unwrap(),
            analyze_to_string(&doc_b).unwrap()
        );

        let report = diff_docs(&doc_a, &doc_b, Some(0.0));
        assert!(report.passed(), "identical runs must pass a 0% gate");
        let rendered = diff_to_string(&report, "a", "b");
        assert!(rendered.contains("no differences"), "{rendered}");
        // The command form agrees: exit success.
        diff(DiffOptions {
            baseline: a,
            candidate: b,
            fail_above: Some(0.0),
        })
        .unwrap();
    }

    #[test]
    fn diff_gate_exit_semantics() {
        let a = tmp("gate_a.json");
        let b = tmp("gate_b.json");
        std::fs::write(&a, r#"{"counters":{"tlb_misses":100}}"#).unwrap();
        std::fs::write(&b, r#"{"counters":{"tlb_misses":110}}"#).unwrap();
        let d = |fail_above| DiffOptions {
            baseline: a.to_string_lossy().into_owned(),
            candidate: b.to_string_lossy().into_owned(),
            fail_above,
        };
        // 10% more misses: breaches a 5% gate, passes a 20% gate,
        // and passes with no gate at all.
        assert!(diff(d(Some(5.0))).is_err());
        assert!(diff(d(Some(20.0))).is_ok());
        assert!(diff(d(None)).is_ok());
    }

    #[test]
    fn bench_writes_a_valid_record() {
        let path = tmp("BENCH_test.json").to_string_lossy().into_owned();
        let mut o = opts(&["ring", "--scale", "test", "--sm-threshold", "1"]);
        o.out = Some(path.clone());
        bench(o).unwrap();
        let record = BenchRecord::from_json(&load(&path).unwrap()).unwrap();
        assert_eq!(record.name, "BENCH_test");
        assert_eq!(record.app, "ring");
        assert_eq!(record.scale, "test");
        assert!(record.events > 0);
        assert!(record.total_cycles > 0);
        assert!(record.events_per_sec > 0.0);
        let share_sum: f64 = record.cycle_shares.iter().map(|(_, s)| s).sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "leaf shares must partition charged cycles, got {share_sum}"
        );
        // Analyze understands bench records too.
        let text = analyze_to_string(&load(&path).unwrap()).unwrap();
        assert!(text.contains("== bench record"), "{text}");
        assert!(text.contains("== cycle shares =="), "{text}");
        // The deterministic sections survive a re-run; only the
        // wall-clock stats may differ between the two records.
        let path2 = tmp("BENCH_test2.json").to_string_lossy().into_owned();
        let mut o2 = opts(&["ring", "--scale", "test", "--sm-threshold", "1"]);
        o2.out = Some(path2.clone());
        bench(o2).unwrap();
        let record2 = BenchRecord::from_json(&load(&path2).unwrap()).unwrap();
        assert_eq!(record.events, record2.events);
        assert_eq!(record.accesses, record2.accesses);
        assert_eq!(record.tlb_misses, record2.tlb_misses);
        assert_eq!(record.total_cycles, record2.total_cycles);
        assert_eq!(record.cycle_shares, record2.cycle_shares);
    }
}
