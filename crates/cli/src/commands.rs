//! Subcommand implementations.

use crate::opts::{Options, OutputFormat};
use tlbmap_core::{
    CommMatrix, GroundTruthConfig, GroundTruthDetector, HmConfig, HmDetector, SmConfig, SmDetector,
};
use tlbmap_mapping::matching::greedy_matching;
use tlbmap_mapping::{
    baselines, exhaustive_best_mapping, mapping_cost, HierarchicalMapper, Mapping,
    RecursiveBisectionMapper,
};
use tlbmap_obs::{Json, ObsConfig, Recorder, COUNTERS, HISTS};
use tlbmap_prof::{compute_timeline, Timeline, DEFAULT_PHASE_THRESHOLD};
use tlbmap_sim::{
    simulate_observed, simulate_observed_with_plan, simulate_with_plan, NoHooks, RunStats,
    SimConfig, Topology,
};

fn topology(o: &Options) -> Topology {
    o.topology()
}

/// A recorder sized for this run — enabled only when the options request
/// an artifact, so unobserved runs pay nothing.
fn recorder_for(o: &Options, n_threads: usize) -> Recorder {
    if o.observing() {
        Recorder::new(
            ObsConfig::new(n_threads)
                .with_snapshot_period(o.snapshot_every)
                .with_flight_window(o.effective_flight_window())
                .with_flight_capacity(o.flight_capacity),
        )
    } else {
        Recorder::disabled()
    }
}

/// The ground-truth communication matrix of the options' workload: a
/// separate unobserved run under the exact detector (every access, no
/// sampling, no simulated overhead).
fn ground_truth_matrix(o: &Options) -> Result<CommMatrix, String> {
    let topo = topology(o);
    let n = topo.num_cores();
    let workload = o.workload()?;
    let mapping = Mapping::identity(n);
    let sim = SimConfig::paper_software_managed(&topo);
    let mut det = GroundTruthDetector::new(n, GroundTruthConfig::default());
    simulate_observed(
        &sim,
        &topo,
        &workload.traces,
        &mapping,
        &mut det,
        &Recorder::disabled(),
    );
    Ok(det.matrix().clone())
}

/// Compute the accuracy timeline of a recorded run: each matrix snapshot
/// scored against a ground-truth run of the same workload. `None` when
/// nothing was recorded or no metrics artifact was requested (the
/// ground-truth run is not free).
fn accuracy_timeline(o: &Options, rec: &Recorder) -> Result<Option<Timeline>, String> {
    if o.metrics_out.is_none() || !rec.is_enabled() {
        return Ok(None);
    }
    let snaps = rec.snapshots();
    if snaps.is_empty() {
        return Ok(None);
    }
    let truth = ground_truth_matrix(o)?;
    Ok(Some(compute_timeline(
        &snaps,
        &truth,
        DEFAULT_PHASE_THRESHOLD,
    )))
}

/// Write every artifact the options asked for. `timeline` (when present)
/// is appended to the metrics document as its `timeline` section.
fn write_artifacts(o: &Options, rec: &Recorder, timeline: Option<&Timeline>) -> Result<(), String> {
    if !rec.is_enabled() {
        return Ok(());
    }
    if let Some(path) = &o.trace_out {
        let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        rec.write_jsonl(&mut f)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# trace written to {path}");
    }
    if let Some(path) = &o.chrome_out {
        let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        rec.write_chrome_trace(&mut f)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# chrome trace written to {path} (open in chrome://tracing)");
    }
    if let Some(path) = &o.metrics_out {
        let mut doc = rec.metrics_json();
        if let (Some(tl), Json::Obj(pairs)) = (timeline, &mut doc) {
            pairs.push(("timeline".to_string(), tl.to_json()));
        }
        let mut text = doc.render();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# metrics written to {path}");
    }
    Ok(())
}

/// `tlbmap topo`
pub fn topo() -> Result<(), String> {
    let t = Topology::harpertown();
    println!(
        "machine: {} chips x {} L2 groups x {} cores = {} cores (Harpertown-like, Figure 3)",
        t.chips,
        t.l2_per_chip,
        t.cores_per_l2,
        t.num_cores()
    );
    for chip in 0..t.chips {
        println!("chip {chip}:");
        for l2 in 0..t.l2_per_chip {
            let g = chip * t.l2_per_chip + l2;
            let first = g * t.cores_per_l2;
            let cores: Vec<String> = (first..first + t.cores_per_l2)
                .map(|c| format!("core {c}"))
                .collect();
            println!("  L2 {g}: [{}]", cores.join(", "));
        }
    }
    Ok(())
}

/// Detect a matrix with the mechanism named in the options, reporting
/// engine and detector events to `rec`.
fn detect_matrix(o: &Options, rec: &Recorder) -> Result<(CommMatrix, RunStats), String> {
    let topo = topology(o);
    let n = topo.num_cores();
    let workload = o.workload()?;
    let mapping = Mapping::identity(n);
    let plan = o.exec_plan();
    match o.mechanism.as_str() {
        "sm" => {
            let sim = SimConfig::paper_software_managed(&topo);
            let mut det = SmDetector::new(
                n,
                SmConfig {
                    sample_threshold: o.sm_threshold,
                },
            )
            .with_recorder(rec.clone());
            let stats = simulate_observed_with_plan(
                &sim,
                &topo,
                &workload.traces,
                &mapping,
                &mut det,
                rec,
                plan,
            )?;
            Ok((det.take_matrix(), stats))
        }
        "hm" => {
            let sim = SimConfig::paper_hardware_managed(&topo).with_tick_period(Some(o.hm_period));
            let mut det =
                HmDetector::new(n, HmConfig::scaled(o.hm_period)).with_recorder(rec.clone());
            let stats = simulate_observed_with_plan(
                &sim,
                &topo,
                &workload.traces,
                &mapping,
                &mut det,
                rec,
                plan,
            )?;
            Ok((det.take_matrix(), stats))
        }
        "gt" => {
            let sim = SimConfig::paper_software_managed(&topo);
            let mut det = GroundTruthDetector::new(n, GroundTruthConfig::default())
                .with_recorder(rec.clone());
            // The exact detector observes every access inline, which the
            // sharded engine cannot offer — the engine rejects that
            // combination with a pointer back to `--shards 1`.
            let stats = simulate_observed_with_plan(
                &sim,
                &topo,
                &workload.traces,
                &mapping,
                &mut det,
                rec,
                plan,
            )?;
            Ok((det.matrix().clone(), stats))
        }
        other => Err(format!("unknown mechanism `{other}` (sm|hm|gt)")),
    }
}

/// `tlbmap detect`
pub fn detect(o: Options) -> Result<(), String> {
    let rec = recorder_for(&o, topology(&o).num_cores());
    let (matrix, stats) = detect_matrix(&o, &rec)?;
    eprintln!(
        "# {} via {}: {} communication units, TLB miss rate {:.3}%, detection overhead {:.3}%",
        o.app,
        o.mechanism,
        matrix.total(),
        stats.tlb_miss_rate() * 100.0,
        stats.detection_overhead_fraction() * 100.0
    );
    match o.format {
        OutputFormat::Heatmap => print!("{}", matrix.heatmap()),
        OutputFormat::Csv => print!("{}", matrix.to_csv()),
        OutputFormat::Json => println!("{}", matrix.to_json().render()),
    }
    let tl = accuracy_timeline(&o, &rec)?;
    write_artifacts(&o, &rec, tl.as_ref())
}

fn build_mapping(
    o: &Options,
    matrix: &CommMatrix,
    topo: &Topology,
    rec: &Recorder,
) -> Result<Mapping, String> {
    match o.mapper.as_str() {
        "hierarchical" => Ok(HierarchicalMapper::new().map_observed(matrix, topo, rec)),
        "bisect" => Ok(RecursiveBisectionMapper::new().map(matrix, topo)),
        "exhaustive" => Ok(exhaustive_best_mapping(matrix, topo)),
        "greedy" => {
            let n = matrix.num_threads();
            let pairs = greedy_matching(n, &|i, j| matrix.get(i, j) as i64);
            let mut thread_to_core = vec![0usize; n];
            for (k, (a, b)) in pairs.iter().enumerate() {
                thread_to_core[*a] = 2 * k;
                thread_to_core[*b] = 2 * k + 1;
            }
            Ok(Mapping::new(thread_to_core))
        }
        other => Err(format!("unknown mapper `{other}`")),
    }
}

/// `tlbmap map`
pub fn map(o: Options) -> Result<(), String> {
    let topo = topology(&o);
    let rec = recorder_for(&o, topo.num_cores());
    let (matrix, _) = detect_matrix(&o, &rec)?;
    let mapping = build_mapping(&o, &matrix, &topo, &rec)?;
    println!("thread -> core: {:?}", mapping.as_slice());
    println!(
        "mapping cost {} (identity: {})",
        mapping_cost(&matrix, &mapping, &topo),
        mapping_cost(&matrix, &Mapping::identity(matrix.num_threads()), &topo)
    );
    let tl = accuracy_timeline(&o, &rec)?;
    write_artifacts(&o, &rec, tl.as_ref())
}

fn parse_mapping(o: &Options, topo: &Topology) -> Result<Mapping, String> {
    let n = topo.num_cores();
    if o.mapping == "identity" {
        Ok(Mapping::identity(n))
    } else if o.mapping == "scatter" {
        Ok(baselines::scatter(n, topo))
    } else if o.mapping == "auto" {
        // The preparatory detection run is not part of the observed
        // simulation; keep its events out of the artifacts.
        let (matrix, _) = detect_matrix(o, &Recorder::disabled())?;
        build_mapping(o, &matrix, topo, &Recorder::disabled())
    } else if let Some(seed) = o.mapping.strip_prefix("random=") {
        let seed: u64 = seed.parse().map_err(|e| format!("random seed: {e}"))?;
        Ok(baselines::random(n, topo, seed))
    } else {
        Err(format!(
            "unknown mapping `{}` (identity|scatter|random=<seed>|auto)",
            o.mapping
        ))
    }
}

fn print_stats(stats: &RunStats) {
    println!("cycles:             {}", stats.total_cycles);
    println!("simulated seconds:  {:.6}", stats.seconds());
    println!("accesses:           {}", stats.accesses);
    println!("TLB miss rate:      {:.4}%", stats.tlb_miss_rate() * 100.0);
    println!("L2 misses:          {}", stats.cache.l2_misses);
    println!("  cold:             {}", stats.cache.l2_cold_misses);
    println!("  capacity:         {}", stats.cache.l2_capacity_misses);
    println!("  coherence:        {}", stats.cache.l2_coherence_misses);
    println!("invalidations:      {}", stats.cache.invalidations);
    println!("snoop transactions: {}", stats.cache.snoop_transactions);
    println!("  intra-chip:       {}", stats.cache.snoops_intra_chip);
    println!("  inter-chip:       {}", stats.cache.snoops_inter_chip);
    println!("writebacks:         {}", stats.cache.writebacks);
    println!("memory fetches:     {}", stats.cache.memory_fetches);
}

/// `tlbmap simulate`
pub fn simulate_cmd(o: Options) -> Result<(), String> {
    let topo = topology(&o);
    let rec = recorder_for(&o, topo.num_cores());
    let workload = o.workload()?;
    let mapping = parse_mapping(&o, &topo)?;
    println!("mapping (thread -> core): {:?}", mapping.as_slice());
    let sim = SimConfig::paper_hardware_managed(&topo).with_tick_period(None);
    let stats = simulate_observed_with_plan(
        &sim,
        &topo,
        &workload.traces,
        &mapping,
        &mut NoHooks,
        &rec,
        o.exec_plan(),
    )?;
    print_stats(&stats);
    // No detector ran, so there is no detected matrix to score: the
    // metrics document carries no timeline.
    write_artifacts(&o, &rec, None)
}

/// `tlbmap stats`
pub fn stats(o: Options) -> Result<(), String> {
    let workload = o.workload()?;
    let s = tlbmap_workloads::TraceStats::analyze(&workload);
    println!("== {} trace statistics ==", workload.name);
    print!("{}", s.render());
    Ok(())
}

/// `tlbmap export`
pub fn export(o: Options) -> Result<(), String> {
    let path = o
        .out
        .clone()
        .ok_or_else(|| "export needs --out <FILE>".to_string())?;
    let workload = o.workload()?;
    let bytes = tlbmap_sim::encode_traces(&workload.traces);
    let events = workload.total_events();
    std::fs::write(&path, &bytes).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "wrote {path}: {} events in {} bytes ({:.2} bytes/event)",
        events,
        bytes.len(),
        bytes.len() as f64 / events.max(1) as f64
    );
    Ok(())
}

/// `tlbmap report`
pub fn report(o: Options) -> Result<(), String> {
    if let Some(path) = &o.from {
        return report_from(path);
    }
    let topo = topology(&o);
    let rec = recorder_for(&o, topo.num_cores());
    let workload = o.workload()?;
    let (matrix, det_stats) = detect_matrix(&o, &rec)?;
    println!("== detected pattern ({}) ==", o.mechanism);
    print!("{}", matrix.heatmap());
    println!(
        "TLB miss rate {:.3}%, detection overhead {:.3}%",
        det_stats.tlb_miss_rate() * 100.0,
        det_stats.detection_overhead_fraction() * 100.0
    );

    let mapping = build_mapping(&o, &matrix, &topo, &rec)?;
    println!("\n== mapping ==\nthread -> core: {:?}", mapping.as_slice());

    let sim = SimConfig::paper_hardware_managed(&topo).with_tick_period(None);
    let plan = o.exec_plan();
    let baseline = baselines::random(topo.num_cores(), &topo, o.seed);
    let before = simulate_with_plan(&sim, &topo, &workload.traces, &baseline, &mut NoHooks, plan)?;
    let after = simulate_with_plan(&sim, &topo, &workload.traces, &mapping, &mut NoHooks, plan)?;
    println!("\n== baseline (random placement, seed {}) ==", o.seed);
    print_stats(&before);
    println!("\n== mapped ==");
    print_stats(&after);
    let dt = 100.0 * (1.0 - after.total_cycles as f64 / before.total_cycles.max(1) as f64);
    println!("\nexecution time improvement: {dt:.1}%");
    let tl = accuracy_timeline(&o, &rec)?;
    write_artifacts(&o, &rec, tl.as_ref())
}

/// `tlbmap report --from <metrics.json>`: pretty-print a recorded run.
fn report_from(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;

    println!("== counters ({path}) ==");
    let counters = doc
        .get("counters")
        .ok_or_else(|| format!("{path}: no `counters` object"))?;
    for c in COUNTERS {
        if let Some(v) = counters.get(c.as_str()).and_then(Json::as_u64) {
            println!("{:<28} {v}", c.as_str());
        }
    }

    println!("\n== histograms ==");
    let hists = doc
        .get("histograms")
        .ok_or_else(|| format!("{path}: no `histograms` object"))?;
    for h in HISTS {
        let Some(hist) = hists.get(h.as_str()) else {
            continue;
        };
        let count = hist.get("count").and_then(Json::as_u64).unwrap_or(0);
        if count == 0 {
            println!("{}: empty", h.as_str());
            continue;
        }
        let sum = hist.get("sum").and_then(Json::as_u64).unwrap_or(0);
        println!(
            "{}: count {count}, mean {:.1}, min {}, max {}",
            h.as_str(),
            sum as f64 / count as f64,
            hist.get("min").and_then(Json::as_u64).unwrap_or(0),
            hist.get("max").and_then(Json::as_u64).unwrap_or(0),
        );
        if let Some(buckets) = hist.get("buckets").and_then(Json::as_array) {
            let peak = buckets
                .iter()
                .filter_map(|b| b.get("count").and_then(Json::as_u64))
                .max()
                .unwrap_or(1)
                .max(1);
            for b in buckets {
                let lo = b.get("lo").and_then(Json::as_u64).unwrap_or(0);
                let n = b.get("count").and_then(Json::as_u64).unwrap_or(0);
                let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
                println!("  >= {lo:>12} {n:>10} {bar}");
            }
        }
    }

    println!("\n== snapshots ==");
    let snaps = doc.get("snapshots").and_then(Json::as_array).unwrap_or(&[]);
    if snaps.is_empty() {
        println!("none recorded (run with --snapshot-every)");
    }
    for snap in snaps {
        let index = snap.get("index").and_then(Json::as_u64).unwrap_or(0);
        let cycle = snap.get("cycle").and_then(Json::as_u64).unwrap_or(0);
        let barrier = snap.get("barrier").and_then(Json::as_u64).unwrap_or(0);
        match snapshot_matrix(snap) {
            Some(m) => {
                println!(
                    "snapshot {index} @ cycle {cycle} (after {barrier} barriers), {} units:",
                    m.total()
                );
                print!("{}", m.heatmap());
            }
            None => println!("snapshot {index} @ cycle {cycle}: malformed rows"),
        }
    }
    Ok(())
}

/// Rebuild a snapshot's matrix from its JSON `rows`.
fn snapshot_matrix(snap: &Json) -> Option<CommMatrix> {
    CommMatrix::from_json(snap).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Options;

    fn opts(words: &[&str]) -> Options {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn topo_runs() {
        assert!(topo().is_ok());
    }

    #[test]
    fn detect_all_mechanisms() {
        for mech in ["sm", "hm", "gt"] {
            let o = opts(&[
                "ring",
                "--scale",
                "test",
                "--mechanism",
                mech,
                "--sm-threshold",
                "1",
                "--hm-period",
                "2000",
            ]);
            assert!(detect(o).is_ok(), "mechanism {mech}");
        }
        let o = opts(&["ring", "--scale", "test", "--mechanism", "bogus"]);
        assert!(detect(o).is_err());
    }

    #[test]
    fn map_all_mappers() {
        for mapper in ["hierarchical", "bisect", "greedy", "exhaustive"] {
            let mut o = opts(&["pairs", "--scale", "test", "--sm-threshold", "1"]);
            o.mapper = mapper.to_string();
            assert!(map(o).is_ok(), "mapper {mapper}");
        }
        let mut o = opts(&["pairs", "--scale", "test"]);
        o.mapper = "bogus".to_string();
        assert!(map(o).is_err());
    }

    #[test]
    fn simulate_all_mapping_selectors() {
        for m in ["identity", "scatter", "random=7", "auto"] {
            let mut o = opts(&["EP", "--scale", "test", "--sm-threshold", "1"]);
            o.mapping = m.to_string();
            assert!(simulate_cmd(o).is_ok(), "mapping {m}");
        }
        let mut o = opts(&["EP", "--scale", "test"]);
        o.mapping = "bogus".to_string();
        assert!(simulate_cmd(o).is_err());
    }

    #[test]
    fn stats_runs() {
        let o = opts(&["MG", "--scale", "test"]);
        assert!(stats(o).is_ok());
    }

    #[test]
    fn export_then_replay_from_trace_file() {
        let dir = std::env::temp_dir().join("tlbmap_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.tlbt");
        let mut o = opts(&["ring", "--scale", "test"]);
        o.out = Some(path.to_string_lossy().into_owned());
        assert!(export(o).is_ok());
        // Replay: stats + simulate from the file.
        let arg = format!("trace={}", path.to_string_lossy());
        let o2 = opts(&[&arg, "--scale", "test"]);
        assert!(stats(o2).is_ok());
        let mut o3 = opts(&[&arg, "--scale", "test"]);
        o3.mapping = "identity".to_string();
        assert!(simulate_cmd(o3).is_ok());
    }

    #[test]
    fn report_full_pipeline() {
        let o = opts(&["SP", "--scale", "test", "--sm-threshold", "1"]);
        assert!(report(o).is_ok());
    }

    #[test]
    fn detect_formats() {
        for fmt in ["heatmap", "csv", "json"] {
            let o = opts(&["ring", "--scale", "test", "--format", fmt]);
            assert!(detect(o).is_ok(), "format {fmt}");
        }
    }

    #[test]
    fn detect_writes_artifacts_and_report_reads_them() {
        let dir = std::env::temp_dir().join("tlbmap_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run.jsonl");
        let chrome = dir.join("run.trace.json");
        let metrics = dir.join("metrics.json");
        let mut o = opts(&["ring", "--scale", "test", "--sm-threshold", "1"]);
        o.trace_out = Some(trace.to_string_lossy().into_owned());
        o.chrome_out = Some(chrome.to_string_lossy().into_owned());
        o.metrics_out = Some(metrics.to_string_lossy().into_owned());
        o.snapshot_every = Some(2_000);
        detect(o).unwrap();

        // Every JSONL line parses and the meta line leads.
        let text = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 1, "trace must hold events");
        assert!(lines[0].contains("\"ev\":\"meta\""));
        for line in &lines {
            Json::parse(line).unwrap();
        }

        // The chrome trace is one valid JSON document.
        let chrome_doc = Json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        assert!(!chrome_doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        // Metrics parse, and `report --from` pretty-prints them.
        let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(
            doc.get("counters")
                .unwrap()
                .get("accesses")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert!(!doc.get("snapshots").unwrap().as_array().unwrap().is_empty());
        // Schema 2 extras: the self-profile and the accuracy timeline.
        assert_eq!(doc.get("schema").unwrap().as_u64(), Some(3));
        assert!(!doc.get("profile").unwrap().as_array().unwrap().is_empty());
        let timeline = doc.get("timeline").expect("timeline section");
        assert!(!timeline
            .get("entries")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        // Schema 3: the flight recorder rides along whenever snapshots
        // are on (the window defaults to the snapshot period).
        let flight = doc.get("flight").expect("flight section");
        assert!(flight.get("windows_closed").unwrap().as_u64().unwrap() > 0);
        let mut from = opts(&[]);
        from.from = Some(metrics.to_string_lossy().into_owned());
        report(from).unwrap();
    }

    #[test]
    fn unknown_app_propagates() {
        let o = opts(&["nonsense", "--scale", "test"]);
        assert!(detect(o).is_err());
    }

    #[test]
    fn sharded_simulate_metrics_are_byte_identical() {
        // The tentpole's CLI-level contract: the metrics document of a
        // windowed run is byte-for-byte the same at any shard count.
        let dir = std::env::temp_dir().join("tlbmap_cli_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |name: &str, shards: &str| {
            let path = dir.join(name);
            let mut o = opts(&[
                "ring", "--scale", "test", "--shards", shards, "--lag", "8192",
            ]);
            o.mapping = "identity".to_string();
            o.metrics_out = Some(path.to_string_lossy().into_owned());
            simulate_cmd(o).unwrap();
            std::fs::read_to_string(&path).unwrap()
        };
        let serial = run("shards1.json", "1");
        let sharded = run("shards4.json", "4");
        assert_eq!(serial, sharded);
        assert!(serial.contains("\"shard_barrier_waits\":"));
        assert!(serial.contains("\"msgq_delivered\":"));
    }

    #[test]
    fn ground_truth_refuses_sharding_with_a_pointer_back() {
        let o = opts(&[
            "ring",
            "--scale",
            "test",
            "--mechanism",
            "gt",
            "--shards",
            "2",
        ]);
        let err = detect(o).unwrap_err();
        assert!(err.contains("inline"), "unexpected error: {err}");
        // SM detection only needs the deferred miss replay, so it shards.
        let o = opts(&[
            "ring",
            "--scale",
            "test",
            "--sm-threshold",
            "1",
            "--shards",
            "2",
        ]);
        assert!(detect(o).is_ok());
    }
}
