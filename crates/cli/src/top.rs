//! `tlbmap top` — a live dashboard over the serve admin endpoint.
//!
//! Polls a running server's `admin stats` frame on an interval and
//! renders the flat document as an aligned table plus rolling sparklines
//! of request rate and windowed p99, in the spirit of `top(1)`. With
//! `--raw` the screen is never cleared (each refresh appends), which is
//! what scripts and CI logs want; `--iterations N` bounds the run so a
//! gate can take a single snapshot and exit.

use tlbmap_bench::{sparkline, Table};
use tlbmap_obs::Json;
use tlbmap_serve::{AdminKind, Client};

use crate::serve_cmd::DEFAULT_ADDR;

/// How many poll results the sparkline histories keep.
const HISTORY: usize = 60;

/// Options of `tlbmap top`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopOptions {
    /// Server address to poll.
    pub addr: String,
    /// Milliseconds between polls.
    pub interval_ms: u64,
    /// Number of polls before exiting; 0 = run until interrupted (or the
    /// server goes away).
    pub iterations: u64,
    /// Never clear the screen; append each refresh (script/CI mode).
    pub raw: bool,
}

impl TopOptions {
    /// Parse everything after `top`.
    pub fn parse(args: &[String]) -> Result<TopOptions, String> {
        let mut o = TopOptions {
            addr: DEFAULT_ADDR.to_string(),
            interval_ms: 1000,
            iterations: 0,
            raw: false,
        };
        let mut i = 0;
        while i < args.len() {
            let value = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            let parse = |name: &str, raw: &str| -> Result<u64, String> {
                raw.parse().map_err(|e| format!("{name}: {e}"))
            };
            match args[i].as_str() {
                "--addr" => o.addr = value("--addr")?,
                "--interval-ms" => {
                    o.interval_ms = parse("--interval-ms", &value("--interval-ms")?)?
                }
                "--iterations" => o.iterations = parse("--iterations", &value("--iterations")?)?,
                "--raw" => {
                    o.raw = true;
                    i += 1;
                    continue;
                }
                flag => return Err(format!("unknown flag `{flag}`")),
            }
            i += 2;
        }
        if o.interval_ms == 0 {
            return Err("--interval-ms must be positive".into());
        }
        Ok(o)
    }
}

fn u64_of(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn f64_of(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// A windowed quantile: `Null` (empty window) renders as `-`, never 0.
fn quantile_cell(doc: &Json, key: &str) -> String {
    match doc.get(key).and_then(Json::as_u64) {
        Some(us) => format!("{us}"),
        None => "-".to_string(),
    }
}

/// Render the event-loop rows from the `loop` object of an `admin stats`
/// document: open connections, registered fds, tick rate, and the
/// per-tick batch-size quantiles. An older server without the field just
/// loses these rows.
pub fn render_loop_rows(table: &mut Table, doc: &Json) {
    let Some(loop_doc) = doc.get("loop") else {
        return;
    };
    table.row(vec![
        "connections".to_string(),
        format!(
            "{} open, {} accepted",
            u64_of(loop_doc, "conns_open"),
            u64_of(loop_doc, "conns_accepted"),
        ),
    ]);
    table.row(vec![
        "event loop".to_string(),
        format!(
            "{} fds, {:.1} ticks/s",
            u64_of(loop_doc, "fds"),
            f64_of(loop_doc, "ticks_per_s"),
        ),
    ]);
    table.row(vec![
        "batch size".to_string(),
        format!(
            "p50 {} / p99 {}",
            quantile_cell(loop_doc, "batch_p50"),
            quantile_cell(loop_doc, "batch_p99"),
        ),
    ]);
}

/// Render the streaming-sessions rows from an `admin sessions` document:
/// open sessions, delta throughput, remap decisions, and the warm-start
/// hit rate.
pub fn render_sessions_rows(table: &mut Table, doc: &Json, deltas_per_s: f64) {
    table.row(vec![
        "sessions".to_string(),
        format!(
            "{}/{} open, {deltas_per_s:.1} deltas/s",
            u64_of(doc, "open_sessions"),
            u64_of(doc, "max_sessions"),
        ),
    ]);
    table.row(vec![
        "remaps".to_string(),
        format!(
            "{} triggered / {} suppressed",
            u64_of(doc, "remaps_triggered"),
            u64_of(doc, "remaps_suppressed"),
        ),
    ]);
    let warm = u64_of(doc, "warm_start_hits");
    let cold = u64_of(doc, "warm_start_fallbacks");
    let warm_rate = if warm + cold > 0 {
        warm as f64 / (warm + cold) as f64 * 100.0
    } else {
        0.0
    };
    table.row(vec![
        "warm-start rate".to_string(),
        format!("{warm_rate:.1}% ({warm}w/{cold}c)"),
    ]);
}

/// Render one poll of the admin stats document (plus, when the scrape
/// succeeded, the `admin sessions` rows).
pub fn render_frame(
    doc: &Json,
    sessions: Option<&Json>,
    deltas_per_s: f64,
    rps_history: &[f64],
    p99_history: &[f64],
) -> String {
    let uptime_s = u64_of(doc, "uptime_ms") / 1000;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["uptime (s)".to_string(), uptime_s.to_string()]);
    table.row(vec![
        "requests".to_string(),
        u64_of(doc, "requests").to_string(),
    ]);
    table.row(vec![
        "map requests".to_string(),
        u64_of(doc, "map_requests").to_string(),
    ]);
    table.row(vec![
        "window rps".to_string(),
        format!("{:.1}", f64_of(doc, "window_rps")),
    ]);
    table.row(vec![
        "window p50 (us)".to_string(),
        quantile_cell(doc, "window_p50_us"),
    ]);
    table.row(vec![
        "window p99 (us)".to_string(),
        quantile_cell(doc, "window_p99_us"),
    ]);
    table.row(vec![
        "queue".to_string(),
        format!(
            "{}/{}",
            u64_of(doc, "queue_depth"),
            u64_of(doc, "queue_capacity")
        ),
    ]);
    table.row(vec![
        "workers busy".to_string(),
        format!("{}/{}", u64_of(doc, "workers_busy"), u64_of(doc, "workers")),
    ]);
    table.row(vec![
        "utilization".to_string(),
        format!("{:.1}%", f64_of(doc, "utilization") * 100.0),
    ]);
    let hits = u64_of(doc, "cache_hits");
    let misses = u64_of(doc, "cache_misses");
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64 * 100.0
    } else {
        0.0
    };
    table.row(vec![
        "cache hit rate".to_string(),
        format!("{hit_rate:.1}% ({hits}h/{misses}m)"),
    ]);
    let errors: u64 = [
        "err_bad_frame",
        "err_bad_request",
        "err_overloaded",
        "err_timeout",
        "err_shutting_down",
        "err_internal",
    ]
    .iter()
    .map(|k| u64_of(doc, k))
    .sum();
    table.row(vec!["errors".to_string(), errors.to_string()]);
    table.row(vec![
        "slow requests".to_string(),
        u64_of(doc, "slow_requests").to_string(),
    ]);
    render_loop_rows(&mut table, doc);
    if let Some(sessions) = sessions {
        render_sessions_rows(&mut table, sessions, deltas_per_s);
    }
    let mut out = table.render();
    if rps_history.len() > 1 {
        out.push_str(&format!("  rps  {}\n", sparkline(rps_history)));
        out.push_str(&format!("  p99  {}\n", sparkline(p99_history)));
    }
    out
}

/// `tlbmap top` — poll and render until `iterations` runs out (0 = until
/// the server goes away or the process is interrupted).
pub fn top(o: TopOptions) -> Result<(), String> {
    let mut client: Option<Client> = None;
    let mut rps_history: Vec<f64> = Vec::new();
    let mut p99_history: Vec<f64> = Vec::new();
    let mut iteration: u64 = 0;
    let mut last_deltas: Option<u64> = None;
    loop {
        iteration += 1;
        // (Re)connect lazily so a restarting server only costs one poll.
        if client.is_none() {
            client = Client::connect(&o.addr).ok();
        }
        let doc = match client.as_mut().map(|c| c.admin(AdminKind::Stats)) {
            Some(Ok(doc)) => Some(doc),
            _ => {
                client = None;
                None
            }
        };
        // The sessions scrape rides the same connection; an older server
        // that rejects the kind just loses the sessions rows.
        let sessions = client
            .as_mut()
            .and_then(|c| c.admin(AdminKind::Sessions).ok());
        match doc {
            Some(doc) => {
                rps_history.push(f64_of(&doc, "window_rps"));
                p99_history
                    .push(doc.get("window_p99_us").and_then(Json::as_u64).unwrap_or(0) as f64);
                if rps_history.len() > HISTORY {
                    rps_history.remove(0);
                    p99_history.remove(0);
                }
                let deltas_per_s = sessions
                    .as_ref()
                    .map(|s| u64_of(s, "session_deltas"))
                    .map_or(0.0, |now| {
                        let rate = last_deltas.map_or(0.0, |prev| {
                            now.saturating_sub(prev) as f64 / (o.interval_ms as f64 / 1000.0)
                        });
                        last_deltas = Some(now);
                        rate
                    });
                if !o.raw {
                    // Clear screen + home, like top(1).
                    print!("\x1b[2J\x1b[H");
                }
                println!("tlbmap top — {} (poll {iteration})", o.addr);
                print!(
                    "{}",
                    render_frame(
                        &doc,
                        sessions.as_ref(),
                        deltas_per_s,
                        &rps_history,
                        &p99_history
                    )
                );
            }
            None if o.iterations == 0 => {
                println!("# {} unreachable, retrying", o.addr);
            }
            None => return Err(format!("{}: server unreachable", o.addr)),
        }
        if o.iterations > 0 && iteration >= o.iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(o.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_top_options() {
        let words: Vec<String> = [
            "--addr",
            "127.0.0.1:9000",
            "--interval-ms",
            "200",
            "--iterations",
            "3",
            "--raw",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = TopOptions::parse(&words).unwrap();
        assert_eq!(o.addr, "127.0.0.1:9000");
        assert_eq!(o.interval_ms, 200);
        assert_eq!(o.iterations, 3);
        assert!(o.raw);
        let defaults = TopOptions::parse(&[]).unwrap();
        assert_eq!(defaults.interval_ms, 1000);
        assert_eq!(defaults.iterations, 0);
        assert!(!defaults.raw);
    }

    #[test]
    fn rejects_bad_top_options() {
        let w = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert!(TopOptions::parse(&w(&["--interval-ms", "0"])).is_err());
        assert!(TopOptions::parse(&w(&["--interval-ms"])).is_err());
        assert!(TopOptions::parse(&w(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn renders_a_frame_from_an_admin_doc() {
        let doc = Json::obj(vec![
            ("uptime_ms", Json::U64(65_000)),
            ("requests", Json::U64(1200)),
            ("map_requests", Json::U64(1000)),
            ("window_rps", Json::F64(85.5)),
            ("window_p50_us", Json::U64(96)),
            ("window_p99_us", Json::U64(1536)),
            ("queue_depth", Json::U64(3)),
            ("queue_capacity", Json::U64(64)),
            ("workers", Json::U64(4)),
            ("workers_busy", Json::U64(2)),
            ("utilization", Json::F64(0.42)),
            ("cache_hits", Json::U64(900)),
            ("cache_misses", Json::U64(100)),
            ("err_timeout", Json::U64(2)),
            ("slow_requests", Json::U64(5)),
        ]);
        let frame = render_frame(
            &doc,
            None,
            0.0,
            &[10.0, 50.0, 85.5],
            &[800.0, 1200.0, 1536.0],
        );
        assert!(frame.contains("uptime (s)"), "{frame}");
        assert!(frame.contains("65"), "{frame}");
        assert!(frame.contains("3/64"), "{frame}");
        assert!(frame.contains("2/4"), "{frame}");
        assert!(frame.contains("42.0%"), "{frame}");
        assert!(frame.contains("90.0%"), "{frame}");
        // The max of each history renders as the tallest sparkline glyph.
        assert!(frame.contains('█'), "{frame}");
        // Error total sums the per-code counters.
        assert!(frame.contains("errors"), "{frame}");
        // Without a sessions scrape the sessions rows stay out of the frame.
        assert!(!frame.contains("sessions"), "{frame}");
    }

    #[test]
    fn renders_event_loop_rows_from_the_loop_field() {
        let doc = Json::obj(vec![
            ("uptime_ms", Json::U64(2000)),
            ("window_rps", Json::F64(10.0)),
            (
                "loop",
                Json::obj(vec![
                    ("ticks", Json::U64(480)),
                    ("ticks_per_s", Json::F64(240.5)),
                    ("fds", Json::U64(7)),
                    ("conns_open", Json::U64(5)),
                    ("conns_accepted", Json::U64(19)),
                    ("batch_p50", Json::U64(2)),
                    ("batch_p99", Json::Null),
                ]),
            ),
        ]);
        let frame = render_frame(&doc, None, 0.0, &[], &[]);
        assert!(frame.contains("5 open, 19 accepted"), "{frame}");
        assert!(frame.contains("7 fds, 240.5 ticks/s"), "{frame}");
        assert!(frame.contains("p50 2 / p99 -"), "{frame}");
        // The loop rows must not trip the no-sessions assertion.
        assert!(!frame.contains("sessions"), "{frame}");
    }

    #[test]
    fn renders_session_rows_from_a_sessions_doc() {
        let doc = Json::obj(vec![
            ("uptime_ms", Json::U64(1000)),
            ("window_rps", Json::F64(1.0)),
        ]);
        let sessions = Json::obj(vec![
            ("open_sessions", Json::U64(2)),
            ("max_sessions", Json::U64(32)),
            ("session_deltas", Json::U64(480)),
            ("remaps_triggered", Json::U64(5)),
            ("remaps_suppressed", Json::U64(40)),
            ("warm_start_hits", Json::U64(4)),
            ("warm_start_fallbacks", Json::U64(1)),
        ]);
        let frame = render_frame(&doc, Some(&sessions), 12.5, &[1.0], &[1.0]);
        assert!(frame.contains("2/32 open, 12.5 deltas/s"), "{frame}");
        assert!(frame.contains("5 triggered / 40 suppressed"), "{frame}");
        assert!(frame.contains("80.0% (4w/1c)"), "{frame}");
    }

    #[test]
    fn empty_window_quantiles_render_as_dashes() {
        let doc = Json::obj(vec![
            ("uptime_ms", Json::U64(1000)),
            ("window_p50_us", Json::Null),
            ("window_p99_us", Json::Null),
        ]);
        let frame = render_frame(&doc, None, 0.0, &[], &[]);
        assert!(frame.contains("window p50 (us)"), "{frame}");
        assert!(frame.contains('-'), "{frame}");
        assert!(!frame.contains('█'), "single poll: no sparkline yet");
    }
}
