//! Hand-rolled option parsing (no external CLI dependency).

use tlbmap_workloads::npb::{NpbApp, NpbParams, ProblemScale};
pub use tlbmap_workloads::PatternClass;
use tlbmap_workloads::{synthetic, Workload};

/// Top-level usage text.
pub const USAGE: &str = "\
tlbmap — TLB-based communication detection and thread mapping

USAGE:
  tlbmap topo
  tlbmap detect   <APP> [--mechanism sm|hm|gt] [--csv] [COMMON]
  tlbmap map      <APP> [--mapper hierarchical|bisect|greedy|exhaustive] [COMMON]
  tlbmap simulate <APP> [--mapping identity|scatter|random=<seed>|auto] [COMMON]
  tlbmap report   <APP> [COMMON]
  tlbmap stats    <APP> [COMMON]
  tlbmap export   <APP> --out <FILE> [COMMON]

<APP> may also be `trace=<FILE>` (a file written by `tlbmap export`) in
detect/map/simulate/report/stats.

APP: BT CG EP FT IS LU MG SP UA | ring pairs pipeline uniform private master_worker turns

COMMON:
  --scale test|small|workshop   problem size              [workshop]
  --seed <u64>                  workload seed             [1819]
  --sm-threshold <u32>          SM sampling threshold     [100]
  --hm-period <u64>             HM tick period (cycles)   [250000]";

/// Parsed command options.
pub struct Options {
    /// Application or synthetic pattern name.
    pub app: String,
    /// Detection mechanism for `detect`.
    pub mechanism: String,
    /// Mapper name for `map`.
    pub mapper: String,
    /// Mapping selector for `simulate`.
    pub mapping: String,
    /// Emit CSV instead of a heatmap.
    pub csv: bool,
    /// Problem scale.
    pub scale: ProblemScale,
    /// Workload seed.
    pub seed: u64,
    /// SM sampling threshold.
    pub sm_threshold: u32,
    /// HM tick period.
    pub hm_period: u64,
    /// Output path for `export`.
    pub out: Option<String>,
}

impl Options {
    /// Parse `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            app: String::new(),
            mechanism: "sm".into(),
            mapper: "hierarchical".into(),
            mapping: "auto".into(),
            csv: false,
            out: None,
            scale: ProblemScale::Workshop,
            seed: 1819,
            sm_threshold: 100,
            hm_period: 250_000,
        };
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let value = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--mechanism" => {
                    o.mechanism = value("--mechanism")?;
                    i += 2;
                }
                "--mapper" => {
                    o.mapper = value("--mapper")?;
                    i += 2;
                }
                "--mapping" => {
                    o.mapping = value("--mapping")?;
                    i += 2;
                }
                "--csv" => {
                    o.csv = true;
                    i += 1;
                }
                "--out" => {
                    o.out = Some(value("--out")?);
                    i += 2;
                }
                "--scale" => {
                    o.scale = match value("--scale")?.as_str() {
                        "test" => ProblemScale::Test,
                        "small" => ProblemScale::Small,
                        "workshop" => ProblemScale::Workshop,
                        other => return Err(format!("unknown scale `{other}`")),
                    };
                    i += 2;
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                    i += 2;
                }
                "--sm-threshold" => {
                    o.sm_threshold = value("--sm-threshold")?
                        .parse()
                        .map_err(|e| format!("--sm-threshold: {e}"))?;
                    if o.sm_threshold == 0 {
                        return Err("--sm-threshold must be at least 1".into());
                    }
                    i += 2;
                }
                "--hm-period" if args.get(i + 1).map(|v| v == "0").unwrap_or(false) => {
                    return Err("--hm-period must be positive".into());
                }
                "--hm-period" => {
                    o.hm_period = value("--hm-period")?
                        .parse()
                        .map_err(|e| format!("--hm-period: {e}"))?;
                    i += 2;
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                name => {
                    if !o.app.is_empty() {
                        return Err(format!("unexpected argument `{name}`"));
                    }
                    o.app = name.to_string();
                    i += 1;
                }
            }
        }
        if o.app.is_empty() {
            return Err(format!("missing <APP>\n{USAGE}"));
        }
        Ok(o)
    }

    /// Generate the requested workload for 8 threads, or load it from a
    /// `trace=<file>` argument.
    pub fn workload(&self) -> Result<Workload, String> {
        let n = 8;
        if let Some(path) = self.app.strip_prefix("trace=") {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let traces = tlbmap_sim::decode_traces(&bytes).map_err(|e| format!("{path}: {e}"))?;
            return Ok(Workload {
                name: format!("trace:{path}"),
                traces,
                expected_pattern: crate::opts::PatternClass::DomainDecomposition,
                footprint_bytes: 0,
            });
        }
        if let Some(app) = NpbApp::from_name(&self.app) {
            let params = NpbParams {
                n_threads: n,
                scale: self.scale,
                seed: self.seed,
            };
            return Ok(app.generate(&params));
        }
        let (pages, iters) = match self.scale {
            ProblemScale::Test => (8, 2),
            ProblemScale::Small => (32, 4),
            ProblemScale::Workshop => (80, 6),
        };
        match self.app.as_str() {
            "ring" => Ok(synthetic::ring_neighbors(n, pages, iters)),
            "pairs" => Ok(synthetic::producer_consumer(n, pages / 2, iters)),
            "pipeline" => Ok(synthetic::pipeline(n, pages / 2, iters)),
            "uniform" => Ok(synthetic::uniform_all_to_all(n, pages / 2, iters)),
            "private" => Ok(synthetic::private_only(n, pages, iters)),
            "master_worker" => Ok(synthetic::master_worker(n, pages / 4, iters)),
            "turns" => Ok(synthetic::turn_taking(n, pages / 4, iters)),
            other => Err(format!("unknown app `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Options, String> {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_app_and_flags() {
        let o = parse(&["SP", "--scale", "small", "--mechanism", "hm", "--csv"]).unwrap();
        assert_eq!(o.app, "SP");
        assert_eq!(o.scale, ProblemScale::Small);
        assert_eq!(o.mechanism, "hm");
        assert!(o.csv);
    }

    #[test]
    fn rejects_missing_app_and_bad_flags() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["SP", "--bogus"]).is_err());
        assert!(parse(&["SP", "--seed", "abc"]).is_err());
        assert!(parse(&["SP", "--sm-threshold", "0"]).is_err());
        assert!(parse(&["SP", "--hm-period", "0"]).is_err());
        assert!(parse(&["SP", "extra"]).is_err());
    }

    #[test]
    fn builds_npb_and_synthetic_workloads() {
        let mut o = parse(&["bt", "--scale", "test"]).unwrap();
        assert_eq!(o.workload().unwrap().name, "BT");
        o.app = "ring".into();
        assert_eq!(o.workload().unwrap().name, "ring");
        o.app = "nope".into();
        assert!(o.workload().is_err());
    }
}
