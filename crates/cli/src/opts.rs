//! Hand-rolled option parsing (no external CLI dependency).

use tlbmap_workloads::npb::{NpbApp, NpbParams, ProblemScale};
pub use tlbmap_workloads::PatternClass;
use tlbmap_workloads::{synthetic, Workload};

/// Top-level usage text.
pub const USAGE: &str = "\
tlbmap — TLB-based communication detection and thread mapping

USAGE:
  tlbmap topo
  tlbmap detect   [APP] [--mechanism sm|hm|gt] [--format heatmap|csv|json] [OBS] [COMMON]
  tlbmap map      [APP] [--mapper hierarchical|bisect|greedy|exhaustive] [OBS] [COMMON]
  tlbmap simulate [APP] [--mapping identity|scatter|random=<seed>|auto] [OBS] [COMMON]
  tlbmap report   [APP] [OBS] [COMMON]
  tlbmap report   --from <metrics.json>
  tlbmap analyze  --from <metrics.json>
  tlbmap inspect  --from <metrics.json> [--html-out <FILE>]
                  [--speedscope-out <FILE>]
  tlbmap diff     [--fail-above <pct>] <a.json> <b.json>
  tlbmap bench    [APP] [--out BENCH_<name>.json] [--cores N] [COMMON]
  tlbmap stats    [APP] [COMMON]
  tlbmap export   [APP] --out <FILE> [COMMON]
  tlbmap serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
                  [--deadline-ms D] [--metrics-out <FILE>] [--window-ms W]
                  [--window-buckets B] [--slow-threshold-us T]
                  [--slow-log <FILE>] [--no-http]
                  [--flight-window CYCLES] [--flight-capacity N]
  tlbmap client   map|health|stats|live|trace|flight|shutdown
                  [--addr HOST:PORT] [--matrix <FILE>] [--topo CxLxK]
                  [--deadline-ms D]
  tlbmap loadgen  [--addr HOST:PORT] [--connections N] [--requests M]
                  [--matrix <FILE>] [--delay-ms D] [--sample-ms S] [--out <FILE>]
  tlbmap top      [--addr HOST:PORT] [--interval-ms I] [--iterations N] [--raw]

APP defaults to CG. It may also be `trace=<FILE>` (a file written by
`tlbmap export`) in detect/map/simulate/report/stats.

APP: BT CG EP FT IS LU MG SP UA | ring pairs pipeline uniform private master_worker turns phased

OBS (run-artifact export; any of these enables recording):
  --trace-out <FILE>            event trace as JSONL
  --chrome-out <FILE>           event trace as Chrome trace_event JSON
  --metrics-out <FILE>          counters/histograms/snapshots as JSON
  --snapshot-every <CYCLES>     periodic communication-matrix snapshots
  --flight-window <CYCLES>      flight-recorder window length (defaults
                                to --snapshot-every when recording)
  --flight-capacity <N>         retained flight windows        [64]

COMMON:
  --scale test|small|workshop   problem size              [workshop]
  --cores <N>                   machine size: any power of two >= 4
                                (8 = the paper's Harpertown)  [8]
  --seed <u64>                  workload seed             [1819]
  --sm-threshold <u32>          SM sampling threshold     [100]
  --hm-period <u64>             HM tick period (cycles)   [250000]
  --shards <N>                  OS threads sharding one simulated run
                                (deterministic: results are identical
                                at any shard count)       [1]
  --lag <CYCLES>                bounded-lag window of the sharded
                                engine; 0 = exact serial engine
                                (only valid with --shards 1)
                                [0 serial / 8192 sharded]

ANALYSIS:
  analyze   accuracy timeline, phase boundaries and cycle profile of a
            recorded metrics file (detect/map/report with --metrics-out
            and --snapshot-every fill in the timeline)
  inspect   flight-recorder run explorer: phase timeline with drift
            sparklines, per-phase communication heatmaps, mapping
            quality and cycle attribution; `--html-out` writes a
            self-contained HTML report with SVG heatmaps,
            `--speedscope-out` a speedscope-importable profile
  diff      per-stat comparison of two metrics/bench JSON files; with
            --fail-above <pct> acts as a regression gate (non-zero exit
            when any gated stat regresses by more than <pct> percent)
  bench     run a seeded workload under full observation and write a
            machine-readable BENCH_<name>.json performance record

SERVICE:
  serve     run the mapping service: a TCP server with a bounded work
            queue, worker pool, and LRU result cache (shut it down with
            `tlbmap client shutdown`)
  client    one request against a running service; `map` needs a matrix
            JSON file as written by `tlbmap detect --format json`
  loadgen   N connections x M requests against a running service;
            reports p50/p90/p99 latency and throughput, exits non-zero
            if any request failed; `--sample-ms` adds a per-second
            timeline and before/after server scrapes to the report
  top       poll the admin endpoint and render a live dashboard with
            rolling-window latency sparklines (`--raw` for CI logs;
            the server also answers plain HTTP GET on its port with a
            text exposition unless started with `--no-http`)";

/// How `detect` prints the communication matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// ASCII heatmap (the paper's Figures 4–5 look).
    Heatmap,
    /// CSV with a `t0,t1,...` header row.
    Csv,
    /// JSON (`CommMatrix::to_json`).
    Json,
}

/// Parsed command options.
pub struct Options {
    /// Application or synthetic pattern name.
    pub app: String,
    /// Detection mechanism for `detect`.
    pub mechanism: String,
    /// Mapper name for `map`.
    pub mapper: String,
    /// Mapping selector for `simulate`.
    pub mapping: String,
    /// Matrix output format for `detect`.
    pub format: OutputFormat,
    /// JSONL event-trace output path.
    pub trace_out: Option<String>,
    /// Chrome trace_event output path.
    pub chrome_out: Option<String>,
    /// Metrics-JSON output path.
    pub metrics_out: Option<String>,
    /// Snapshot the communication matrix every this many cycles.
    pub snapshot_every: Option<u64>,
    /// Flight-recorder window length in cycles (defaults to
    /// `--snapshot-every` when any recording is active).
    pub flight_window: Option<u64>,
    /// Flight-recorder ring capacity (retained windows).
    pub flight_capacity: usize,
    /// Recorded metrics file for `report --from`.
    pub from: Option<String>,
    /// HTML report output path for `inspect`.
    pub html_out: Option<String>,
    /// Speedscope profile output path for `inspect`.
    pub speedscope_out: Option<String>,
    /// Machine size: any power of two >= 4 cores (8 = Harpertown).
    pub cores: usize,
    /// OS threads sharding one simulated run.
    pub shards: usize,
    /// Bounded-lag window; `None` picks 0 (serial) for one shard and the
    /// engine default for more.
    pub lag: Option<u64>,
    /// Problem scale.
    pub scale: ProblemScale,
    /// Workload seed.
    pub seed: u64,
    /// SM sampling threshold.
    pub sm_threshold: u32,
    /// HM tick period.
    pub hm_period: u64,
    /// Output path for `export`.
    pub out: Option<String>,
}

impl Options {
    /// Parse `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            app: String::new(),
            mechanism: "sm".into(),
            mapper: "hierarchical".into(),
            mapping: "auto".into(),
            format: OutputFormat::Heatmap,
            trace_out: None,
            chrome_out: None,
            metrics_out: None,
            snapshot_every: None,
            flight_window: None,
            flight_capacity: 64,
            from: None,
            html_out: None,
            speedscope_out: None,
            out: None,
            cores: 8,
            shards: 1,
            lag: None,
            scale: ProblemScale::Workshop,
            seed: 1819,
            sm_threshold: 100,
            hm_period: 250_000,
        };
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let value = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--mechanism" => {
                    o.mechanism = value("--mechanism")?;
                    i += 2;
                }
                "--mapper" => {
                    o.mapper = value("--mapper")?;
                    i += 2;
                }
                "--mapping" => {
                    o.mapping = value("--mapping")?;
                    i += 2;
                }
                "--format" => {
                    o.format = match value("--format")?.as_str() {
                        "heatmap" => OutputFormat::Heatmap,
                        "csv" => OutputFormat::Csv,
                        "json" => OutputFormat::Json,
                        other => return Err(format!("unknown format `{other}`")),
                    };
                    i += 2;
                }
                "--trace-out" => {
                    o.trace_out = Some(value("--trace-out")?);
                    i += 2;
                }
                "--chrome-out" => {
                    o.chrome_out = Some(value("--chrome-out")?);
                    i += 2;
                }
                "--metrics-out" => {
                    o.metrics_out = Some(value("--metrics-out")?);
                    i += 2;
                }
                "--snapshot-every" => {
                    let period: u64 = value("--snapshot-every")?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?;
                    if period == 0 {
                        return Err("--snapshot-every must be positive".into());
                    }
                    o.snapshot_every = Some(period);
                    i += 2;
                }
                "--flight-window" => {
                    let window: u64 = value("--flight-window")?
                        .parse()
                        .map_err(|e| format!("--flight-window: {e}"))?;
                    if window == 0 {
                        return Err("--flight-window must be positive".into());
                    }
                    o.flight_window = Some(window);
                    i += 2;
                }
                "--flight-capacity" => {
                    o.flight_capacity = value("--flight-capacity")?
                        .parse()
                        .map_err(|e| format!("--flight-capacity: {e}"))?;
                    if o.flight_capacity == 0 {
                        return Err("--flight-capacity must be at least 1".into());
                    }
                    i += 2;
                }
                "--from" => {
                    o.from = Some(value("--from")?);
                    i += 2;
                }
                "--html-out" => {
                    o.html_out = Some(value("--html-out")?);
                    i += 2;
                }
                "--speedscope-out" => {
                    o.speedscope_out = Some(value("--speedscope-out")?);
                    i += 2;
                }
                "--out" => {
                    o.out = Some(value("--out")?);
                    i += 2;
                }
                "--cores" => {
                    o.cores = value("--cores")?
                        .parse()
                        .map_err(|e| format!("--cores: {e}"))?;
                    // Validate eagerly so the error names the flag.
                    tlbmap_sim::Topology::scaled(o.cores).map_err(|e| format!("--cores: {e}"))?;
                    i += 2;
                }
                "--shards" => {
                    o.shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                    if o.shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    i += 2;
                }
                "--lag" => {
                    o.lag = Some(value("--lag")?.parse().map_err(|e| format!("--lag: {e}"))?);
                    i += 2;
                }
                "--scale" => {
                    o.scale = match value("--scale")?.as_str() {
                        "test" => ProblemScale::Test,
                        "small" => ProblemScale::Small,
                        "workshop" => ProblemScale::Workshop,
                        other => return Err(format!("unknown scale `{other}`")),
                    };
                    i += 2;
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                    i += 2;
                }
                "--sm-threshold" => {
                    o.sm_threshold = value("--sm-threshold")?
                        .parse()
                        .map_err(|e| format!("--sm-threshold: {e}"))?;
                    if o.sm_threshold == 0 {
                        return Err("--sm-threshold must be at least 1".into());
                    }
                    i += 2;
                }
                "--hm-period" if args.get(i + 1).map(|v| v == "0").unwrap_or(false) => {
                    return Err("--hm-period must be positive".into());
                }
                "--hm-period" => {
                    o.hm_period = value("--hm-period")?
                        .parse()
                        .map_err(|e| format!("--hm-period: {e}"))?;
                    i += 2;
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                name => {
                    if !o.app.is_empty() {
                        return Err(format!("unexpected argument `{name}`"));
                    }
                    o.app = name.to_string();
                    i += 1;
                }
            }
        }
        if o.app.is_empty() {
            o.app = "CG".into();
        }
        Ok(o)
    }

    /// Whether any observability artifact was requested.
    pub fn observing(&self) -> bool {
        self.trace_out.is_some()
            || self.chrome_out.is_some()
            || self.metrics_out.is_some()
            || self.snapshot_every.is_some()
            || self.flight_window.is_some()
    }

    /// The flight-recorder window for observed runs: an explicit
    /// `--flight-window`, falling back to the snapshot period so any
    /// snapshotted run gets a phase timeline for free.
    pub fn effective_flight_window(&self) -> Option<u64> {
        self.flight_window.or(self.snapshot_every)
    }

    /// The simulated machine for `--cores`: the scaling-study topology
    /// family, with 8 cores being the paper's Harpertown.
    pub fn topology(&self) -> tlbmap_sim::Topology {
        tlbmap_sim::Topology::scaled(self.cores).expect("validated at parse time")
    }

    /// The execution plan from `--shards`/`--lag`: serial by default, the
    /// windowed engine with the default window when sharded, any explicit
    /// `--lag` verbatim (the engine rejects inconsistent combinations).
    pub fn exec_plan(&self) -> tlbmap_sim::ExecPlan {
        match self.lag {
            Some(lag) => tlbmap_sim::ExecPlan {
                shards: self.shards,
                lag,
            },
            None if self.shards > 1 => tlbmap_sim::ExecPlan::sharded(self.shards),
            None => tlbmap_sim::ExecPlan::serial(),
        }
    }

    /// Generate the requested workload (one thread per `--cores` core),
    /// or load it from a `trace=<file>` argument.
    pub fn workload(&self) -> Result<Workload, String> {
        let n = self.cores;
        if let Some(path) = self.app.strip_prefix("trace=") {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let traces = tlbmap_sim::decode_traces(&bytes).map_err(|e| format!("{path}: {e}"))?;
            return Ok(Workload {
                name: format!("trace:{path}"),
                traces,
                expected_pattern: crate::opts::PatternClass::DomainDecomposition,
                footprint_bytes: 0,
            });
        }
        if let Some(app) = NpbApp::from_name(&self.app) {
            let params = NpbParams {
                n_threads: n,
                scale: self.scale,
                seed: self.seed,
            };
            return Ok(app.generate(&params));
        }
        let (pages, iters) = match self.scale {
            ProblemScale::Test => (8, 2),
            ProblemScale::Small => (32, 4),
            ProblemScale::Workshop => (80, 6),
        };
        match self.app.as_str() {
            "ring" => Ok(synthetic::ring_neighbors(n, pages, iters)),
            "pairs" => Ok(synthetic::producer_consumer(n, pages / 2, iters)),
            "pipeline" => Ok(synthetic::pipeline(n, pages / 2, iters)),
            "uniform" => Ok(synthetic::uniform_all_to_all(n, pages / 2, iters)),
            "private" => Ok(synthetic::private_only(n, pages, iters)),
            "master_worker" => Ok(synthetic::master_worker(n, pages / 4, iters)),
            "turns" => Ok(synthetic::turn_taking(n, pages / 4, iters)),
            "phased" => Ok(synthetic::phase_shift(n, pages / 2, iters)),
            other => Err(format!("unknown app `{other}`")),
        }
    }
}

/// Options of `tlbmap diff` (two positional files, unlike [`Options`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// Baseline document path.
    pub baseline: String,
    /// Candidate document path.
    pub candidate: String,
    /// Regression-gate threshold in percent (`None` = report only).
    pub fail_above: Option<f64>,
}

impl DiffOptions {
    /// Parse `args` (everything after `diff`).
    pub fn parse(args: &[String]) -> Result<DiffOptions, String> {
        let mut files: Vec<String> = Vec::new();
        let mut fail_above = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--fail-above" => {
                    let raw = args
                        .get(i + 1)
                        .ok_or_else(|| "--fail-above needs a value".to_string())?;
                    let pct: f64 = raw.parse().map_err(|e| format!("--fail-above: {e}"))?;
                    if !pct.is_finite() || pct < 0.0 {
                        return Err("--fail-above must be a non-negative percentage".into());
                    }
                    fail_above = Some(pct);
                    i += 2;
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                file => {
                    files.push(file.to_string());
                    i += 1;
                }
            }
        }
        match files.len() {
            2 => Ok(DiffOptions {
                baseline: files.remove(0),
                candidate: files.remove(0),
                fail_above,
            }),
            n => Err(format!("diff needs exactly two files, got {n}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Options, String> {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn parse_diff(words: &[&str]) -> Result<DiffOptions, String> {
        DiffOptions::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_diff_options() {
        let d = parse_diff(&["a.json", "b.json"]).unwrap();
        assert_eq!(d.baseline, "a.json");
        assert_eq!(d.candidate, "b.json");
        assert_eq!(d.fail_above, None);
        let d = parse_diff(&["--fail-above", "5", "a.json", "b.json"]).unwrap();
        assert_eq!(d.fail_above, Some(5.0));
        let d = parse_diff(&["a.json", "b.json", "--fail-above", "2.5"]).unwrap();
        assert_eq!(d.fail_above, Some(2.5));
    }

    #[test]
    fn rejects_bad_diff_options() {
        assert!(parse_diff(&["a.json"]).is_err());
        assert!(parse_diff(&["a.json", "b.json", "c.json"]).is_err());
        assert!(parse_diff(&["a.json", "b.json", "--fail-above"]).is_err());
        assert!(parse_diff(&["a.json", "b.json", "--fail-above", "-1"]).is_err());
        assert!(parse_diff(&["a.json", "b.json", "--fail-above", "NaN"]).is_err());
        assert!(parse_diff(&["a.json", "b.json", "--bogus"]).is_err());
    }

    #[test]
    fn parses_app_and_flags() {
        let o = parse(&[
            "SP",
            "--scale",
            "small",
            "--mechanism",
            "hm",
            "--format",
            "csv",
        ])
        .unwrap();
        assert_eq!(o.app, "SP");
        assert_eq!(o.scale, ProblemScale::Small);
        assert_eq!(o.mechanism, "hm");
        assert_eq!(o.format, OutputFormat::Csv);
        assert!(!o.observing());
    }

    #[test]
    fn app_defaults_to_cg() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.app, "CG");
        assert_eq!(o.format, OutputFormat::Heatmap);
        let o = parse(&["--mechanism", "hm"]).unwrap();
        assert_eq!(o.app, "CG");
        assert_eq!(o.mechanism, "hm");
    }

    #[test]
    fn parses_observability_flags() {
        let o = parse(&[
            "--trace-out",
            "run.jsonl",
            "--chrome-out",
            "run.trace.json",
            "--metrics-out",
            "metrics.json",
            "--snapshot-every",
            "100000",
        ])
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("run.jsonl"));
        assert_eq!(o.chrome_out.as_deref(), Some("run.trace.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(o.snapshot_every, Some(100_000));
        assert!(o.observing());
        let o = parse(&["--from", "metrics.json"]);
        assert_eq!(o.unwrap().from.as_deref(), Some("metrics.json"));
    }

    #[test]
    fn parses_flight_flags() {
        let o = parse(&["ring", "--flight-window", "5000", "--flight-capacity", "16"]).unwrap();
        assert_eq!(o.flight_window, Some(5_000));
        assert_eq!(o.flight_capacity, 16);
        assert_eq!(o.effective_flight_window(), Some(5_000));
        assert!(o.observing(), "--flight-window alone enables recording");
        // The window defaults to the snapshot period...
        let o = parse(&["ring", "--snapshot-every", "2000"]).unwrap();
        assert_eq!(o.flight_window, None);
        assert_eq!(o.effective_flight_window(), Some(2_000));
        // ...and an explicit window wins over the snapshot period.
        let o = parse(&["ring", "--snapshot-every", "2000", "--flight-window", "500"]).unwrap();
        assert_eq!(o.effective_flight_window(), Some(500));
        // Zero knobs are rejected at parse time, like --snapshot-every 0.
        assert!(parse(&["ring", "--flight-window", "0"]).is_err());
        assert!(parse(&["ring", "--flight-capacity", "0"]).is_err());
    }

    #[test]
    fn parses_inspect_outputs() {
        let o = parse(&[
            "--from",
            "m.json",
            "--html-out",
            "report.html",
            "--speedscope-out",
            "prof.speedscope.json",
        ])
        .unwrap();
        assert_eq!(o.from.as_deref(), Some("m.json"));
        assert_eq!(o.html_out.as_deref(), Some("report.html"));
        assert_eq!(o.speedscope_out.as_deref(), Some("prof.speedscope.json"));
    }

    #[test]
    fn phased_workload_exists() {
        let mut o = parse(&["phased", "--scale", "test"]).unwrap();
        assert_eq!(o.workload().unwrap().name, "phase_shift");
        o.cores = 4;
        assert_eq!(o.workload().unwrap().traces.len(), 4);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&["SP", "--bogus"]).is_err());
        assert!(
            parse(&["SP", "--csv"]).is_err(),
            "--csv was replaced by --format"
        );
        assert!(parse(&["SP", "--format", "xml"]).is_err());
        assert!(parse(&["SP", "--seed", "abc"]).is_err());
        assert!(parse(&["SP", "--sm-threshold", "0"]).is_err());
        assert!(parse(&["SP", "--hm-period", "0"]).is_err());
        assert!(parse(&["SP", "--snapshot-every", "0"]).is_err());
        assert!(parse(&["SP", "--trace-out"]).is_err(), "needs a value");
        assert!(parse(&["SP", "extra"]).is_err());
    }

    #[test]
    fn parses_cores_and_picks_the_scaling_topology() {
        let o = parse(&["ring", "--cores", "32", "--scale", "test"]).unwrap();
        assert_eq!(o.cores, 32);
        assert_eq!(o.topology().num_cores(), 32);
        assert_eq!(o.workload().unwrap().traces.len(), 32);
        let o = parse(&[]).unwrap();
        assert_eq!(o.cores, 8);
        assert_eq!(o.topology().num_cores(), 8);
        assert!(parse(&["ring", "--cores", "7"]).is_err());
        assert!(parse(&["ring", "--cores", "abc"]).is_err());
        // Any power of two >= 4 works now — the A/B study's sizes included.
        for n in ["64", "128", "256"] {
            let o = parse(&["ring", "--cores", n]).unwrap();
            assert_eq!(o.topology().num_cores(), n.parse::<usize>().unwrap());
        }
        assert!(parse(&["ring", "--cores", "48"]).is_err());
    }

    #[test]
    fn parses_shards_and_lag_into_a_plan() {
        use tlbmap_sim::{ExecPlan, DEFAULT_LAG};
        let o = parse(&[]).unwrap();
        assert_eq!(o.shards, 1);
        assert_eq!(o.exec_plan(), ExecPlan::serial());
        let o = parse(&["ring", "--shards", "4"]).unwrap();
        assert_eq!(
            o.exec_plan(),
            ExecPlan {
                shards: 4,
                lag: DEFAULT_LAG
            }
        );
        // An explicit lag selects the windowed engine even single-sharded,
        // so byte-identity can be checked against `--shards N`.
        let o = parse(&["ring", "--lag", "1024"]).unwrap();
        assert_eq!(
            o.exec_plan(),
            ExecPlan {
                shards: 1,
                lag: 1024
            }
        );
        assert!(parse(&["ring", "--shards", "0"]).is_err());
        assert!(parse(&["ring", "--shards"]).is_err());
        assert!(parse(&["ring", "--lag", "abc"]).is_err());
    }

    #[test]
    fn builds_npb_and_synthetic_workloads() {
        let mut o = parse(&["bt", "--scale", "test"]).unwrap();
        assert_eq!(o.workload().unwrap().name, "BT");
        o.app = "ring".into();
        assert_eq!(o.workload().unwrap().name, "ring");
        o.app = "nope".into();
        assert!(o.workload().is_err());
    }
}
