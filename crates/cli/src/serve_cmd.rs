//! The service-side subcommands: `serve`, `client`, `loadgen`.
//!
//! These have their own option grammar (address/connection flags rather
//! than workload flags), so they parse separately from [`crate::opts`].

use tlbmap_core::CommMatrix;
use tlbmap_obs::{Json, ObsConfig, Recorder};
use tlbmap_serve::{
    run_curve, run_loadgen, run_stream_loadgen, AdminKind, Client, CurveConfig, LoadgenConfig,
    ServeConfig, Server, StreamConfig,
};
use tlbmap_sim::Topology;

/// Default service address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";

fn parse_u64(flag: &str, raw: &str) -> Result<u64, String> {
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Parse a `CxLxK` topology spec (e.g. `2x2x2`).
fn parse_topo(raw: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = raw.split('x').collect();
    if parts.len() != 3 {
        return Err(format!(
            "--topo expects CHIPSxL2xCORES (e.g. 2x2x2), got `{raw}`"
        ));
    }
    let mut dims = [0usize; 3];
    for (slot, part) in dims.iter_mut().zip(&parts) {
        *slot = part
            .parse()
            .map_err(|e| format!("--topo component `{part}`: {e}"))?;
        if *slot == 0 {
            return Err("--topo components must be positive".into());
        }
    }
    Ok(Topology {
        chips: dims[0],
        l2_per_chip: dims[1],
        cores_per_l2: dims[2],
    })
}

/// Load a communication matrix from a JSON file (the format written by
/// `tlbmap detect --format json`).
fn load_matrix(path: &str) -> Result<CommMatrix, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    CommMatrix::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

/// Options of `tlbmap serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: String,
    /// Server sizing.
    pub cfg: ServeConfig,
    /// Write the recorder's metrics JSON here after shutdown.
    pub metrics_out: Option<String>,
    /// Append slow requests (over `--slow-threshold-us`) as JSONL here.
    pub slow_log: Option<String>,
}

impl ServeOptions {
    /// Parse everything after `serve`.
    pub fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let mut o = ServeOptions {
            addr: DEFAULT_ADDR.to_string(),
            cfg: ServeConfig::new(),
            metrics_out: None,
            slow_log: None,
        };
        let mut i = 0;
        while i < args.len() {
            let value = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match args[i].as_str() {
                "--addr" => o.addr = value("--addr")?,
                "--workers" => {
                    o.cfg.workers = parse_u64("--workers", &value("--workers")?)? as usize
                }
                "--queue" => {
                    o.cfg.queue_capacity = parse_u64("--queue", &value("--queue")?)? as usize
                }
                "--cache" => {
                    o.cfg.cache_capacity = parse_u64("--cache", &value("--cache")?)? as usize
                }
                "--cache-shards" => {
                    o.cfg.cache_shards =
                        parse_u64("--cache-shards", &value("--cache-shards")?)? as usize
                }
                "--deadline-ms" => {
                    o.cfg.default_deadline_ms =
                        parse_u64("--deadline-ms", &value("--deadline-ms")?)?
                }
                "--metrics-out" => o.metrics_out = Some(value("--metrics-out")?),
                "--window-ms" => {
                    o.cfg.telemetry_window_ms = parse_u64("--window-ms", &value("--window-ms")?)?
                }
                "--window-buckets" => {
                    o.cfg.telemetry_slots =
                        parse_u64("--window-buckets", &value("--window-buckets")?)? as usize
                }
                "--slow-threshold-us" => {
                    o.cfg.slow_threshold_us =
                        parse_u64("--slow-threshold-us", &value("--slow-threshold-us")?)?
                }
                "--slow-log" => o.slow_log = Some(value("--slow-log")?),
                "--flight-window" => {
                    o.cfg.flight_window = parse_u64("--flight-window", &value("--flight-window")?)?
                }
                "--flight-capacity" => {
                    o.cfg.flight_capacity =
                        parse_u64("--flight-capacity", &value("--flight-capacity")?)? as usize
                }
                "--max-sessions" => {
                    o.cfg.max_sessions =
                        parse_u64("--max-sessions", &value("--max-sessions")?)? as usize
                }
                "--session-decay-shift" => {
                    o.cfg.session_decay_shift =
                        parse_u64("--session-decay-shift", &value("--session-decay-shift")?)? as u32
                }
                "--session-drift-ppm" => {
                    o.cfg.session_drift_threshold_ppm =
                        parse_u64("--session-drift-ppm", &value("--session-drift-ppm")?)?
                }
                "--session-cooldown" => {
                    o.cfg.session_cooldown_deltas =
                        parse_u64("--session-cooldown", &value("--session-cooldown")?)?
                }
                "--session-idle-ms" => {
                    o.cfg.session_idle_ms =
                        parse_u64("--session-idle-ms", &value("--session-idle-ms")?)?
                }
                "--no-http" => {
                    // Valueless flag: disable the plain-text GET exposition.
                    o.cfg.http_stats = false;
                    i += 1;
                    continue;
                }
                flag => return Err(format!("unknown flag `{flag}`")),
            }
            i += 2;
        }
        Ok(o)
    }
}

/// `tlbmap serve` — run the mapping service until a client asks it to
/// shut down, then optionally export metrics.
pub fn serve(o: ServeOptions) -> Result<(), String> {
    let rec = Recorder::new(
        ObsConfig::new(0)
            .with_ring_capacity(64)
            .with_flight_window(o.cfg.effective_flight_window())
            .with_flight_capacity(o.cfg.effective_flight_capacity()),
    );
    let slow_log: Option<Box<dyn std::io::Write + Send>> = match &o.slow_log {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some(Box::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let handle = Server::start_with_slow_log(&o.addr, o.cfg, rec, slow_log)
        .map_err(|e| format!("bind {}: {e}", o.addr))?;
    eprintln!(
        "# tlbmap serve listening on {} ({} workers, queue {}, cache {}, window {} ms)",
        handle.addr(),
        o.cfg.effective_workers(),
        o.cfg.effective_queue_capacity(),
        o.cfg.effective_cache_capacity().unwrap_or(0),
        o.cfg.effective_telemetry().window_ms,
    );
    let rec = handle.recorder().clone();
    handle.join();
    if let Some(path) = &o.metrics_out {
        let mut text = rec.metrics_json().render();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# metrics written to {path}");
    }
    eprintln!("# tlbmap serve: shut down cleanly");
    Ok(())
}

/// Options of `tlbmap client` and `tlbmap loadgen`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOptions {
    /// `map`, `health`, `stats` or `shutdown` (client only).
    pub action: String,
    /// Server address.
    pub addr: String,
    /// Matrix JSON file (`map`/loadgen; loadgen falls back to a ring).
    pub matrix: Option<String>,
    /// Target topology.
    pub topo: Topology,
    /// Per-request deadline in ms (0 = server default).
    pub deadline_ms: u64,
    /// Artificial worker delay per request in ms.
    pub delay_ms: u64,
    /// Loadgen: concurrent connections.
    pub connections: usize,
    /// Loadgen: requests per connection.
    pub requests: usize,
    /// Loadgen: scrape `admin stats` every this many ms during the run
    /// (0 = off).
    pub sample_ms: u64,
    /// Loadgen: write the report JSON here.
    pub out: Option<String>,
    /// Loadgen: drive streaming sessions (`--stream`) instead of one-shot
    /// `map` requests.
    pub stream: bool,
    /// Stream loadgen: deltas per session.
    pub deltas: usize,
    /// Stream loadgen: flip the workload phase every this many deltas
    /// (0 = stationary).
    pub phase_every: usize,
    /// `client session`: the JSONL event trace (from `--trace-out`) to
    /// replay as deltas.
    pub trace: Option<String>,
    /// `client session`: flush a delta every this many `matrix_inc`
    /// events (0 = flush on `barrier` events only).
    pub batch: u64,
    /// Loadgen: open-loop offered-load points in requests per second
    /// (comma-separated `--rps` list). Empty = closed-loop mode.
    pub rps: Vec<u64>,
    /// Loadgen: how long each open-loop point runs, in milliseconds.
    pub duration_ms: u64,
}

impl ClientOptions {
    /// Parse args. With `positional_action`, the first bare word is the
    /// client action (`tlbmap client <action>`); loadgen has none.
    pub fn parse(args: &[String], positional_action: bool) -> Result<ClientOptions, String> {
        let mut o = ClientOptions {
            action: String::new(),
            addr: DEFAULT_ADDR.to_string(),
            matrix: None,
            topo: Topology::harpertown(),
            deadline_ms: 0,
            delay_ms: 0,
            connections: 4,
            requests: 25,
            sample_ms: 250,
            out: None,
            stream: false,
            deltas: 24,
            phase_every: 8,
            trace: None,
            batch: 0,
            rps: Vec::new(),
            duration_ms: 1000,
        };
        let mut i = 0;
        while i < args.len() {
            let value = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match args[i].as_str() {
                "--addr" => o.addr = value("--addr")?,
                "--matrix" => o.matrix = Some(value("--matrix")?),
                "--topo" => o.topo = parse_topo(&value("--topo")?)?,
                "--deadline-ms" => {
                    o.deadline_ms = parse_u64("--deadline-ms", &value("--deadline-ms")?)?
                }
                "--delay-ms" => o.delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
                "--connections" => {
                    o.connections = parse_u64("--connections", &value("--connections")?)? as usize
                }
                "--requests" => {
                    o.requests = parse_u64("--requests", &value("--requests")?)? as usize
                }
                "--sample-ms" => o.sample_ms = parse_u64("--sample-ms", &value("--sample-ms")?)?,
                "--out" => o.out = Some(value("--out")?),
                "--stream" => {
                    // Valueless flag: switch loadgen to streaming sessions.
                    o.stream = true;
                    i += 1;
                    continue;
                }
                "--deltas" => o.deltas = parse_u64("--deltas", &value("--deltas")?)? as usize,
                "--phase-every" => {
                    o.phase_every = parse_u64("--phase-every", &value("--phase-every")?)? as usize
                }
                "--trace" => o.trace = Some(value("--trace")?),
                "--batch" => o.batch = parse_u64("--batch", &value("--batch")?)?,
                "--rps" => {
                    o.rps = value("--rps")?
                        .split(',')
                        .map(|part| parse_u64("--rps", part.trim()))
                        .collect::<Result<Vec<u64>, String>>()?;
                    if o.rps.is_empty() {
                        return Err("--rps needs at least one point".into());
                    }
                }
                "--duration-ms" => {
                    o.duration_ms = parse_u64("--duration-ms", &value("--duration-ms")?)?
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
                word if positional_action && o.action.is_empty() => {
                    o.action = word.to_string();
                    i += 1;
                    continue;
                }
                word => return Err(format!("unexpected argument `{word}`")),
            }
            i += 2;
        }
        if positional_action && o.action.is_empty() {
            return Err(
                "client needs an action: map | session | health | stats | live | trace | flight | shutdown"
                    .into(),
            );
        }
        Ok(o)
    }
}

/// `tlbmap client <action>` — one request against a running server.
pub fn client(o: ClientOptions) -> Result<(), String> {
    let mut client = Client::connect(&o.addr).map_err(|e| e.to_string())?;
    match o.action.as_str() {
        "map" => {
            let path = o
                .matrix
                .as_deref()
                .ok_or_else(|| "client map needs --matrix <FILE>".to_string())?;
            let matrix = load_matrix(path)?;
            let deadline = if o.deadline_ms > 0 {
                Some(o.deadline_ms)
            } else {
                None
            };
            let reply = client
                .map(&matrix, &o.topo, deadline, o.delay_ms)
                .map_err(|e| e.to_string())?;
            for (thread, core) in reply.mapping.iter().enumerate() {
                println!("thread {thread} -> core {core}");
            }
            eprintln!(
                "# {} ({})",
                o.addr,
                if reply.cached {
                    "cache hit"
                } else {
                    "computed"
                }
            );
            Ok(())
        }
        "session" => {
            let path = o
                .trace
                .as_deref()
                .ok_or_else(|| "client session needs --trace <FILE> (a JSONL event trace from --trace-out)".to_string())?;
            replay_session(&mut client, path, &o)
        }
        "health" => {
            client.health().map_err(|e| e.to_string())?;
            println!("ok");
            Ok(())
        }
        "stats" => {
            let doc = client.stats().map_err(|e| e.to_string())?;
            println!("{}", doc.render());
            Ok(())
        }
        "live" => {
            // The rolling-window admin snapshot (versus the legacy
            // since-boot `stats`).
            let doc = client.admin(AdminKind::Stats).map_err(|e| e.to_string())?;
            println!("{}", doc.render());
            Ok(())
        }
        "trace" => {
            let doc = client.admin(AdminKind::Trace).map_err(|e| e.to_string())?;
            match doc.as_array() {
                Some(entries) if !entries.is_empty() => {
                    for entry in entries {
                        println!("{}", entry.render());
                    }
                }
                _ => eprintln!("# slow-request log is empty"),
            }
            Ok(())
        }
        "flight" => {
            let doc = client.admin(AdminKind::Flight).map_err(|e| e.to_string())?;
            if doc == Json::Null {
                eprintln!("# flight recorder is disabled (start the server with --flight-window)");
            } else {
                println!("{}", doc.render());
            }
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutdown acknowledged");
            Ok(())
        }
        other => Err(format!(
            "unknown client action `{other}` (map | session | health | stats | live | trace | flight | shutdown)"
        )),
    }
}

/// `tlbmap client session` — replay a simulator event trace against a
/// live server as a streaming session: `matrix_inc` events accumulate
/// into deltas, each `barrier` (or every `--batch` increments) flushes
/// one `delta` frame, and every control-loop decision is printed.
fn replay_session(client: &mut Client, path: &str, o: &ClientOptions) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let n = o.topo.num_cores();
    let (session, _) = client
        .open_session(&o.topo, None, None, None)
        .map_err(|e| e.to_string())?;
    eprintln!("# session {session} open on {} ({n} threads)", o.addr);

    let mut delta = CommMatrix::new(n);
    let mut pending: u64 = 0;
    let mut sent = 0u64;
    let mut remaps = 0u64;
    let flush = |delta: &mut CommMatrix, client: &mut Client, sent: &mut u64, remaps: &mut u64| {
        if delta.total() == 0 {
            return Ok(());
        }
        let reply = client
            .delta(session, delta)
            .map_err(|e: tlbmap_serve::ServeError| e.to_string())?;
        *sent += 1;
        let label = reply.decision.as_str();
        let similarity = reply.similarity_ppm as f64 / 1e6;
        match reply.mapping {
            Some(mapping) => {
                *remaps += 1;
                println!(
                    "delta {:>4}  similarity {similarity:.4}  {label}{}  mapping {mapping:?}",
                    reply.seq,
                    if reply.warm { " (warm)" } else { " (cold)" },
                );
            }
            None => println!(
                "delta {:>4}  similarity {similarity:.4}  {label}",
                reply.seq
            ),
        }
        *delta = CommMatrix::new(n);
        Ok::<(), String>(())
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        match json.get("ev").and_then(Json::as_str) {
            Some("matrix_inc") => {
                let field = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("{path}:{}: matrix_inc lacks `{key}`", lineno + 1))
                };
                let (a, b) = (field("a")? as usize, field("b")? as usize);
                let amount = field("amount")?;
                if a >= n || b >= n {
                    return Err(format!(
                        "{path}:{}: pair ({a},{b}) exceeds the {n}-core topology (pass --topo)",
                        lineno + 1
                    ));
                }
                if a != b {
                    delta.add(a.min(b), a.max(b), amount);
                    pending += 1;
                    if o.batch > 0 && pending >= o.batch {
                        flush(&mut delta, client, &mut sent, &mut remaps)?;
                        pending = 0;
                    }
                }
            }
            Some("barrier") if o.batch == 0 => {
                flush(&mut delta, client, &mut sent, &mut remaps)?;
                pending = 0;
            }
            _ => {}
        }
    }
    flush(&mut delta, client, &mut sent, &mut remaps)?;
    let (deltas, total_remaps) = client.close_session(session).map_err(|e| e.to_string())?;
    eprintln!(
        "# session {session} closed: {deltas} deltas, {total_remaps} remaps ({sent} sent, {remaps} remapped this replay)"
    );
    Ok(())
}

/// `tlbmap loadgen` — drive a running server with N connections × M
/// requests and print a latency/throughput report. Exits non-zero if any
/// request failed. With `--stream`, each connection opens a streaming
/// session instead and the report shows remap decisions and latencies.
/// With `--rps P1,P2,…`, the generator switches to an open loop: each
/// point offers a fixed arrival rate for `--duration-ms` and the report
/// is a p99-vs-offered-load curve.
pub fn loadgen(o: ClientOptions) -> Result<(), String> {
    if o.stream {
        return stream_loadgen(&o);
    }
    if !o.rps.is_empty() {
        return curve_loadgen(&o);
    }
    let matrix = match &o.matrix {
        Some(path) => load_matrix(path)?,
        None => LoadgenConfig::new().matrix,
    };
    let cfg = LoadgenConfig {
        connections: o.connections,
        requests: o.requests,
        deadline_ms: o.deadline_ms,
        delay_ms: o.delay_ms,
        sample_period_ms: o.sample_ms,
        matrix,
        topo: o.topo,
    };
    let report = run_loadgen(&o.addr, &cfg)?;
    print!("{}", report.render());
    if let Some(path) = &o.out {
        let mut text = report.to_json(cfg.connections, cfg.requests).render();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# loadgen report written to {path}");
    }
    if report.total_errors() > 0 {
        return Err(format!(
            "{} of {} requests failed: {:?}",
            report.total_errors(),
            report.sent,
            report.errors
        ));
    }
    Ok(())
}

/// The `--rps` arm of `tlbmap loadgen`: an open-loop offered-load sweep.
fn curve_loadgen(o: &ClientOptions) -> Result<(), String> {
    let matrix = match &o.matrix {
        Some(path) => load_matrix(path)?,
        None => CurveConfig::new().matrix,
    };
    let cfg = CurveConfig {
        connections: o.connections,
        rps_points: o.rps.clone(),
        duration_ms: o.duration_ms,
        deadline_ms: o.deadline_ms,
        delay_ms: o.delay_ms,
        matrix,
        topo: o.topo,
    };
    let report = run_curve(&o.addr, &cfg)?;
    print!("{}", report.render());
    if let Some(path) = &o.out {
        let mut text = report.to_json().render();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# loadgen curve written to {path}");
    }
    if report.total_errors() > 0 {
        return Err(format!(
            "open-loop sweep saw {} failed requests",
            report.total_errors()
        ));
    }
    Ok(())
}

/// The `--stream` arm of `tlbmap loadgen`: sessions instead of one-shot
/// maps.
fn stream_loadgen(o: &ClientOptions) -> Result<(), String> {
    let cfg = StreamConfig {
        sessions: o.connections,
        deltas: o.deltas,
        phase_every: o.phase_every,
        topo: o.topo,
    };
    let report = run_stream_loadgen(&o.addr, &cfg)?;
    print!("{}", report.render());
    if let Some(path) = &o.out {
        let mut text = report.to_json(&cfg).render();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# stream loadgen report written to {path}");
    }
    if report.total_errors() > 0 {
        return Err(format!(
            "{} streaming operations failed: {:?}",
            report.total_errors(),
            report.errors
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_serve_options() {
        let o = ServeOptions::parse(&words(&[
            "--addr",
            "127.0.0.1:9000",
            "--workers",
            "2",
            "--queue",
            "8",
            "--cache",
            "16",
            "--deadline-ms",
            "250",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(o.addr, "127.0.0.1:9000");
        assert_eq!(o.cfg.workers, 2);
        assert_eq!(o.cfg.queue_capacity, 8);
        assert_eq!(o.cfg.cache_capacity, 16);
        assert_eq!(o.cfg.default_deadline_ms, 250);
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(ServeOptions::parse(&[]).unwrap().addr, DEFAULT_ADDR);
    }

    #[test]
    fn parses_telemetry_serve_options() {
        let o = ServeOptions::parse(&words(&[
            "--window-ms",
            "5000",
            "--window-buckets",
            "5",
            "--slow-threshold-us",
            "250000",
            "--slow-log",
            "slow.jsonl",
            "--no-http",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.cfg.telemetry_window_ms, 5000);
        assert_eq!(o.cfg.telemetry_slots, 5);
        assert_eq!(o.cfg.slow_threshold_us, 250_000);
        assert_eq!(o.slow_log.as_deref(), Some("slow.jsonl"));
        assert!(!o.cfg.http_stats);
        // --no-http is valueless: the flag after it still parses.
        assert_eq!(o.cfg.workers, 2);
    }

    #[test]
    fn parses_flight_serve_options() {
        let o = ServeOptions::parse(&words(&[
            "--flight-window",
            "5000",
            "--flight-capacity",
            "16",
        ]))
        .unwrap();
        assert_eq!(o.cfg.flight_window, 5000);
        assert_eq!(o.cfg.flight_capacity, 16);
        // Default: flight recorder off.
        let d = ServeOptions::parse(&[]).unwrap();
        assert_eq!(d.cfg.effective_flight_window(), None);
    }

    #[test]
    fn rejects_bad_serve_options() {
        assert!(ServeOptions::parse(&words(&["--workers"])).is_err());
        assert!(ServeOptions::parse(&words(&["--workers", "two"])).is_err());
        assert!(ServeOptions::parse(&words(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn parses_client_options() {
        let o = ClientOptions::parse(
            &words(&["map", "--matrix", "m.json", "--topo", "2x4x2"]),
            true,
        )
        .unwrap();
        assert_eq!(o.action, "map");
        assert_eq!(o.matrix.as_deref(), Some("m.json"));
        assert_eq!(o.topo, Topology::new(2, 4, 2));
        assert!(ClientOptions::parse(&[], true).is_err(), "action required");
    }

    #[test]
    fn parses_loadgen_options() {
        let o = ClientOptions::parse(
            &words(&["--connections", "8", "--requests", "50", "--delay-ms", "1"]),
            false,
        )
        .unwrap();
        assert_eq!(o.connections, 8);
        assert_eq!(o.requests, 50);
        assert_eq!(o.delay_ms, 1);
        assert_eq!(o.sample_ms, 250, "sampling defaults on for the CLI");
        let o = ClientOptions::parse(&words(&["--sample-ms", "0"]), false).unwrap();
        assert_eq!(o.sample_ms, 0);
        assert!(
            ClientOptions::parse(&words(&["stray"]), false).is_err(),
            "loadgen takes no positional argument"
        );
    }

    #[test]
    fn parses_open_loop_loadgen_options() {
        let o = ClientOptions::parse(
            &words(&["--rps", "500,2000,8000", "--duration-ms", "750"]),
            false,
        )
        .unwrap();
        assert_eq!(o.rps, vec![500, 2000, 8000]);
        assert_eq!(o.duration_ms, 750);
        // Closed-loop default: no rps points.
        let o = ClientOptions::parse(&[], false).unwrap();
        assert!(o.rps.is_empty());
        assert_eq!(o.duration_ms, 1000);
        assert!(ClientOptions::parse(&words(&["--rps", "5x0"]), false).is_err());
    }

    #[test]
    fn parses_cache_shard_serve_options() {
        let o = ServeOptions::parse(&words(&["--cache-shards", "8"])).unwrap();
        assert_eq!(o.cfg.cache_shards, 8);
        assert_eq!(ServeOptions::parse(&[]).unwrap().cfg.cache_shards, 0);
    }

    #[test]
    fn parses_session_serve_options() {
        let o = ServeOptions::parse(&words(&[
            "--max-sessions",
            "4",
            "--session-decay-shift",
            "3",
            "--session-drift-ppm",
            "700000",
            "--session-cooldown",
            "1",
            "--session-idle-ms",
            "5000",
        ]))
        .unwrap();
        assert_eq!(o.cfg.max_sessions, 4);
        assert_eq!(o.cfg.session_decay_shift, 3);
        assert_eq!(o.cfg.session_drift_threshold_ppm, 700_000);
        assert_eq!(o.cfg.session_cooldown_deltas, 1);
        assert_eq!(o.cfg.session_idle_ms, 5000);
    }

    #[test]
    fn parses_stream_loadgen_options() {
        let o = ClientOptions::parse(
            &words(&[
                "--stream",
                "--connections",
                "3",
                "--deltas",
                "40",
                "--phase-every",
                "10",
            ]),
            false,
        )
        .unwrap();
        assert!(o.stream);
        assert_eq!(o.connections, 3);
        assert_eq!(o.deltas, 40);
        assert_eq!(o.phase_every, 10);
        // --stream is valueless: defaults survive when it is the only flag.
        let o = ClientOptions::parse(&words(&["--stream"]), false).unwrap();
        assert!(o.stream);
        assert_eq!(o.deltas, 24);
    }

    #[test]
    fn parses_session_replay_options() {
        let o = ClientOptions::parse(
            &words(&["session", "--trace", "run.jsonl", "--batch", "64"]),
            true,
        )
        .unwrap();
        assert_eq!(o.action, "session");
        assert_eq!(o.trace.as_deref(), Some("run.jsonl"));
        assert_eq!(o.batch, 64);
        // The action list in the missing-action error names `session`.
        let err = ClientOptions::parse(&[], true).unwrap_err();
        assert!(err.contains("session"), "{err}");
    }

    #[test]
    fn rejects_bad_topo_specs() {
        assert!(parse_topo("2x2").is_err());
        assert!(parse_topo("2x0x2").is_err());
        assert!(parse_topo("axbxc").is_err());
        assert_eq!(parse_topo("1x2x4").unwrap(), Topology::new(1, 2, 4));
    }

    #[test]
    fn missing_matrix_file_is_a_display_error() {
        let err = load_matrix("/nonexistent/matrix.json").unwrap_err();
        assert!(err.contains("/nonexistent/matrix.json"));
    }
}
