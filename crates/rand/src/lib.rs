//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of the `rand 0.8` API it actually uses —
//! `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` and `seq::SliceRandom::shuffle` — implemented in-house on a
//! xoshiro256++ generator. Streams are deterministic for a given seed but
//! are **not** bit-compatible with upstream `rand`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with a uniform sampler over bounded intervals. The single blanket
/// [`SampleRange`] impl below ties a range's element type to the sampled
/// type, which is what lets unsuffixed literals (`gen_range(0..80)`) unify
/// with the surrounding arithmetic — mirroring upstream rand's design.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
