//! The paper's hierarchical mapping algorithm (Section V-A).
//!
//! Level by level up the memory hierarchy:
//!
//! 1. Run maximum-weight perfect matching on the communication matrix —
//!    matched threads will share an L2.
//! 2. Build the *group* communication matrix. For pairs this is exactly the
//!    paper's heuristic `H((x,y),(z,k)) = M(x,z)+M(x,k)+M(y,z)+M(y,k)`; in
//!    general the weight between two groups is the sum of `M` over their
//!    cross product.
//! 3. Re-run the matching on groups; matched groups will share a chip.
//! 4. Repeat until one group spans the machine.
//!
//! When a matched pair of groups merges, their members become adjacent in
//! core order, so the final flattened order maps straight onto the
//! topology's core numbering (cores `0,1` share L2 0, cores `0..4` share
//! chip 0, …). As the paper notes, this does not guarantee the optimal
//! grouping beyond pairs — the pair matrix carries no information about
//! groups larger than two — but it is a polynomial-time approximation.

use crate::matching::{perfect_matching_pairs, perfect_matching_pairs_warm};
use tlbmap_core::CommMatrix;
use tlbmap_obs::Recorder;
use tlbmap_sim::{Mapping, Topology};

/// The level-by-level matching mapper.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalMapper {
    _private: (),
}

/// Result of a warm-started hierarchical map: the mapping itself plus the
/// per-level group pairings to seed the *next* solve with, and how many
/// levels the warm certificate actually carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmMapResult {
    /// The thread-to-core mapping.
    pub mapping: Mapping,
    /// Group-index pairings chosen at each matching level, in level order.
    /// Feed these back as the `seed` of the next warm solve.
    pub pairings: Vec<Vec<(usize, usize)>>,
    /// Levels where the warm seed was certified (no cold recompute).
    pub warm_levels: u32,
    /// Total matching levels run.
    pub total_levels: u32,
}

impl WarmMapResult {
    /// True when every matching level reused the seed without a cold
    /// blossom recompute.
    pub fn fully_warm(&self) -> bool {
        self.warm_levels == self.total_levels
    }
}

impl HierarchicalMapper {
    /// Create a mapper.
    pub fn new() -> Self {
        HierarchicalMapper { _private: () }
    }

    /// Map `matrix.num_threads()` threads onto `topo`.
    ///
    /// # Panics
    /// Panics unless the thread count equals the core count (the paper's
    /// setting) and every topology level size is a power-of-two multiple of
    /// the previous one (pairwise matching doubles group sizes).
    pub fn map(&self, matrix: &CommMatrix, topo: &Topology) -> Mapping {
        self.map_observed(matrix, topo, &Recorder::disabled())
    }

    /// [`map`](HierarchicalMapper::map), reporting each matching level
    /// (group counts and captured pair weight) to `rec`.
    ///
    /// # Panics
    /// Same conditions as [`map`](HierarchicalMapper::map).
    pub fn map_observed(&self, matrix: &CommMatrix, topo: &Topology, rec: &Recorder) -> Mapping {
        match self.try_map_observed(matrix, topo, rec) {
            Ok(mapping) => mapping,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`map`](HierarchicalMapper::map) without the panics: invalid input
    /// (thread/core mismatch, non-power-of-two level arities) comes back
    /// as a `Display`able error. This is the entry point for callers that
    /// receive the matrix and topology from outside the process — the
    /// mapping service must answer a malformed request with an error
    /// frame, not die.
    pub fn try_map(&self, matrix: &CommMatrix, topo: &Topology) -> Result<Mapping, String> {
        self.try_map_observed(matrix, topo, &Recorder::disabled())
    }

    /// [`try_map`](HierarchicalMapper::try_map), reporting each matching
    /// level to `rec`.
    pub fn try_map_observed(
        &self,
        matrix: &CommMatrix,
        topo: &Topology,
        rec: &Recorder,
    ) -> Result<Mapping, String> {
        self.try_map_warm_observed(matrix, topo, None, rec)
            .map(|r| r.mapping)
    }

    /// Warm-started variant for the streaming remap loop: `seed` carries
    /// the per-level pairings of the previous solve (from
    /// [`WarmMapResult::pairings`]). Each level tries
    /// [`perfect_matching_pairs_warm`] with its seed slice — verified and
    /// locally improved, falling back to a cold blossom solve when the
    /// certificate fails — so near-identical back-to-back instances skip
    /// the O(n³) recompute. With `seed = None` every level runs cold and
    /// the mapping is bit-identical to
    /// [`try_map_observed`](HierarchicalMapper::try_map_observed).
    pub fn try_map_warm_observed(
        &self,
        matrix: &CommMatrix,
        topo: &Topology,
        seed: Option<&[Vec<(usize, usize)>]>,
        rec: &Recorder,
    ) -> Result<WarmMapResult, String> {
        let n = matrix.num_threads();
        if n != topo.num_cores() {
            return Err(format!(
                "hierarchical mapper expects one thread per core ({} threads, {} cores)",
                n,
                topo.num_cores()
            ));
        }
        if n == 1 {
            return Ok(WarmMapResult {
                mapping: Mapping::identity(1),
                pairings: Vec::new(),
                warm_levels: 0,
                total_levels: 0,
            });
        }

        // groups[g] = ordered list of member threads.
        let mut groups: Vec<Vec<usize>> = (0..n).map(|t| vec![t]).collect();
        let mut size = 1usize;
        let mut level = 0u32;
        let mut pairings: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut warm_levels = 0u32;

        for target in topo.level_group_sizes() {
            if target % size != 0 || !(target / size).is_power_of_two() {
                return Err(format!(
                    "level size {target} not a power-of-two multiple of current group size {size}"
                ));
            }
            while size < target {
                let before = groups.len() as u32;
                let level_seed = seed
                    .and_then(|s| s.get(level as usize))
                    .map(|v| v.as_slice());
                let (merged, pairs, warm) = merge_by_matching_warm(&groups, matrix, level_seed);
                groups = merged;
                if warm {
                    warm_levels += 1;
                }
                pairings.push(pairs);
                let weight: u64 = groups
                    .iter()
                    .map(|g| {
                        let (a, b) = g.split_at(g.len() / 2);
                        group_weight(a, b, matrix)
                    })
                    .sum();
                rec.record_mapper_round(level, before, groups.len() as u32, weight);
                level += 1;
                size *= 2;
            }
        }
        debug_assert_eq!(groups.len(), 1);

        // The flattened member order is the core order.
        let order = &groups[0];
        let mut thread_to_core = vec![0usize; n];
        for (core, &thread) in order.iter().enumerate() {
            thread_to_core[thread] = core;
        }
        Ok(WarmMapResult {
            mapping: Mapping::new(thread_to_core),
            pairings,
            warm_levels,
            total_levels: level,
        })
    }
}

/// Weight between two groups: sum of the communication matrix over their
/// cross product (the generalization of the paper's `H`).
pub fn group_weight(a: &[usize], b: &[usize], matrix: &CommMatrix) -> u64 {
    let mut sum = 0;
    for &i in a {
        for &j in b {
            sum += matrix.get(i, j);
        }
    }
    sum
}

/// One matching level: pair up the groups and merge matched pairs.
/// With a seed, the warm path verifies/improves it; without one, this is
/// exactly the cold [`perfect_matching_pairs`] level. Returns the merged
/// groups, the pairing chosen (the seed for the next solve's same level),
/// and whether the warm certificate held.
fn merge_by_matching_warm(
    groups: &[Vec<usize>],
    matrix: &CommMatrix,
    seed: Option<&[(usize, usize)]>,
) -> (Vec<Vec<usize>>, Vec<(usize, usize)>, bool) {
    let g = groups.len();
    debug_assert!(g.is_multiple_of(2));
    let weight =
        |a: usize, b: usize| -> i64 { group_weight(&groups[a], &groups[b], matrix) as i64 };
    let (pairs, warm) = match seed {
        Some(prev) => perfect_matching_pairs_warm(g, &weight, prev),
        None => (perfect_matching_pairs(g, &weight), false),
    };
    let merged = pairs
        .iter()
        .map(|&(a, b)| {
            let mut merged = groups[a].clone();
            merged.extend_from_slice(&groups[b]);
            merged
        })
        .collect();
    (merged, pairs, warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::mapping_cost;

    /// Matrix with strong pairs (0,1) (2,3) (4,5) (6,7) and stronger
    /// quad-affinity between pairs {01,23} and {45,67}.
    fn structured() -> CommMatrix {
        let mut m = CommMatrix::new(8);
        for (a, b) in [(0, 1), (2, 3), (4, 5), (6, 7)] {
            m.add(a, b, 100);
        }
        // Quad affinity.
        for (a, b) in [(0, 2), (1, 3), (4, 6), (5, 7)] {
            m.add(a, b, 10);
        }
        m
    }

    #[test]
    fn pairs_end_up_on_shared_l2() {
        let topo = Topology::harpertown();
        let mapping = HierarchicalMapper::new().map(&structured(), &topo);
        for (a, b) in [(0, 1), (2, 3), (4, 5), (6, 7)] {
            assert_eq!(
                topo.l2_of(mapping.core_of(a)),
                topo.l2_of(mapping.core_of(b)),
                "threads {a},{b} should share an L2"
            );
        }
    }

    #[test]
    fn quads_end_up_on_shared_chip() {
        let topo = Topology::harpertown();
        let mapping = HierarchicalMapper::new().map(&structured(), &topo);
        for group in [[0usize, 1, 2, 3], [4, 5, 6, 7]] {
            let chip = topo.chip_of(mapping.core_of(group[0]));
            for &t in &group[1..] {
                assert_eq!(topo.chip_of(mapping.core_of(t)), chip);
            }
        }
    }

    #[test]
    fn beats_scattered_identity_on_shuffled_pattern() {
        // Strong pairs deliberately placed far apart by identity.
        let mut m = CommMatrix::new(8);
        for (a, b) in [(0, 4), (1, 5), (2, 6), (3, 7)] {
            m.add(a, b, 50);
        }
        let topo = Topology::harpertown();
        let mapped = HierarchicalMapper::new().map(&m, &topo);
        let identity = Mapping::identity(8);
        assert!(
            mapping_cost(&m, &mapped, &topo) < mapping_cost(&m, &identity, &topo),
            "mapper must beat identity on an anti-affine pattern"
        );
        // In fact each strong pair must share an L2 (distance 1, the
        // optimum) because pair weights dominate.
        assert_eq!(mapping_cost(&m, &mapped, &topo), 200);
    }

    #[test]
    fn homogeneous_matrix_yields_valid_permutation() {
        let mut m = CommMatrix::new(8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                m.add(i, j, 7);
            }
        }
        let topo = Topology::harpertown();
        let mapping = HierarchicalMapper::new().map(&m, &topo);
        let mut seen = [false; 8];
        for t in 0..8 {
            let c = mapping.core_of(t);
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn empty_matrix_is_mapped_without_panic() {
        let topo = Topology::harpertown();
        let mapping = HierarchicalMapper::new().map(&CommMatrix::new(8), &topo);
        assert_eq!(mapping.num_threads(), 8);
    }

    #[test]
    fn group_weight_matches_paper_h() {
        let mut m = CommMatrix::new(4);
        m.add(0, 2, 1);
        m.add(0, 3, 2);
        m.add(1, 2, 3);
        m.add(1, 3, 4);
        // H((0,1),(2,3)) = M(0,2)+M(0,3)+M(1,2)+M(1,3) = 10.
        assert_eq!(group_weight(&[0, 1], &[2, 3], &m), 10);
    }

    #[test]
    fn observed_map_reports_every_level() {
        use tlbmap_obs::{CounterId, Event, ObsConfig, Recorder};
        let rec = Recorder::new(ObsConfig::new(8));
        let topo = Topology::harpertown();
        let mapping = HierarchicalMapper::new().map_observed(&structured(), &topo, &rec);
        assert_eq!(mapping, HierarchicalMapper::new().map(&structured(), &topo));
        // 8 → 4 → 2 → 1 groups: three matching levels.
        assert_eq!(rec.counter(CounterId::MapperRounds), 3);
        let rounds: Vec<_> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::MapperRound {
                    level,
                    groups_before,
                    groups_after,
                    weight,
                } => Some((level, groups_before, groups_after, weight)),
                _ => None,
            })
            .collect();
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[0].1, 8);
        assert_eq!(rounds[0].2, 4);
        // Level 0 pairs the strong couples: 4 × 100 captured weight.
        assert_eq!(rounds[0].3, 400);
        assert_eq!(rounds[2], (2, 2, 1, 0));
    }

    #[test]
    fn single_core_machine() {
        let topo = Topology::new(1, 1, 1);
        let mapping = HierarchicalMapper::new().map(&CommMatrix::new(1), &topo);
        assert_eq!(mapping.core_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "one thread per core")]
    fn thread_core_mismatch_rejected() {
        HierarchicalMapper::new().map(&CommMatrix::new(4), &Topology::harpertown());
    }

    #[test]
    fn try_map_reports_errors_instead_of_panicking() {
        let mapper = HierarchicalMapper::new();
        let err = mapper
            .try_map(&CommMatrix::new(4), &Topology::harpertown())
            .unwrap_err();
        assert!(err.contains("one thread per core"), "{err}");
        // Three cores per L2 is not a power-of-two multiple of 1.
        let topo = Topology::new(1, 1, 3);
        let err = mapper.try_map(&CommMatrix::new(3), &topo).unwrap_err();
        assert!(err.contains("power-of-two"), "{err}");
        // And valid input agrees with the panicking path.
        let topo = Topology::harpertown();
        let ok = mapper.try_map(&structured(), &topo).unwrap();
        assert_eq!(ok, mapper.map(&structured(), &topo));
    }

    #[test]
    fn wider_topology_16_cores() {
        let topo = Topology::new(2, 2, 4);
        let mut m = CommMatrix::new(16);
        // Four quads of heavy communication.
        for q in 0..4 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    m.add(q * 4 + i, q * 4 + j, 100);
                }
            }
        }
        let mapping = HierarchicalMapper::new().map(&m, &topo);
        // Each quad must land on one L2 (4 cores per L2).
        for q in 0..4 {
            let l2 = topo.l2_of(mapping.core_of(q * 4));
            for i in 1..4 {
                assert_eq!(topo.l2_of(mapping.core_of(q * 4 + i)), l2);
            }
        }
    }
}
