//! Exhaustive optimal mapping — a brute-force oracle over all thread
//! permutations, feasible for the paper's 8-core machine (8! = 40320
//! candidates). Used to measure how close the polynomial heuristics get to
//! the true optimum (the mapping problem itself is NP-hard in general).

use crate::cost::mapping_cost;
use tlbmap_core::CommMatrix;
use tlbmap_sim::{Mapping, Topology};

/// The minimum-cost mapping over *all* permutations.
///
/// # Panics
/// Panics when threads ≠ cores or the machine has more than 10 cores
/// (10! ≈ 3.6M candidates is the practical limit).
pub fn exhaustive_best_mapping(matrix: &CommMatrix, topo: &Topology) -> Mapping {
    let n = matrix.num_threads();
    assert_eq!(n, topo.num_cores(), "oracle expects one thread per core");
    assert!(n <= 10, "exhaustive search infeasible beyond 10 cores");

    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = Mapping::new(perm.clone());
    let mut best_cost = mapping_cost(matrix, &best, topo);

    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let candidate = Mapping::new(perm.clone());
            let cost = mapping_cost(matrix, &candidate, topo);
            if cost < best_cost {
                best_cost = cost;
                best = candidate;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy_map::HierarchicalMapper;

    #[test]
    fn oracle_finds_the_obvious_optimum() {
        let mut m = CommMatrix::new(4);
        m.add(0, 3, 100);
        m.add(1, 2, 100);
        let topo = Topology::new(1, 2, 2);
        let best = exhaustive_best_mapping(&m, &topo);
        // Optimal: pairs (0,3) and (1,2) each on one L2 → cost 200.
        assert_eq!(mapping_cost(&m, &best, &topo), 200);
    }

    #[test]
    fn heuristic_never_beats_the_oracle() {
        // Pseudo-random matrices; the hierarchical heuristic must be ≥ the
        // exhaustive optimum and usually close.
        let topo = Topology::harpertown();
        for seed in 0..5u64 {
            let mut m = CommMatrix::new(8);
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for i in 0..8 {
                for j in (i + 1)..8 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    m.add(i, j, (x >> 33) % 100);
                }
            }
            let oracle = exhaustive_best_mapping(&m, &topo);
            let heur = HierarchicalMapper::new().map(&m, &topo);
            let oc = mapping_cost(&m, &oracle, &topo);
            let hc = mapping_cost(&m, &heur, &topo);
            assert!(hc >= oc, "heuristic beat the exhaustive optimum?!");
            assert!(
                (hc as f64) <= (oc as f64) * 1.25,
                "heuristic too far from optimum: {hc} vs {oc} (seed {seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn large_machines_rejected() {
        let topo = Topology::new(2, 3, 2);
        exhaustive_best_mapping(&CommMatrix::new(12), &topo);
    }
}
