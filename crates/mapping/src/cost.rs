//! Cost functions for comparing thread mappings.
//!
//! The quantity a mapping should minimize is communication-weighted
//! distance: every unit of communication between threads `i` and `j` costs
//! the hierarchical distance between their cores (0 = same core, 1 = same
//! L2, 2 = same chip, 3 = cross-chip — see
//! [`tlbmap_sim::topology::Proximity`]).

use tlbmap_core::CommMatrix;
use tlbmap_sim::{Mapping, Topology};

/// Total communication-weighted distance of `mapping` — lower is better.
///
/// # Panics
/// Panics if the matrix and mapping disagree on the thread count.
pub fn mapping_cost(matrix: &CommMatrix, mapping: &Mapping, topo: &Topology) -> u64 {
    assert_eq!(
        matrix.num_threads(),
        mapping.num_threads(),
        "matrix is {}-thread but mapping is {}-thread",
        matrix.num_threads(),
        mapping.num_threads()
    );
    matrix
        .pairs()
        .map(|(i, j, w)| w * topo.distance(mapping.core_of(i), mapping.core_of(j)))
        .sum()
}

/// Fraction of total communication that stays within a shared L2
/// (distance ≤ 1). `1.0` when there is no communication at all.
pub fn l2_locality_fraction(matrix: &CommMatrix, mapping: &Mapping, topo: &Topology) -> f64 {
    let total = matrix.total();
    if total == 0 {
        return 1.0;
    }
    let local: u64 = matrix
        .pairs()
        .filter(|&(i, j, _)| topo.distance(mapping.core_of(i), mapping.core_of(j)) <= 1)
        .map(|(_, _, w)| w)
        .sum();
    local as f64 / total as f64
}

/// Quality in `[0, 1]`: 1 means every unit of communication sits at the
/// minimum possible distance (1, shared L2), 0 means everything crosses
/// chips. These are *bounds*, not achievable extremes for every matrix, so
/// treat this as a comparable score, not a percentage of optimality.
pub fn normalized_mapping_quality(matrix: &CommMatrix, mapping: &Mapping, topo: &Topology) -> f64 {
    let total = matrix.total();
    if total == 0 {
        return 1.0;
    }
    let cost = mapping_cost(matrix, mapping, topo) as f64;
    let best = total as f64; // all at distance 1
    let worst = (total * 3) as f64; // all cross-chip
    ((worst - cost) / (worst - best)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_matrix() -> CommMatrix {
        let mut m = CommMatrix::new(4);
        m.add(0, 1, 10);
        m.add(2, 3, 10);
        m
    }

    #[test]
    fn cost_rewards_colocating_communicators() {
        let topo = Topology::harpertown();
        let m = pair_matrix();
        // 0-1 and 2-3 each on one L2: distance 1 each.
        let good = Mapping::new(vec![0, 1, 2, 3]);
        // Split each pair across chips.
        let bad = Mapping::new(vec![0, 4, 1, 5]);
        assert_eq!(mapping_cost(&m, &good, &topo), 20);
        assert_eq!(mapping_cost(&m, &bad, &topo), 60);
    }

    #[test]
    fn locality_fraction() {
        let topo = Topology::harpertown();
        let m = pair_matrix();
        let good = Mapping::new(vec![0, 1, 2, 3]);
        let half = Mapping::new(vec![0, 1, 2, 4]); // pair 2-3 crosses chips
        assert_eq!(l2_locality_fraction(&m, &good, &topo), 1.0);
        assert!((l2_locality_fraction(&m, &half, &topo) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quality_bounds() {
        let topo = Topology::harpertown();
        let m = pair_matrix();
        let best = Mapping::new(vec![0, 1, 2, 3]);
        let worst = Mapping::new(vec![0, 4, 1, 5]);
        assert_eq!(normalized_mapping_quality(&m, &best, &topo), 1.0);
        assert_eq!(normalized_mapping_quality(&m, &worst, &topo), 0.0);
    }

    #[test]
    fn empty_matrix_is_perfect() {
        let topo = Topology::harpertown();
        let m = CommMatrix::new(2);
        let mapping = Mapping::new(vec![0, 4]);
        assert_eq!(mapping_cost(&m, &mapping, &topo), 0);
        assert_eq!(normalized_mapping_quality(&m, &mapping, &topo), 1.0);
        assert_eq!(l2_locality_fraction(&m, &mapping, &topo), 1.0);
    }

    #[test]
    #[should_panic(expected = "thread")]
    fn size_mismatch_rejected() {
        mapping_cost(
            &CommMatrix::new(3),
            &Mapping::identity(4),
            &Topology::harpertown(),
        );
    }
}
